//! Failure injection: every layer must degrade loudly and cleanly, not
//! silently — flaky wrappers, inconsistent sources, diverging
//! articulations, malformed inputs.

use onion_core::prelude::*;
use onion_core::query::{execute, Condition};
use onion_core::OnionSystem;

/// A wrapper that fails every `period`-th fetch.
struct FlakyWrapper {
    inner: InMemoryWrapper,
    period: usize,
    calls: std::cell::Cell<usize>,
}

impl Wrapper for FlakyWrapper {
    fn source(&self) -> &str {
        self.inner.source()
    }

    fn fetch(
        &self,
        classes: &[String],
        conditions: &[Condition],
    ) -> onion_core::query::Result<Vec<Instance>> {
        let n = self.calls.get() + 1;
        self.calls.set(n);
        if n % self.period == 0 {
            return Err(onion_core::query::QueryError::Source(format!(
                "{} is temporarily unavailable",
                self.source()
            )));
        }
        self.inner.fetch(classes, conditions)
    }
}

fn fig2_setup() -> (Ontology, Ontology, Articulation) {
    let c = examples::carrier();
    let f = examples::factory();
    let art = ArticulationGenerator::new().generate(&examples::fig2_rules(), &[&c, &f]).unwrap();
    (c, f, art)
}

#[test]
fn failing_wrapper_surfaces_source_error() {
    let (c, f, art) = fig2_setup();
    let mut kb = KnowledgeBase::new("carrier");
    kb.add(Instance::new("x", "Cars").with("Price", Value::Num(1.0)));
    let flaky = FlakyWrapper {
        inner: InMemoryWrapper::new(kb),
        period: 1, // fail immediately
        calls: std::cell::Cell::new(0),
    };
    let conversions = ConversionRegistry::standard();
    let q = Query::parse("find Vehicle(Price)").unwrap();
    let err = execute(&q, &art, &[&c, &f], &conversions, &[&flaky]).unwrap_err();
    match err {
        onion_core::query::QueryError::Source(msg) => {
            assert!(msg.contains("carrier"), "{msg}")
        }
        other => panic!("expected Source error, got {other:?}"),
    }
}

#[test]
fn missing_conversion_function_fails_condition_pushdown() {
    // articulation whose functional rule names an unregistered function:
    // generation succeeds (forward bridge only), but pushing a numeric
    // condition down needs the inverse and must fail loudly
    let c = examples::carrier();
    let f = examples::factory();
    let rules = parse_rules(
        "carrier.Cars => transport.Vehicle\n\
         carrier.Price => transport.Price\n\
         MysteryFn(): carrier.DutchGuilders => transport.Euro\n",
    )
    .unwrap();
    let generator = ArticulationGenerator::with_config(GeneratorConfig {
        conversions: {
            let mut r = ConversionRegistry::new();
            // forward registered, no inverse
            r.register(onion_core::rules::Converter::new("MysteryFn", None, |x| x));
            r
        },
        ..Default::default()
    });
    let art = generator.generate(&rules, &[&c, &f]).unwrap();
    let conversions = generator.config().conversions.clone();
    let q = Query::parse("find Vehicle(Price) where Price < 10").unwrap();
    let err = onion_core::query::plan(&q, &art, &[&c, &f], &conversions).unwrap_err();
    assert!(matches!(err, onion_core::query::QueryError::Conversion(_)), "{err:?}");
}

#[test]
fn inconsistent_source_is_detectable_before_articulation() {
    let broken =
        OntologyBuilder::new("broken").class_under("A", "B").class_under("B", "A").build().unwrap();
    assert!(!onion_core::ontology::consistency::is_consistent(&broken));
    // the engine itself still runs (the paper leaves enforcement to the
    // expert), but the consistency report names the cycle
    let issues = onion_core::ontology::consistency::check(&broken);
    assert!(issues.iter().any(|i| i.message.contains("A") && i.message.contains("B")));
}

#[test]
fn dangling_bridge_reported_at_unification() {
    let (c, f, mut art) = fig2_setup();
    art.add_bridge(Bridge::si(
        Term::qualified("carrier", "Vanished"),
        Term::qualified("transport", "Vehicle"),
        BridgeKind::Rule,
    ));
    let err = art.unified(&[&c, &f]).unwrap_err();
    assert!(err.to_string().contains("carrier.Vanished"));
}

#[test]
fn facade_reports_each_missing_piece() {
    let mut s = OnionSystem::with_transport_lexicon();
    // no sources
    assert!(s.articulate("carrier", "factory", &mut AcceptAll).is_err());
    s.add_source(examples::carrier());
    // one source missing
    assert!(s.articulate("carrier", "factory", &mut AcceptAll).is_err());
    s.add_source(examples::factory());
    // no articulation yet
    assert!(s.query("find Vehicle").is_err());
    assert!(s.explain("find Vehicle").is_err());
    assert!(s.difference("carrier", "factory").is_err());
    // bad query text after articulating
    s.add_rules(examples::fig2_rules_text()).unwrap();
    s.articulate_from_rules("carrier", "factory").unwrap();
    assert!(s.query("SELECT * FROM vehicles").is_err());
    assert!(s.query("find NoSuchClass").is_err());
}

#[test]
fn rule_budget_prevents_runaway_inference() {
    use onion_core::rules::horn::HornProgram;
    use onion_core::rules::infer::{FactBase, InferenceEngine};
    use onion_core::rules::AtomTable;
    // pair-doubling program grows quadratically; the budget must stop it
    let prog = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
    let mut atoms = AtomTable::new();
    let mut fb = FactBase::new();
    for i in 0..200 {
        fb.add(&mut atoms, "p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
    }
    let err = InferenceEngine::new(prog).with_budget(500, 0).run(&mut atoms, &mut fb).unwrap_err();
    assert!(matches!(err, onion_core::rules::RuleError::BudgetExceeded { .. }));
}

#[test]
fn malformed_imports_never_panic() {
    let garbage = [
        "\u{0}\u{1}\u{2}",
        "ontology \"",
        "<ontology><node label=",
        "interface { attribute",
        "node\nedge\nbridge",
    ];
    for g in garbage {
        let _ = onion_core::ontology::import::from_text(g);
        let _ = onion_core::ontology::import::from_xml(g);
        let _ = onion_core::ontology::import::from_idl(g, &Default::default());
        let _ = onion_core::articulate::persist::from_text(g);
        let _ = parse_rules(g);
        let _ = Pattern::parse(g);
        let _ = Query::parse(g);
    }
}

#[test]
fn expert_rejecting_everything_yields_empty_articulation() {
    let c = examples::carrier();
    let f = examples::factory();
    let engine = ArticulationEngine::new(MatcherPipeline::standard(transport_lexicon()));
    let mut naysayer = ScriptedExpert::new(vec![]); // rejects all (empty script)
    let (art, report) = engine.run(&c, &f, &mut naysayer, RuleSet::new()).unwrap();
    assert_eq!(report.accepted, 0);
    assert!(report.rejected > 0);
    assert!(art.bridges.is_empty());
    assert_eq!(art.ontology.term_count(), 0);
    // and the empty articulation still unifies (plain juxtaposition)
    let u = art.unified(&[&c, &f]).unwrap();
    assert_eq!(u.node_count(), c.term_count() + f.term_count());
}
