//! End-to-end integration across every crate: engine → algebra → query,
//! on both the Fig. 2 example and synthetic workloads.

use onion_core::prelude::*;
use onion_core::testkit::{self, overlap_pair, precision_recall, OverlapSpec};
use onion_core::OnionSystem;

#[test]
fn fig2_full_stack() {
    let mut onion = OnionSystem::with_transport_lexicon();
    onion.add_source(examples::carrier());
    onion.add_source(examples::factory());
    onion.add_rules(examples::fig2_rules_text()).unwrap();
    let report = onion.articulate("carrier", "factory", &mut AcceptAll).unwrap();
    assert!(report.accepted > 0);
    assert!(report.rounds >= 2);

    // algebra over the engine's articulation
    let u = onion.union().unwrap();
    assert!(u.node_count() > examples::carrier().term_count());
    let i = onion.intersection().unwrap();
    assert!(i.term_count() > 0);
    let (d, _) = onion.difference("carrier", "factory").unwrap();
    assert!(d.node_count() < examples::carrier().term_count());

    // query across both sources
    let mut ckb = KnowledgeBase::new("carrier");
    ckb.add(Instance::new("c1", "Cars").with("Price", Value::Num(2203.71)));
    let mut fkb = KnowledgeBase::new("factory");
    fkb.add(Instance::new("f1", "PassengerCar").with("Price", Value::Num(653.3)));
    onion.add_knowledge_base(ckb);
    onion.add_knowledge_base(fkb);
    let rs = onion.query("find Vehicle(Price)").unwrap();
    assert_eq!(rs.len(), 2);
    for row in &rs.rows {
        let eur = row.attrs["Price"].as_num().unwrap();
        assert!((eur - 1000.0).abs() < 1e-6, "all prices normalise to 1000 EUR");
    }
}

#[test]
fn oracle_expert_recovers_planted_truth() {
    // B2's logic as a correctness test: on a planted-overlap pair, the
    // oracle-reviewed engine should find every recoverable pair and
    // nothing else.
    let pair = overlap_pair(&OverlapSpec {
        seed: 99,
        concepts: 60,
        overlap: 0.3,
        rename_prob: 0.5,
        max_children: 4,
    });
    let pipeline = MatcherPipeline::new()
        .with(onion_core::articulate::ExactLabelMatcher)
        .with(onion_core::articulate::SynonymMatcher::new(pair.lexicon.clone()));
    let engine = ArticulationEngine::new(pipeline);
    let mut expert = OracleExpert::new(pair.truth.iter().cloned());
    let (art, report) = engine.run(&pair.left, &pair.right, &mut expert, RuleSet::new()).unwrap();
    let metrics = precision_recall(&art.rules.rules, &pair.truth_set());
    assert_eq!(metrics.precision(), 1.0, "oracle admits no false bridges");
    assert_eq!(
        metrics.recall(),
        1.0,
        "exact+synonym matchers recover every planted pair (tp={}, fn={}, report={report:?})",
        metrics.true_positives,
        metrics.false_negatives,
    );
}

#[test]
fn accept_all_on_synthetic_pair_has_lower_precision() {
    // the automated end of the §1 spectrum: accept everything the
    // matchers propose, measure the quality cost
    let pair = overlap_pair(&OverlapSpec {
        seed: 7,
        concepts: 80,
        overlap: 0.25,
        rename_prob: 0.3,
        max_children: 4,
    });
    let pipeline = MatcherPipeline::standard(pair.lexicon.clone());
    let engine = ArticulationEngine::new(pipeline);
    let (art_all, _) = engine.run(&pair.left, &pair.right, &mut AcceptAll, RuleSet::new()).unwrap();
    let all_metrics = precision_recall(&art_all.rules.rules, &pair.truth_set());

    let pipeline = MatcherPipeline::standard(pair.lexicon.clone());
    let engine = ArticulationEngine::new(pipeline);
    let mut oracle = OracleExpert::new(pair.truth.iter().cloned());
    let (art_oracle, _) = engine.run(&pair.left, &pair.right, &mut oracle, RuleSet::new()).unwrap();
    let oracle_metrics = precision_recall(&art_oracle.rules.rules, &pair.truth_set());

    assert!(all_metrics.recall() >= oracle_metrics.recall() - 1e-9);
    assert!(
        all_metrics.precision() <= oracle_metrics.precision(),
        "expert review should not hurt precision (all={:.2}, oracle={:.2})",
        all_metrics.precision(),
        oracle_metrics.precision()
    );
}

#[test]
fn global_merge_baseline_agrees_on_shared_concepts() {
    // both architectures must agree on *what* is shared; they differ in
    // cost and maintainability, not semantics
    let pair = overlap_pair(&OverlapSpec {
        seed: 21,
        concepts: 40,
        overlap: 0.5,
        rename_prob: 1.0,
        max_children: 4,
    });
    let gm = testkit::GlobalMerge::build(&[&pair.left, &pair.right], &pair.lexicon);
    for (l, r) in &pair.truth {
        let ln = l.strip_prefix("left.").unwrap();
        let rn = r.strip_prefix("right.").unwrap();
        assert_eq!(
            gm.global_label("left", ln),
            gm.global_label("right", rn),
            "baseline should unify planted pair {ln} ~ {rn}"
        );
    }
}

#[test]
fn viewer_session_drives_the_same_flow() {
    use onion_core::viewer::{Session, SessionCommand};
    let mut s = Session::new(transport_lexicon());
    s.run(vec![
        SessionCommand::Load(Box::new(examples::carrier())),
        SessionCommand::Load(Box::new(examples::factory())),
        SessionCommand::AddRules(examples::fig2_rules_text().to_string()),
        SessionCommand::Articulate { left: "carrier".into(), right: "factory".into() },
        SessionCommand::ShowArticulation,
    ])
    .unwrap();
    assert!(s.articulation().unwrap().bridges.len() >= 20);
    assert!(s.transcript().contains("ontology transport"));
}
