//! Experiment E1: the Fig. 2 articulation, asserted node by node and
//! edge by edge against the canonical reconstruction (DESIGN.md / the
//! `onion_ontology::examples` docs).

use std::collections::HashSet;

use onion_core::prelude::*;

fn articulation() -> Articulation {
    let carrier = examples::carrier();
    let factory = examples::factory();
    ArticulationGenerator::new()
        .generate(&examples::fig2_rules(), &[&carrier, &factory])
        .expect("fig2 articulation generates")
}

#[test]
fn articulation_ontology_term_inventory() {
    let art = articulation();
    let mut terms: Vec<&str> = art.ontology.graph().nodes().map(|n| n.label).collect();
    terms.sort_unstable();
    assert_eq!(
        terms,
        vec![
            "CargoCarrier",
            "CargoCarrierVehicle",
            "CarsTrucks",
            "Euro",
            "Owner",
            "Person",
            "Transportation",
            "Vehicle",
        ],
        "the Fig. 2 articulation vocabulary"
    );
}

#[test]
fn articulation_internal_structure() {
    let art = articulation();
    let g = art.ontology.graph();
    // intra-articulation rules became SubclassOf edges (§4.1)
    assert!(g.has_edge("Owner", "SubclassOf", "Person"));
    assert!(g.has_edge("Vehicle", "SubclassOf", "Transportation"));
    assert!(g.has_edge("CargoCarrier", "SubclassOf", "Transportation"));
}

#[test]
fn every_expected_bridge_present() {
    let art = articulation();
    let have: HashSet<String> = art.bridges.iter().map(|b| b.to_string()).collect();
    let expected = [
        // equivalent roots (simple rule: carrier.Transportation => factory.Transportation)
        "carrier.Transportation -[SIBridge]-> transport.Transportation",
        "factory.Transportation -[SIBridge]-> transport.Transportation",
        "transport.Transportation -[SIBridge]-> factory.Transportation",
        // cars
        "carrier.Cars -[SIBridge]-> transport.Vehicle",
        "factory.Vehicle -[SIBridge]-> transport.Vehicle",
        "transport.Vehicle -[SIBridge]-> factory.Vehicle",
        "factory.PassengerCar -[SIBridge]-> transport.Vehicle",
        // §4.1 conjunction: CargoCarrierVehicle
        "transport.CargoCarrierVehicle -[SIBridge]-> factory.CargoCarrier",
        "transport.CargoCarrierVehicle -[SIBridge]-> factory.Vehicle",
        "transport.CargoCarrierVehicle -[SIBridge]-> carrier.Trucks",
        "factory.GoodsVehicle -[SIBridge]-> transport.CargoCarrierVehicle",
        "factory.Truck -[SIBridge]-> transport.CargoCarrierVehicle",
        "carrier.Trucks -[SIBridge]-> transport.CargoCarrierVehicle",
        // cargo carriers
        "factory.CargoCarrier -[SIBridge]-> transport.CargoCarrier",
        // §4.1 disjunction: CarsTrucks
        "carrier.Cars -[SIBridge]-> transport.CarsTrucks",
        "carrier.Trucks -[SIBridge]-> transport.CarsTrucks",
        "factory.Vehicle -[SIBridge]-> transport.CarsTrucks",
        // §4.1 functional rules (Fig. 2 conversion edges, both directions)
        "carrier.DutchGuilders -[DGToEuroFn]-> transport.Euro",
        "transport.Euro -[EuroToDGFn]-> carrier.DutchGuilders",
        "factory.PoundSterling -[PSToEuroFn]-> transport.Euro",
        "transport.Euro -[EuroToPSFn]-> factory.PoundSterling",
    ];
    for e in expected {
        assert!(have.contains(e), "missing bridge: {e}\nhave: {have:#?}");
    }
}

#[test]
fn bridge_count_is_exact() {
    // beyond the named expectations: no surprise bridges appear
    let art = articulation();
    // exactly the 21 bridges enumerated in every_expected_bridge_present
    // — pinning the count catches any surprise extras
    assert_eq!(art.bridges.len(), 21, "{:#?}", bridge_list(&art));
}

fn bridge_list(art: &Articulation) -> Vec<String> {
    let mut v: Vec<String> = art.bridges.iter().map(|b| b.to_string()).collect();
    v.sort();
    v
}

#[test]
fn structure_inheritance_applied() {
    // §4.2: articulation structure follows the anchored source structure;
    // Vehicle sits under Transportation both via the explicit rule and
    // the factory anchor
    let art = articulation();
    assert!(art.ontology.is_subclass("Vehicle", "Transportation"));
}

#[test]
fn unified_graph_dimensions() {
    let carrier = examples::carrier();
    let factory = examples::factory();
    let art = articulation();
    let u = art.unified(&[&carrier, &factory]).unwrap();
    let expected_nodes = carrier.term_count() + factory.term_count() + art.ontology.term_count();
    let expected_edges = carrier.graph().edge_count()
        + factory.graph().edge_count()
        + art.ontology.graph().edge_count()
        + art.bridges.len();
    assert_eq!(u.node_count(), expected_nodes);
    assert_eq!(u.edge_count(), expected_edges);
}

#[test]
fn intersection_of_fig2_is_the_transport_ontology() {
    // §5.2: "The intersection of the carrier and factory ontologies is
    // the transportation ontology."
    let carrier = examples::carrier();
    let factory = examples::factory();
    let i = intersect(&carrier, &factory, &examples::fig2_rules(), &ArticulationGenerator::new())
        .unwrap();
    assert_eq!(i.name(), "transport");
    assert!(i.defines("Vehicle") && i.defines("CargoCarrier") && i.defines("Euro"));
}

#[test]
fn generation_is_reproducible() {
    let a = articulation();
    let b = articulation();
    assert_eq!(bridge_list(&a), bridge_list(&b));
    assert!(a.ontology.graph().same_shape(b.ontology.graph()));
}
