//! Incremental maintenance (§5.3) as an integration property: source
//! deltas in the independent region never change the articulation;
//! deltas in the bridged region are repaired with bounded work and the
//! repaired articulation matches a from-scratch rebuild where one is
//! defined.

use onion_core::articulate::maintain::{apply_delta, rebuild, triage};
use onion_core::prelude::*;
use onion_core::testkit::{update_stream, UpdateSpec};

fn setup() -> (Ontology, Ontology, Articulation, ArticulationGenerator) {
    let c = examples::carrier();
    let f = examples::factory();
    let generator = ArticulationGenerator::new();
    let art = generator.generate(&examples::fig2_rules(), &[&c, &f]).unwrap();
    (c, f, art, generator)
}

#[test]
fn independent_updates_cost_nothing() {
    let (mut c, f, mut art, generator) = setup();
    let spec = UpdateSpec { bridged_fraction: 0.0, ops: 100, ..Default::default() };
    let ops = update_stream(&c, &art, &spec);
    // actually apply the delta to the source
    let mut g = c.graph().clone();
    onion_core::graph::ops::apply_all(&mut g, &ops).unwrap();
    c = Ontology::from_graph(g).unwrap();

    let before = art.bridges.clone();
    let report = apply_delta(&mut art, "carrier", &ops, &[&c, &f], &generator, None).unwrap();
    assert_eq!(report.ops_relevant, 0);
    assert_eq!(report.bridges_removed, 0);
    assert_eq!(art.bridges, before, "articulation untouched by independent evolution");
    // and the union still materialises over the evolved source
    assert!(art.unified(&[&c, &f]).is_ok());
}

#[test]
fn triage_fraction_tracks_locality_knob() {
    let (c, _, art, _) = setup();
    let mut fractions = Vec::new();
    for bridged in [0.0, 0.5, 1.0] {
        let spec =
            UpdateSpec { bridged_fraction: bridged, delete_fraction: 0.0, ops: 200, seed: 5 };
        let ops = update_stream(&c, &art, &spec);
        let (relevant, _) = triage(&art, "carrier", &ops);
        fractions.push(relevant.len() as f64 / ops.len() as f64);
    }
    assert_eq!(fractions[0], 0.0);
    assert!(fractions[1] > 0.3 && fractions[1] < 0.7, "got {}", fractions[1]);
    assert_eq!(fractions[2], 1.0);
}

#[test]
fn bridged_deletion_then_rebuild_consistency() {
    let (mut c, f, mut art, generator) = setup();
    // delete a bridged term from the source
    c.graph_mut().enable_journal();
    c.graph_mut().delete_node_by_label("Cars").unwrap();
    let ops = c.graph_mut().take_journal();

    let report = apply_delta(&mut art, "carrier", &ops, &[&c, &f], &generator, None).unwrap();
    assert!(report.bridges_removed > 0);
    assert!(report.rules_dropped > 0);

    // the incrementally repaired articulation equals regenerating from
    // the retained rules
    let fresh = rebuild(&art, &[&c, &f], &generator).unwrap();
    let mut incremental: Vec<String> = art.bridges.iter().map(|b| b.to_string()).collect();
    let mut regenerated: Vec<String> = fresh.bridges.iter().map(|b| b.to_string()).collect();
    incremental.sort();
    regenerated.sort();
    assert_eq!(incremental, regenerated);
    // no dangling bridges: the unified graph materialises
    assert!(art.unified(&[&c, &f]).is_ok());
}

#[test]
fn scoped_rearticulation_picks_up_new_shared_terms() {
    let (mut c, mut f, mut art, generator) = setup();
    let bridges_before = art.bridges.len();
    c.graph_mut().enable_journal();
    c.subclass("Ambulance", "Cars").unwrap();
    let ops = c.graph_mut().take_journal();
    f.subclass("Ambulance", "Vehicle").unwrap();

    let pipeline = MatcherPipeline::new().with(onion_core::articulate::ExactLabelMatcher);
    let mut expert = AcceptAll;
    let report = apply_delta(
        &mut art,
        "carrier",
        &ops,
        &[&c, &f],
        &generator,
        Some((&pipeline, &mut expert)),
    )
    .unwrap();
    assert_eq!(report.rules_added, 1);
    assert!(art.bridges.len() > bridges_before);
    assert!(art.is_relevant("carrier", "Ambulance"));
    assert!(art.unified(&[&c, &f]).is_ok());
}

#[test]
fn repeated_deltas_remain_consistent() {
    let (mut c, f, mut art, generator) = setup();
    for round in 0..5 {
        let spec = UpdateSpec { seed: round, ops: 30, bridged_fraction: 0.3, delete_fraction: 0.2 };
        let ops = update_stream(&c, &art, &spec);
        let mut g = c.graph().clone();
        onion_core::graph::ops::apply_all(&mut g, &ops).unwrap();
        c = Ontology::from_graph(g).unwrap();
        apply_delta(&mut art, "carrier", &ops, &[&c, &f], &generator, None).unwrap();
        assert!(
            art.unified(&[&c, &f]).is_ok(),
            "articulation must stay consistent after round {round}"
        );
    }
}
