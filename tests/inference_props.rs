//! Property-based equivalence of the inference strategies (§4.1 / B6)
//! **and** of the engine generations: the interned-`AtomId` engine
//! (`onion_rules::infer`) must be observationally identical — derived
//! fact sets *and* work counters — to the frozen pre-refactor
//! string-keyed engine (`onion_rules::reference`) on arbitrary Horn
//! programs built through the textual `parser`/`horn` boundary, and
//! the shard-parallel engine (`onion_exec::ParallelEngine`) must match
//! both on fact sets and round counters at every thread count (the
//! shard/thread matrix lives in `seminaive_props.rs`).

use proptest::prelude::*;

use onion_core::exec::ParallelEngine;
use onion_core::graph::closure::transitive_pairs;
use onion_core::graph::traverse::EdgeFilter;
use onion_core::prelude::*;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, InferenceEngine, Strategy as InferStrategy};
use onion_core::rules::reference;
use onion_core::rules::AtomTable;
use onion_core::testkit::seed_subclass_facts;

fn edge_list() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..10), 0..30)
}

/// Symbol vocabulary mixing unqualified, qualified and multi-dot names,
/// so the differential test exercises the atom table's namespace split.
fn sym(i: u8) -> String {
    match i % 3 {
        0 => format!("n{i}"),
        1 => format!("o1.t{i}"),
        _ => format!("o2.sub.t{i}"),
    }
}

/// Known-safe clause templates over the shared vocabulary; programs are
/// random subsequences, composed and re-parsed through the text form.
const CLAUSES: &[&str] = &[
    "p(X, Z) :- p(X, Y), p(Y, Z).",
    "q(Y, X) :- p(X, Y).",
    "si(X, Y) :- p(X, Y).",
    "si(X, Z) :- si(X, Y), si(Y, Z).",
    "r(X) :- p(X, \"o1.t1\").",
    "si(X, Y) :- p(X, Y), q(X, Y).",
    "p(\"o1.t4\", \"o2.sub.t5\").",
    "touched(X) :- q(X, Y), si(Y, X).",
];

const PREDS: &[&str] = &["p", "q", "r", "si", "touched"];

fn program_text() -> impl Strategy<Value = String> {
    // bitmask subset of the templates (1.. so programs are non-empty);
    // the vendored proptest shim has no prop::sample
    (1usize..(1 << CLAUSES.len())).prop_map(|mask| {
        CLAUSES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect::<Vec<_>>()
            .join("\n")
    })
}

/// Every predicate's fact set, resolved to strings and sorted.
fn interned_facts(fb: &FactBase, atoms: &AtomTable) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for pred in PREDS {
        let mut rows: Vec<Vec<String>> = fb
            .facts_of(atoms, pred)
            .into_iter()
            .map(|args| args.into_iter().map(str::to_string).collect())
            .collect();
        rows.sort();
        out.push(rows.into_iter().flatten().collect());
    }
    out
}

fn reference_facts(fb: &reference::FactBase) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for pred in PREDS {
        let mut rows: Vec<Vec<String>> = fb
            .facts_of(pred)
            .into_iter()
            .map(|args| args.into_iter().map(str::to_string).collect())
            .collect();
        rows.sort();
        out.push(rows.into_iter().flatten().collect());
    }
    out
}

fn sorted_facts(atoms: &AtomTable, fb: &FactBase, pred: &str) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = fb
        .query2(atoms, pred, None, None)
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// THE differential property of the AtomId port: on random programs
    /// (through the parser text form) and random fact sets, the interned
    /// engine and the frozen string-keyed reference derive identical
    /// fact sets with identical `InferenceStats`, for every strategy.
    #[test]
    fn interned_engine_matches_string_reference(
        text in program_text(),
        edges in edge_list(),
        strat_ix in 0usize..3,
    ) {
        let strat = [InferStrategy::SemiNaive, InferStrategy::Naive, InferStrategy::FullClosure]
            [strat_ix];
        let program = HornProgram::parse(&text).unwrap();

        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let mut rfb = reference::FactBase::new();
        for (a, b) in &edges {
            let (sa, sb) = (sym(*a), sym(*b));
            fb.add(&mut atoms, "p", &[&sa, &sb]);
            rfb.add("p", &[&sa, &sb]);
        }
        let stats = InferenceEngine::new(program.clone())
            .with_strategy(strat)
            .run(&mut atoms, &mut fb)
            .unwrap();
        let ref_stats = reference::InferenceEngine::new(program)
            .with_strategy(strat)
            .run(&mut rfb)
            .unwrap();

        prop_assert_eq!(stats, ref_stats, "work counters must match exactly ({:?})", strat);
        prop_assert_eq!(fb.len(), rfb.len());
        prop_assert_eq!(
            interned_facts(&fb, &atoms),
            reference_facts(&rfb),
            "derived fact sets must match ({:?})", strat
        );
    }

    /// Interning is stable across `FactBase` reuse (the shared-table
    /// churn shape): re-seeding the same graph into a fresh base interns
    /// nothing new and yields the identical fact set; growing the graph
    /// interns exactly the new vocabulary.
    #[test]
    fn interning_stable_across_factbase_reuse(edges in edge_list(), extra in 0u8..10) {
        let mut g = OntGraph::new("churn");
        // anchor edge so the initial seeding always interns the
        // predicate, the namespace and n0 (the growth step's target)
        g.ensure_edge_by_labels("n0", rel::SUBCLASS_OF, "n1").unwrap();
        for (a, b) in &edges {
            if a != b {
                let _ = g.ensure_edge_by_labels(&format!("n{a}"), rel::SUBCLASS_OF, &format!("n{b}"));
            }
        }
        let mut atoms = AtomTable::new();
        let mut fb1 = FactBase::new();
        let o = Ontology::from_graph(g.clone()).unwrap();
        seed_subclass_facts(&o, &mut atoms, &mut fb1);
        let warm = atoms.len();

        let mut fb2 = FactBase::new();
        seed_subclass_facts(&o, &mut atoms, &mut fb2);
        prop_assert_eq!(atoms.len(), warm, "re-seeding interns nothing new");
        prop_assert_eq!(fb1.len(), fb2.len());
        prop_assert_eq!(
            sorted_facts(&atoms, &fb1, "subclassof"),
            sorted_facts(&atoms, &fb2, "subclassof")
        );

        // grow the graph by one fresh node: exactly one new name atom
        let fresh = format!("fresh{extra}");
        let root = g.ensure_node("n0").unwrap();
        let f = g.ensure_node(&fresh).unwrap();
        g.add_edge(f, rel::SUBCLASS_OF, root).unwrap();
        let o2 = Ontology::from_graph(g).unwrap();
        let mut fb3 = FactBase::new();
        seed_subclass_facts(&o2, &mut atoms, &mut fb3);
        prop_assert_eq!(atoms.len(), warm + 1, "one new symbol for the fresh node");
        prop_assert!(fb3.contains(&atoms, "subclassof", &[&format!("churn.{fresh}"), "churn.n0"]));
    }

    /// All three strategies derive identical fixpoints.
    #[test]
    fn strategies_agree(edges in edge_list()) {
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut results = Vec::new();
        for strat in [InferStrategy::SemiNaive, InferStrategy::Naive, InferStrategy::FullClosure] {
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            for (a, b) in &edges {
                fb.add(&mut atoms, "p", &[&format!("n{a}"), &format!("n{b}")]);
            }
            InferenceEngine::new(program.clone())
                .with_strategy(strat)
                .run(&mut atoms, &mut fb)
                .unwrap();
            results.push(sorted_facts(&atoms, &fb, "p"));
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }

    /// Horn transitivity agrees with graph transitive closure.
    #[test]
    fn horn_closure_matches_graph_closure(edges in edge_list()) {
        // graph side
        let mut g = OntGraph::new("t");
        for (a, b) in &edges {
            if a != b {
                let _ = g.ensure_edge_by_labels(&format!("n{a}"), "S", &format!("n{b}"));
            }
        }
        let mut graph_pairs: Vec<(String, String)> =
            transitive_pairs(&g, &EdgeFilter::label("S"))
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| {
                    (
                        g.node_label(a).unwrap().to_string(),
                        g.node_label(b).unwrap().to_string(),
                    )
                })
                .collect();
        graph_pairs.sort();
        graph_pairs.dedup();

        // horn side
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for (a, b) in &edges {
            if a != b {
                fb.add(&mut atoms, "p", &[&format!("n{a}"), &format!("n{b}")]);
            }
        }
        InferenceEngine::new(program).run(&mut atoms, &mut fb).unwrap();
        let horn_pairs: Vec<(String, String)> = sorted_facts(&atoms, &fb, "p")
            .into_iter()
            .filter(|(a, b)| a != b)
            .collect();
        prop_assert_eq!(graph_pairs, horn_pairs);
    }

    /// Inference is monotone: adding facts never removes derivations.
    #[test]
    fn inference_monotone(edges in edge_list(), extra in (0u8..10, 0u8..10)) {
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut a1 = AtomTable::new();
        let mut fb1 = FactBase::new();
        for (a, b) in &edges {
            fb1.add(&mut a1, "p", &[&format!("n{a}"), &format!("n{b}")]);
        }
        InferenceEngine::new(program.clone()).run(&mut a1, &mut fb1).unwrap();
        let small = sorted_facts(&a1, &fb1, "p");

        let mut a2 = AtomTable::new();
        let mut fb2 = FactBase::new();
        for (a, b) in &edges {
            fb2.add(&mut a2, "p", &[&format!("n{a}"), &format!("n{b}")]);
        }
        fb2.add(&mut a2, "p", &[&format!("n{}", extra.0), &format!("n{}", extra.1)]);
        InferenceEngine::new(program).run(&mut a2, &mut fb2).unwrap();
        let big = sorted_facts(&a2, &fb2, "p");
        for fact in &small {
            prop_assert!(big.contains(fact), "lost fact {fact:?}");
        }
    }

    /// Running the engine twice adds nothing (fixpoint is a fixpoint).
    #[test]
    fn fixpoint_is_stable(edges in edge_list()) {
        let program = HornProgram::parse(
            "p(X, Z) :- p(X, Y), p(Y, Z). q(Y, X) :- p(X, Y).",
        )
        .unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for (a, b) in &edges {
            fb.add(&mut atoms, "p", &[&format!("n{a}"), &format!("n{b}")]);
        }
        InferenceEngine::new(program.clone()).run(&mut atoms, &mut fb).unwrap();
        let size = fb.len();
        let stats = InferenceEngine::new(program).run(&mut atoms, &mut fb).unwrap();
        prop_assert_eq!(fb.len(), size);
        prop_assert_eq!(stats.derived, 0);
    }

    /// The per-round ledger is internally consistent for every
    /// strategy: one entry per iteration, a zero-derivation final
    /// round at fixpoint, examined totals that add up, and (semi-naive)
    /// each round's delta being exactly the previous round's output.
    #[test]
    fn round_ledger_is_consistent(
        text in program_text(),
        edges in edge_list(),
        strat_ix in 0usize..3,
    ) {
        let strat = [InferStrategy::SemiNaive, InferStrategy::Naive, InferStrategy::FullClosure]
            [strat_ix];
        let program = HornProgram::parse(&text).unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for (a, b) in &edges {
            let (sa, sb) = (sym(*a), sym(*b));
            fb.add(&mut atoms, "p", &[&sa, &sb]);
        }
        let stats = InferenceEngine::new(program)
            .with_strategy(strat)
            .run(&mut atoms, &mut fb)
            .unwrap();
        prop_assert_eq!(stats.rounds.len(), stats.iterations);
        let last = stats.rounds.last().unwrap();
        prop_assert_eq!(last.derived, 0, "final round proves the fixpoint");
        let examined: usize = stats.rounds.iter().map(|r| r.examined).sum();
        prop_assert_eq!(examined, stats.atoms_examined);
        let derived: usize = stats.rounds.iter().map(|r| r.derived).sum();
        prop_assert!(derived <= stats.derived, "rounds exclude ground-clause fires");
        if strat == InferStrategy::SemiNaive {
            for r in 1..stats.rounds.len() {
                prop_assert_eq!(
                    stats.rounds[r].delta, stats.rounds[r - 1].derived,
                    "round {}'s delta is round {}'s output", r, r - 1
                );
            }
        }
    }

    /// Naive and semi-naive add the *same fact set in the same round*:
    /// the per-round derivation profile — not just the fixpoint — is
    /// strategy-independent.
    #[test]
    fn naive_and_seminaive_round_profiles_agree(text in program_text(), edges in edge_list()) {
        let program = HornProgram::parse(&text).unwrap();
        let mut profiles = Vec::new();
        for strat in [InferStrategy::SemiNaive, InferStrategy::Naive] {
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            for (a, b) in &edges {
                let (sa, sb) = (sym(*a), sym(*b));
                fb.add(&mut atoms, "p", &[&sa, &sb]);
            }
            let stats = InferenceEngine::new(program.clone())
                .with_strategy(strat)
                .run(&mut atoms, &mut fb)
                .unwrap();
            profiles.push((
                stats.iterations,
                stats.derived,
                stats.rounds.iter().map(|r| r.derived).collect::<Vec<_>>(),
            ));
        }
        prop_assert_eq!(&profiles[0], &profiles[1]);
    }

    /// The parallel engine is a drop-in semi-naive: identical fact
    /// sets, totals, and per-round delta/derived counters vs both the
    /// sequential interned engine and the frozen string reference, and
    /// byte-identical `InferenceStats` across thread counts.
    #[test]
    fn parallel_engine_matches_reference(text in program_text(), edges in edge_list()) {
        let program = HornProgram::parse(&text).unwrap();

        let mut rfb = reference::FactBase::new();
        for (a, b) in &edges {
            let (sa, sb) = (sym(*a), sym(*b));
            rfb.add("p", &[&sa, &sb]);
        }
        let ref_stats = reference::InferenceEngine::new(program.clone()).run(&mut rfb).unwrap();
        let expected = reference_facts(&rfb);

        let mut baseline: Option<onion_core::rules::InferenceStats> = None;
        for threads in [1usize, 2, 4] {
            let exec = Executor::new(threads);
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            for (a, b) in &edges {
                let (sa, sb) = (sym(*a), sym(*b));
                fb.add(&mut atoms, "p", &[&sa, &sb]);
            }
            let stats = ParallelEngine::new(program.clone())
                .run(&exec, &mut atoms, &mut fb)
                .unwrap();
            prop_assert_eq!(stats.iterations, ref_stats.iterations, "threads={}", threads);
            prop_assert_eq!(stats.derived, ref_stats.derived, "threads={}", threads);
            let rounds: Vec<(usize, usize)> =
                stats.rounds.iter().map(|r| (r.delta, r.derived)).collect();
            let ref_rounds: Vec<(usize, usize)> =
                ref_stats.rounds.iter().map(|r| (r.delta, r.derived)).collect();
            prop_assert_eq!(rounds, ref_rounds, "threads={}", threads);
            prop_assert_eq!(
                interned_facts(&fb, &atoms),
                expected.clone(),
                "parallel fact set matches reference (threads={})", threads
            );
            match &baseline {
                None => baseline = Some(stats),
                Some(first) => prop_assert_eq!(
                    &stats, first,
                    "InferenceStats byte-identical across thread counts"
                ),
            }
        }
    }

    /// Semi-naive never examines more candidate atoms than full-closure.
    #[test]
    fn seminaive_no_worse_than_fullclosure(edges in edge_list()) {
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut effort = Vec::new();
        for strat in [InferStrategy::SemiNaive, InferStrategy::FullClosure] {
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            for (a, b) in &edges {
                fb.add(&mut atoms, "p", &[&format!("n{a}"), &format!("n{b}")]);
            }
            let stats = InferenceEngine::new(program.clone())
                .with_strategy(strat)
                .run(&mut atoms, &mut fb)
                .unwrap();
            effort.push(stats.atoms_examined);
        }
        prop_assert!(effort[0] <= effort[1],
            "semi-naive {} > full-closure {}", effort[0], effort[1]);
    }
}
