//! Property-based equivalence of the inference strategies (§4.1 / B6):
//! semi-naive, naive and the full-closure baseline must compute the same
//! least fixpoint on arbitrary fact bases, and closure inference must
//! agree with graph reachability.

use proptest::prelude::*;

use onion_core::graph::closure::transitive_pairs;
use onion_core::graph::traverse::EdgeFilter;
use onion_core::prelude::*;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, InferenceEngine, Strategy as InferStrategy};

fn edge_list() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..10), 0..30)
}

fn sorted_facts(fb: &FactBase, pred: &str) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = fb
        .query2(pred, None, None)
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// All three strategies derive identical fixpoints.
    #[test]
    fn strategies_agree(edges in edge_list()) {
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut results = Vec::new();
        for strat in [InferStrategy::SemiNaive, InferStrategy::Naive, InferStrategy::FullClosure] {
            let mut fb = FactBase::new();
            for (a, b) in &edges {
                fb.add("p", &[&format!("n{a}"), &format!("n{b}")]);
            }
            InferenceEngine::new(program.clone())
                .with_strategy(strat)
                .run(&mut fb)
                .unwrap();
            results.push(sorted_facts(&fb, "p"));
        }
        prop_assert_eq!(&results[0], &results[1]);
        prop_assert_eq!(&results[1], &results[2]);
    }

    /// Horn transitivity agrees with graph transitive closure.
    #[test]
    fn horn_closure_matches_graph_closure(edges in edge_list()) {
        // graph side
        let mut g = OntGraph::new("t");
        for (a, b) in &edges {
            if a != b {
                let _ = g.ensure_edge_by_labels(&format!("n{a}"), "S", &format!("n{b}"));
            }
        }
        let mut graph_pairs: Vec<(String, String)> =
            transitive_pairs(&g, &EdgeFilter::label("S"))
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| {
                    (
                        g.node_label(a).unwrap().to_string(),
                        g.node_label(b).unwrap().to_string(),
                    )
                })
                .collect();
        graph_pairs.sort();
        graph_pairs.dedup();

        // horn side
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut fb = FactBase::new();
        for (a, b) in &edges {
            if a != b {
                fb.add("p", &[&format!("n{a}"), &format!("n{b}")]);
            }
        }
        InferenceEngine::new(program).run(&mut fb).unwrap();
        let horn_pairs: Vec<(String, String)> = sorted_facts(&fb, "p")
            .into_iter()
            .filter(|(a, b)| a != b)
            .collect();
        prop_assert_eq!(graph_pairs, horn_pairs);
    }

    /// Inference is monotone: adding facts never removes derivations.
    #[test]
    fn inference_monotone(edges in edge_list(), extra in (0u8..10, 0u8..10)) {
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut fb1 = FactBase::new();
        for (a, b) in &edges {
            fb1.add("p", &[&format!("n{a}"), &format!("n{b}")]);
        }
        InferenceEngine::new(program.clone()).run(&mut fb1).unwrap();
        let small = sorted_facts(&fb1, "p");

        let mut fb2 = FactBase::new();
        for (a, b) in &edges {
            fb2.add("p", &[&format!("n{a}"), &format!("n{b}")]);
        }
        fb2.add("p", &[&format!("n{}", extra.0), &format!("n{}", extra.1)]);
        InferenceEngine::new(program).run(&mut fb2).unwrap();
        let big = sorted_facts(&fb2, "p");
        for fact in &small {
            prop_assert!(big.contains(fact), "lost fact {fact:?}");
        }
    }

    /// Running the engine twice adds nothing (fixpoint is a fixpoint).
    #[test]
    fn fixpoint_is_stable(edges in edge_list()) {
        let program = HornProgram::parse(
            "p(X, Z) :- p(X, Y), p(Y, Z). q(Y, X) :- p(X, Y).",
        )
        .unwrap();
        let mut fb = FactBase::new();
        for (a, b) in &edges {
            fb.add("p", &[&format!("n{a}"), &format!("n{b}")]);
        }
        InferenceEngine::new(program.clone()).run(&mut fb).unwrap();
        let size = fb.len();
        let stats = InferenceEngine::new(program).run(&mut fb).unwrap();
        prop_assert_eq!(fb.len(), size);
        prop_assert_eq!(stats.derived, 0);
    }

    /// Semi-naive never examines more candidate atoms than full-closure.
    #[test]
    fn seminaive_no_worse_than_fullclosure(edges in edge_list()) {
        let program = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut effort = Vec::new();
        for strat in [InferStrategy::SemiNaive, InferStrategy::FullClosure] {
            let mut fb = FactBase::new();
            for (a, b) in &edges {
                fb.add("p", &[&format!("n{a}"), &format!("n{b}")]);
            }
            let stats = InferenceEngine::new(program.clone())
                .with_strategy(strat)
                .run(&mut fb)
                .unwrap();
            effort.push(stats.atoms_examined);
        }
        prop_assert!(effort[0] <= effort[1],
            "semi-naive {} > full-closure {}", effort[0], effort[1]);
    }
}
