//! Differential properties of the query-serving fast path
//! ([`OnionSystem::run_batch`] + the epoch-keyed result cache):
//!
//! * batches through a cache-enabled system are **element-wise
//!   identical** to an identically-built cache-less system, across
//!   rounds of interleaved result-changing edits and source publishes
//!   — a stale hit after an edit is the bug class this suite exists to
//!   kill;
//! * under churn far past capacity the cache stays bounded (`entries ≤
//!   capacity`), evicts, and still serves correct results;
//! * exact-duplicate queries in one batch are deduplicated (the
//!   duplicate shares the executed `Arc`) even with the cache
//!   disabled, while parse errors stay reported in their input slot.

use std::sync::Arc;

use proptest::prelude::*;

use onion_core::exec::Executor;
use onion_core::prelude::*;
use onion_core::testkit::{overlap_pair, random_queries, OverlapPair, OverlapSpec};
use onion_core::OnionSystem;

fn std_pair(seed: u64, concepts: usize) -> OverlapPair {
    overlap_pair(&OverlapSpec { seed, concepts, overlap: 0.3, rename_prob: 0.5, max_children: 5 })
}

fn articulated(pair: &OverlapPair) -> Articulation {
    let mut rules = RuleSet::new();
    for (l, r) in &pair.truth {
        let (lo, ln) = l.split_once('.').unwrap();
        let (ro, rn) = r.split_once('.').unwrap();
        rules
            .push(ArticulationRule::term_implies(Term::qualified(lo, ln), Term::qualified(ro, rn)));
    }
    ArticulationGenerator::new().generate(&rules, &[&pair.left, &pair.right]).unwrap()
}

/// One side's knowledge base with `n` priced instances; growing `n`
/// changes query answers, which is exactly what the differential
/// rounds need.
fn side_kb(name: &str, onto: &Ontology, n: usize) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new(name);
    let classes: Vec<String> = onto.graph().nodes().map(|x| x.label.to_string()).collect();
    for i in 0..n {
        let class = &classes[i % classes.len()];
        kb.add(
            Instance::new(&format!("{name}_{i}"), class)
                .with("Price", Value::Num(((i * 37) % 50_000) as f64)),
        );
    }
    kb
}

/// Identically-built two-source system; `cache == 0` leaves the query
/// cache disabled.
fn build_system(pair: &OverlapPair, instances: usize, cache: usize) -> OnionSystem {
    let mut s = OnionSystem::new(pair.lexicon.clone());
    s.add_source(pair.left.clone());
    s.add_source(pair.right.clone());
    s.add_knowledge_base(side_kb("left", &pair.left, instances));
    s.add_knowledge_base(side_kb("right", &pair.right, instances));
    s.set_articulation(articulated(pair));
    if cache > 0 {
        s.set_query_cache(cache);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Cache-on vs cache-off differential across interleaved edits and
    /// publishes. Every round runs the batch twice on the cached
    /// system — the second pass is all warm hits, so any entry
    /// surviving the previous round's epoch bump would surface here as
    /// a stale result.
    #[test]
    fn cached_batches_match_uncached_across_interleaved_publishes(
        seed in 0u64..10,
        rounds in 1usize..4,
        base in 40usize..80,
    ) {
        let pair = std_pair(seed, 80);
        let queries = random_queries(&articulated(&pair), "Price", 16, seed ^ 0xca11);
        let mut cached = build_system(&pair, base, 64);
        let mut plain = build_system(&pair, base, 0);
        let exec = Executor::new(2);

        for round in 0..=rounds {
            let want: Vec<ResultSet> = plain
                .run_batch(&exec, &queries)
                .into_iter()
                .map(|r| r.unwrap().as_ref().clone())
                .collect();
            for pass in 0..2 {
                let got = cached.run_batch(&exec, &queries);
                for (slot, (g, w)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        g.as_ref().unwrap().as_ref(), w,
                        "round={} pass={} slot={}", round, pass, slot
                    );
                }
            }

            // result-changing edit on BOTH systems: regrow the left KB
            // (replaces by name, bumps the state epoch) ...
            let grown = base + (round + 1) * 7;
            cached.add_knowledge_base(side_kb("left", &pair.left, grown));
            plain.add_knowledge_base(side_kb("left", &pair.left, grown));
            // ... plus a graph edit + publish on the right source
            for s in [&mut cached, &mut plain] {
                let g = s.source_mut("right").unwrap().graph_mut();
                let n = g.node_ids().next().unwrap();
                g.ensure_edge(n, &format!("probe{round}"), n).unwrap();
                s.publish_source("right").unwrap();
            }
        }

        let stats = cached.query_cache_stats().unwrap();
        prop_assert!(stats.hits > 0, "warm passes must hit");
        prop_assert!(stats.misses > 0, "epoch bumps must retire entries");
    }
}

/// A capacity-4 cache fed 24 distinct queries per round: entries stay
/// bounded by the effective capacity, the CLOCK sweep evicts, and the
/// served results still match the uncached system exactly.
#[test]
fn eviction_churn_stays_bounded_and_correct() {
    let pair = std_pair(77, 60);
    let queries: Vec<Query> = articulated(&pair)
        .ontology
        .graph()
        .nodes()
        .take(24)
        .map(|n| Query::all(&n.label.to_string()).select("Price"))
        .collect();
    assert!(queries.len() > 8, "need far more distinct queries than capacity");

    let cached = build_system(&pair, 120, 4);
    let plain = build_system(&pair, 120, 0);
    let exec = Executor::new(2);
    for round in 0..3 {
        let want = plain.run_batch(&exec, &queries);
        let got = cached.run_batch(&exec, &queries);
        for (slot, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.as_ref().unwrap().as_ref(),
                w.as_ref().unwrap().as_ref(),
                "round={round} slot={slot}"
            );
        }
    }

    let stats = cached.query_cache_stats().unwrap();
    assert!(
        stats.entries <= stats.capacity,
        "cache must stay bounded: {} entries > {} capacity",
        stats.entries,
        stats.capacity
    );
    assert!(stats.evictions > 0, "churn past capacity must evict");
    assert_eq!(
        stats.insertions,
        stats.entries as u64 + stats.evictions,
        "every insert is either live or was evicted"
    );
}

/// Exact duplicates in a batch execute once and share the result
/// `Arc`; parse errors stay in their input slot. Holds with the cache
/// enabled AND disabled (dedup is a batch-scheduler property, not a
/// cache property).
#[test]
fn batch_dedup_and_error_slots_survive_cache_off() {
    let pair = std_pair(9, 60);
    let valid = {
        let art = articulated(&pair);
        let class = art.ontology.graph().nodes().next().unwrap().label.to_string();
        Query::all(&class).select("Price").to_string()
    };
    let texts = [valid.as_str(), "not a query", valid.as_str(), "definitely ) not ( either"];
    let exec = Executor::new(2);

    let mut answers = Vec::new();
    for capacity in [8usize, 0] {
        let system = build_system(&pair, 50, capacity);
        let out = system.query_batch(&exec, &texts);
        assert_eq!(out.len(), texts.len());
        assert!(out[0].is_ok(), "capacity={capacity}");
        assert!(out[1].is_err(), "parse error stays in slot 1 (capacity={capacity})");
        assert!(out[3].is_err(), "parse error stays in slot 3 (capacity={capacity})");
        assert!(
            Arc::ptr_eq(out[0].as_ref().unwrap(), out[2].as_ref().unwrap()),
            "duplicate shares the executed Arc (capacity={capacity})"
        );
        answers.push(out[0].as_ref().unwrap().as_ref().clone());
    }
    assert_eq!(answers[0], answers[1], "cache on/off answers agree");
}
