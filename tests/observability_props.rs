//! Property suite for `onion-obs` (satellite of the observability PR).
//!
//! Three contracts:
//!
//! * **Snapshot monotonicity** — a [`MetricsSnapshot`] taken while
//!   writers hammer the striped counters never observes a counter or
//!   histogram count below a previously observed value (per-stripe
//!   relaxed `fetch_add` is monotone, and a sum of monotone reads is
//!   monotone).
//! * **Strict observationality** — enabling recording leaves the
//!   inference engines and the articulation generator byte-identical:
//!   same fact bases (atom ids included), same `InferenceStats`, same
//!   full `Debug` rendering of the articulation, across the same
//!   shard × thread matrix `seminaive_props` pins.
//! * **Prometheus format** — the text export of a busy registry passes
//!   the format lint (TYPE lines, cumulative buckets, `+Inf` ==
//!   `_count`).

use proptest::prelude::*;

use onion_core::articulate::{ArticulationGenerator, GeneratorConfig};
use onion_core::exec::{par_seed_subclass_facts, ParallelEngine};
use onion_core::obs;
use onion_core::obs::{HistKind, Registry};
use onion_core::ontology::examples::{carrier, factory};
use onion_core::prelude::*;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, InferenceEngine};
use onion_core::rules::properties::RelationRegistry;
use onion_core::rules::{parse_rules, AtomTable, InferenceStats};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 64];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn edge_list() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..24, 0u8..24), 1..40)
}

fn build_graph(edges: &[(u8, u8)], shards: usize) -> OntGraph {
    let mut g = OntGraph::new("g");
    for (a, b) in edges {
        if a != b {
            let _ = g.ensure_edge_by_labels(&format!("n{a}"), rel::SUBCLASS_OF, &format!("n{b}"));
        }
    }
    g.set_shard_count(shards);
    g
}

/// One full run of the parallel matrix plus the sequential engine and
/// the generator, all on a **local** deterministic workload; returns
/// every artifact a mode flip could possibly disturb.
fn run_workload(edges: &[(u8, u8)]) -> (Vec<onion_core::rules::Fact>, InferenceStats, String) {
    let program = HornProgram::standard(&RelationRegistry::onion_default());

    let mut seq_atoms = AtomTable::new();
    let mut seq_fb = FactBase::new();
    let g0 = build_graph(edges, 1);
    let sub = seq_atoms.intern("subclassof");
    {
        let mut cursor = seq_atoms.graph_atoms(&g0);
        if let Some(lid) = g0.label_id(rel::SUBCLASS_OF) {
            for (_, src, l, dst) in g0.edge_entries() {
                if l == lid {
                    if let (Some(s), Some(d)) = (cursor.node_atom(src), cursor.node_atom(dst)) {
                        seq_fb.add_fact(sub, vec![s, d]);
                    }
                }
            }
        }
    }
    let seq_stats = InferenceEngine::new(program.clone()).run(&mut seq_atoms, &mut seq_fb).unwrap();

    // the parallel family must agree with itself in either mode; keep
    // one representative (the matrix identity itself is seminaive_props'
    // job — here the subject is the mode flip)
    let mut family: Option<(Vec<onion_core::rules::Fact>, InferenceStats)> = None;
    for shards in SHARD_COUNTS {
        let g = build_graph(edges, shards);
        for threads in THREAD_COUNTS {
            let exec = Executor::new(threads);
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            par_seed_subclass_facts(&exec, &g, &mut atoms, &mut fb);
            let stats =
                ParallelEngine::new(program.clone()).run(&exec, &mut atoms, &mut fb).unwrap();
            let snapshot = (fb.facts_in_pred_order(), stats);
            match &family {
                None => family = Some(snapshot),
                Some(first) => assert_eq!(&snapshot, first, "shards={shards} threads={threads}"),
            }
        }
    }

    let gen = ArticulationGenerator::with_config(GeneratorConfig {
        expand_with_inference: true,
        ..Default::default()
    });
    let rules = parse_rules("carrier.Cars => transport.Vehicle\n").unwrap();
    let art = gen.generate(&rules, &[&carrier(), &factory()]).unwrap();

    let (facts, stats) = family.unwrap();
    assert_eq!(stats.derived, seq_stats.derived);
    (facts, stats, mask_graph_id(&format!("{art:?}")))
}

/// Masks the process-global `graph_id` counter (fresh per generated
/// graph, mode-independent noise) out of a Debug rendering.
fn mask_graph_id(s: &str) -> String {
    let mut out = String::new();
    let mut rest = s;
    while let Some(i) = rest.find("graph_id: ") {
        let tail = &rest[i + "graph_id: ".len()..];
        let digits = tail.find(|c: char| !c.is_ascii_digit()).unwrap_or(tail.len());
        out.push_str(&rest[..i]);
        out.push_str("graph_id: _");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Counters and histogram counts observed by concurrent snapshots
    /// are monotone: no snapshot ever reads a value below what an
    /// earlier snapshot of the same series read.
    #[test]
    fn snapshot_counters_never_decrease(writers in 1usize..4, per_writer in 1u64..4000) {
        let reg = std::sync::Arc::new(Registry::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("obs_props_total");
                    let h = reg.histogram("obs_props_us", HistKind::LatencyUs);
                    for i in 0..per_writer {
                        c.add(1 + (w as u64 & 1));
                        h.observe(i & 2047);
                    }
                })
            })
            .collect();
        let reader = {
            let reg = std::sync::Arc::clone(&reg);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let (mut last_c, mut last_h) = (0u64, 0u64);
                let mut observed = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = reg.snapshot();
                    let c = snap.counter("obs_props_total").unwrap_or(0);
                    let h = snap.histogram("obs_props_us").map(|h| h.count).unwrap_or(0);
                    assert!(c >= last_c, "counter went backwards: {last_c} -> {c}");
                    assert!(h >= last_h, "hist count went backwards: {last_h} -> {h}");
                    (last_c, last_h) = (c, h);
                    observed += 1;
                }
                observed
            })
        };
        for t in handles {
            t.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        prop_assert!(reader.join().unwrap() > 0);

        // final totals are exact — nothing was lost across stripes
        let snap = reg.snapshot();
        let expected: u64 = (0..writers as u64).map(|w| per_writer * (1 + (w & 1))).sum();
        prop_assert_eq!(snap.counter("obs_props_total"), Some(expected));
        prop_assert_eq!(
            snap.histogram("obs_props_us").map(|h| h.count),
            Some(per_writer * writers as u64)
        );
    }

    /// The mode flip is invisible to the engines: disabled vs enabled
    /// recording produces byte-identical fact bases, stats, and
    /// articulation renderings (the instrumentation is strictly
    /// observational).
    #[test]
    fn recording_mode_never_changes_results(edges in edge_list()) {
        let was = obs::enabled();
        obs::set_enabled(false);
        let off = run_workload(&edges);
        obs::set_enabled(true);
        let on = run_workload(&edges);
        obs::set_enabled(was);
        prop_assert_eq!(off.0, on.0, "fact bases differ across recording modes");
        prop_assert_eq!(off.1, on.1, "InferenceStats differ across recording modes");
        prop_assert_eq!(off.2, on.2, "articulation Debug differs across recording modes");
    }
}

/// The Prometheus rendering of a registry that holds every metric kind
/// passes the format lint, and the `+Inf` bucket equals `_count` for
/// every histogram.
#[test]
fn prometheus_export_passes_format_lint() {
    let reg = Registry::new();
    reg.counter("onion_lint_total").add(7);
    reg.gauge("onion_lint_depth").set(-3);
    let lat = reg.histogram("onion_lint_us", HistKind::LatencyUs);
    let cnt = reg.histogram("onion_lint_items", HistKind::Count);
    for i in 0..1000u64 {
        lat.observe(i * 13 % 200_000);
        cnt.observe(i % 300);
    }
    let snap = reg.snapshot();
    let text = snap.to_prometheus();
    obs::lint_prometheus(&text).expect("well-formed Prometheus text format");
    for h in [snap.histogram("onion_lint_us").unwrap(), snap.histogram("onion_lint_items").unwrap()]
    {
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count, "+Inf bucket sum == _count");
        assert_eq!(h.count, 1000);
    }
    // the global registry's export stays lintable too (whatever other
    // tests in this binary recorded into it)
    obs::lint_prometheus(&obs::global().snapshot().to_prometheus()).expect("global export lints");
}
