//! WAL wire-format properties (the durable encoding of [`GraphOp`]):
//!
//! * `encode_op` / `decode_op` round-trip every op shape — labels with
//!   dots (the pattern notation's separator), non-ASCII labels, empty
//!   labels, and empty edge lists;
//! * a golden-bytes test pins the exact little-endian layout so the
//!   on-disk format cannot drift silently between versions;
//! * decoding is total: arbitrary byte soup and truncated encodings
//!   yield errors, never panics or misparses.

use proptest::prelude::*;

use onion_core::graph::wal::{decode_op, encode_op};
use onion_core::prelude::*;

fn label() -> impl Strategy<Value = String> {
    prop_oneof![
        // Plain identifiers.
        "[a-zA-Z0-9_]{1,10}",
        // Dotted, like the paper's `carrier:car.driver` notation.
        "[a-z]{1,4}\\.[a-z]{1,4}",
        // Non-ASCII (multi-byte UTF-8): Latin Extended-A, Greek, Cyrillic.
        "[\u{100}-\u{17F}α-ωа-я]{1,6}",
        // The empty string is representable on the wire even though the
        // graph layer never emits it.
        Just(String::new()),
    ]
}

fn pairs() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((label(), label()), 0..4)
}

fn triples() -> impl Strategy<Value = Vec<(String, String, String)>> {
    proptest::collection::vec((label(), label(), label()), 0..4)
}

fn op() -> impl Strategy<Value = GraphOp> {
    prop_oneof![
        (label(), pairs(), pairs()).prop_map(|(label, out_edges, in_edges)| GraphOp::NodeAdd {
            label,
            out_edges,
            in_edges
        }),
        (label(), pairs(), pairs()).prop_map(|(label, out_edges, in_edges)| GraphOp::NodeDelete {
            label,
            out_edges,
            in_edges
        }),
        triples().prop_map(|edges| GraphOp::EdgeAdd { edges }),
        triples().prop_map(|edges| GraphOp::EdgeDelete { edges }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Every op survives an encode/decode round trip bit-exactly.
    #[test]
    fn ops_roundtrip(op in op()) {
        let mut buf = Vec::new();
        encode_op(&op, &mut buf);
        let back = decode_op(&buf).expect("decode of fresh encoding");
        prop_assert_eq!(back, op);
    }

    /// Any strict prefix of a valid encoding is rejected — a torn write
    /// can never silently decode to a different op.
    #[test]
    fn truncated_encodings_are_rejected(op in op()) {
        let mut buf = Vec::new();
        encode_op(&op, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(decode_op(&buf[..cut]).is_err(), "prefix of {} bytes decoded", cut);
        }
    }

    /// Decoding arbitrary bytes returns an error or an op — it never
    /// panics, whatever the corruption looks like.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_op(&bytes);
    }
}

/// Pins the exact wire layout: `[u8 tag]` then little-endian `u32`
/// length-prefixed UTF-8 strings and `u32` count-prefixed lists.
#[test]
fn golden_bytes() {
    // NodeAdd, non-ASCII dotted label, no adjacent edges.
    let op =
        GraphOp::NodeAdd { label: "caf\u{e9}.x".to_string(), out_edges: vec![], in_edges: vec![] };
    let want: Vec<u8> = [
        &[1u8][..],          // tag: NodeAdd
        &7u32.to_le_bytes(), // label byte length (é is 2 bytes)
        "caf\u{e9}.x".as_bytes(),
        &0u32.to_le_bytes(), // out-edge count
        &0u32.to_le_bytes(), // in-edge count
    ]
    .concat();
    let mut buf = Vec::new();
    encode_op(&op, &mut buf);
    assert_eq!(buf, want);
    assert_eq!(decode_op(&want).unwrap(), op);

    // NodeDelete with a captured neighbourhood.
    let op = GraphOp::NodeDelete {
        label: "n".to_string(),
        out_edges: vec![("e".to_string(), "m".to_string())],
        in_edges: vec![],
    };
    let want: Vec<u8> = [
        &[2u8][..], // tag: NodeDelete
        &1u32.to_le_bytes(),
        b"n",
        &1u32.to_le_bytes(), // out-edge count
        &1u32.to_le_bytes(),
        b"e",
        &1u32.to_le_bytes(),
        b"m",
        &0u32.to_le_bytes(), // in-edge count
    ]
    .concat();
    let mut buf = Vec::new();
    encode_op(&op, &mut buf);
    assert_eq!(buf, want);
    assert_eq!(decode_op(&want).unwrap(), op);

    // EdgeAdd with one triple.
    let op = GraphOp::EdgeAdd {
        edges: vec![("a".to_string(), "SubclassOf".to_string(), "b".to_string())],
    };
    let want: Vec<u8> = [
        &[3u8][..],          // tag: EdgeAdd
        &1u32.to_le_bytes(), // triple count
        &1u32.to_le_bytes(),
        b"a",
        &10u32.to_le_bytes(),
        b"SubclassOf",
        &1u32.to_le_bytes(),
        b"b",
    ]
    .concat();
    let mut buf = Vec::new();
    encode_op(&op, &mut buf);
    assert_eq!(buf, want);
    assert_eq!(decode_op(&want).unwrap(), op);

    // EdgeDelete with an empty edge list.
    let op = GraphOp::EdgeDelete { edges: vec![] };
    let want: Vec<u8> = [&[4u8][..], &0u32.to_le_bytes()].concat();
    let mut buf = Vec::new();
    encode_op(&op, &mut buf);
    assert_eq!(buf, want);
    assert_eq!(decode_op(&want).unwrap(), op);
}

/// The empty input is not a valid op.
#[test]
fn empty_input_is_rejected() {
    assert!(decode_op(&[]).is_err());
}
