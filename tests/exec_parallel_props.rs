//! Properties of the `onion-exec` parallel execution subsystem:
//!
//! * parallel closure/traversal/batch results are **identical** to the
//!   sequential path on testkit DAGs and random graphs, at every thread
//!   count;
//! * snapshot isolation holds: a traversal running against a snapshot
//!   observes exactly the epoch it started on, no matter how the live
//!   graph is mutated (and republished) meanwhile.

use std::sync::Arc;

use proptest::prelude::*;

use onion_core::exec::{par_closure_pairs, par_descendants, par_reachable, Executor};
use onion_core::graph::closure::{descendants, transitive_pairs};
use onion_core::graph::rel;
use onion_core::graph::snapshot::SnapshotStore;
use onion_core::graph::traverse::{bfs, Direction, EdgeFilter};
use onion_core::prelude::*;
use onion_core::testkit::{closure_sources, generate_dag, generate_graph, GraphSpec};

fn small_graph(seed: u64) -> OntGraph {
    generate_graph(&GraphSpec::sized(seed, 120, 500))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Parallel per-source reachability equals a per-source sequential
    /// BFS on the live graph, as ordered sequences, for 1/2/4 threads.
    #[test]
    fn par_reachable_matches_graph_bfs(seed in 0u64..24, nsrc in 1usize..24) {
        let g = small_graph(seed);
        let snap = g.snapshot();
        let sources = closure_sources(&g, nsrc, seed ^ 0x5eed);
        let expected_sets: Vec<Vec<NodeId>> = sources
            .iter()
            .map(|&s| {
                let mut v = bfs(&g, s, Direction::Forward, &EdgeFilter::All);
                v.sort_unstable();
                v
            })
            .collect();
        for threads in [1usize, 2, 4] {
            let exec = Executor::new(threads);
            let got = par_reachable(&exec, &snap, &sources, Direction::Forward, &EdgeFilter::All);
            let got_sorted: Vec<Vec<NodeId>> = got
                .iter()
                .map(|v| { let mut v = v.clone(); v.sort_unstable(); v })
                .collect();
            prop_assert_eq!(&got_sorted, &expected_sets, "threads={}", threads);
        }
    }

    /// Parallel descendants equal `closure::descendants` per source on
    /// random DAGs.
    #[test]
    fn par_descendants_matches_closure(seed in 0u64..24, extra in 0usize..100) {
        let g = generate_dag(seed, 80, extra);
        let snap = g.snapshot();
        let sources: Vec<NodeId> = g.node_ids().collect();
        let exec = Executor::new(4);
        let got = par_descendants(&exec, &snap, &sources, rel::SUBCLASS_OF);
        for (&s, got_set) in sources.iter().zip(&got) {
            let mut expected: Vec<NodeId> =
                descendants(&g, s, rel::SUBCLASS_OF).into_iter().collect();
            expected.sort_unstable();
            prop_assert_eq!(got_set, &expected);
        }
    }

    /// Full-source parallel closure pairs equal
    /// `closure::transitive_pairs` as a set, and the parallel order is
    /// itself identical to the sequential executor's order.
    #[test]
    fn par_closure_pairs_matches_transitive_pairs(seed in 0u64..24) {
        let g = small_graph(seed);
        let snap = g.snapshot();
        let sources: Vec<NodeId> = snap.node_ids().collect();
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);
        let seq = par_closure_pairs(&Executor::sequential(), &snap, &sources, &filter);
        for threads in [2usize, 4] {
            let par = par_closure_pairs(&Executor::new(threads), &snap, &sources, &filter);
            prop_assert_eq!(&par, &seq, "threads={}", threads);
        }
        let mut as_set = seq.clone();
        as_set.sort_unstable();
        as_set.dedup();
        let mut expected: Vec<(NodeId, NodeId)> =
            transitive_pairs(&g, &filter).into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(as_set, expected);
    }

    /// A snapshot taken before an arbitrary mutation burst keeps
    /// answering exactly like the pre-mutation graph.
    #[test]
    fn snapshot_survives_mutation_burst(seed in 0u64..24, kills in 1usize..40) {
        let mut g = small_graph(seed);
        let store = SnapshotStore::new(&g);
        let frozen = store.load();
        let sources = closure_sources(&g, 8, seed);
        let before = par_reachable(
            &Executor::sequential(), &frozen, &sources, Direction::Forward, &EdgeFilter::All);
        // mutate: delete nodes, add nodes and edges, publish a new epoch
        let victims: Vec<NodeId> = g.node_ids().take(kills).collect();
        for v in victims {
            g.delete_node(v).unwrap();
        }
        for i in 0..10 {
            g.ensure_edge_by_labels(&format!("Fresh{i}"), rel::SUBCLASS_OF, "Fresh0").unwrap();
        }
        store.publish(&g);
        // the old Arc still answers from its epoch
        let after = par_reachable(
            &Executor::new(4), &frozen, &sources, Direction::Forward, &EdgeFilter::All);
        prop_assert_eq!(before, after);
        prop_assert_eq!(frozen.epoch(), 0);
        prop_assert_eq!(store.load().epoch(), 1);
    }
}

/// Snapshot isolation under real concurrency: worker threads traverse
/// one epoch while the main thread mutates the live graph and
/// publishes new epochs. Every traversal must agree with the
/// pre-computed answer for its epoch.
#[test]
fn concurrent_readers_see_only_their_epoch() {
    let mut g = small_graph(7);
    let store = SnapshotStore::new(&g);
    let snap0: Arc<_> = store.load();
    let sources = closure_sources(&g, 16, 99);
    let exec = Executor::new(4);
    let expected0 = par_reachable(
        &Executor::sequential(),
        &snap0,
        &sources,
        Direction::Forward,
        &EdgeFilter::All,
    );

    // run the epoch-0 traversal on the pool while this thread mutates
    // the live graph and publishes; the spawned traversal holds the
    // epoch-0 Arc the whole time
    let snap_ref = Arc::clone(&snap0);
    let sources_ref = &sources;
    let exec_ref = &exec;
    let mut results: Vec<Option<Vec<Vec<NodeId>>>> = vec![None; 4];
    exec.pool().scope(|s| {
        for slot in results.chunks_mut(1) {
            let snap = Arc::clone(&snap_ref);
            s.spawn(move |_| {
                slot[0] = Some(par_reachable(
                    exec_ref,
                    &snap,
                    sources_ref,
                    Direction::Forward,
                    &EdgeFilter::All,
                ));
            });
        }
        // writer: heavy churn + publishes while readers run
        for round in 0..5 {
            let victims: Vec<NodeId> = g.node_ids().skip(round * 3).take(3).collect();
            for v in victims {
                g.delete_node(v).unwrap();
            }
            g.ensure_edge_by_labels(&format!("W{round}"), rel::SUBCLASS_OF, "C0").unwrap();
            store.publish(&g);
        }
    });
    for r in results {
        assert_eq!(r.expect("spawned traversal ran"), expected0, "epoch-0 reader was torn");
    }
    assert_eq!(store.epoch(), 5);
    // new readers see the new epoch
    let now = store.load();
    assert_eq!(now.epoch(), 5);
    assert!(now.node_by_label("W4").is_some());
    assert!(snap0.node_by_label("W4").is_none());
}

/// `compact()` composes with the snapshot layer: publishing after a
/// compact serves the dense arena, while pre-compact snapshots keep the
/// old (sparse) id space — each answers consistently for itself.
#[test]
fn compact_then_publish_keeps_old_snapshots_coherent() {
    let mut g = small_graph(3);
    let store = SnapshotStore::new(&g);
    let sparse = store.load();
    let sparse_labels: Vec<String> =
        sparse.node_ids().filter_map(|n| sparse.node_label(n).map(str::to_string)).collect();
    let victims: Vec<NodeId> = g.node_ids().take(40).collect();
    for v in victims {
        g.delete_node(v).unwrap();
    }
    let cap_before = g.node_capacity();
    g.compact();
    assert!(g.node_capacity() < cap_before);
    let dense = store.publish(&g);
    assert_eq!(dense.node_capacity(), g.node_capacity());
    // the old snapshot still resolves its own (pre-compact) ids
    let again: Vec<String> =
        sparse.node_ids().filter_map(|n| sparse.node_label(n).map(str::to_string)).collect();
    assert_eq!(sparse_labels, again);
    // and label-level content of the dense snapshot matches the live graph
    let mut live: Vec<&str> = g.nodes().map(|n| n.label).collect();
    let mut frozen: Vec<&str> = dense.node_ids().filter_map(|n| dense.node_label(n)).collect();
    live.sort_unstable();
    frozen.sort_unstable();
    assert_eq!(live, frozen);
}

/// Batch query execution through the facade: parallel `run_batch`
/// equals per-query sequential execution on a generated two-source
/// system (end-to-end, through reformulation and conversion).
#[test]
fn run_batch_equals_sequential_on_generated_sources() {
    use onion_core::testkit::{overlap_pair, random_queries, OverlapSpec};

    let pair = overlap_pair(&OverlapSpec {
        seed: 5,
        concepts: 120,
        overlap: 0.3,
        rename_prob: 0.5,
        max_children: 5,
    });
    let mut rules = RuleSet::new();
    for (l, r) in &pair.truth {
        let (lo, ln) = l.split_once('.').unwrap();
        let (ro, rn) = r.split_once('.').unwrap();
        rules
            .push(ArticulationRule::term_implies(Term::qualified(lo, ln), Term::qualified(ro, rn)));
    }
    let art = ArticulationGenerator::new().generate(&rules, &[&pair.left, &pair.right]).unwrap();
    let queries = random_queries(&art, "Price", 24, 11);

    let mut system = onion_core::OnionSystem::new(pair.lexicon.clone());
    system.add_source(pair.left.clone());
    system.add_source(pair.right.clone());
    system.set_articulation(art);
    let mut lkb = KnowledgeBase::new("left");
    let mut rkb = KnowledgeBase::new("right");
    for (kb, onto) in [(&mut lkb, &pair.left), (&mut rkb, &pair.right)] {
        let classes: Vec<String> = onto.graph().nodes().map(|x| x.label.to_string()).collect();
        for i in 0..200 {
            let class = &classes[i % classes.len()];
            kb.add(
                Instance::new(&format!("{}_{i}", kb.name()), class)
                    .with("Price", Value::Num(((i * 37) % 50_000) as f64)),
            );
        }
    }
    system.add_knowledge_base(lkb);
    system.add_knowledge_base(rkb);

    let sequential: Vec<ResultSet> = queries.iter().map(|q| system.run_query(q).unwrap()).collect();
    for threads in [1usize, 2, 4] {
        let exec = Executor::new(threads);
        let batch = system.run_batch(&exec, &queries);
        let got: Vec<ResultSet> = batch.into_iter().map(|r| r.unwrap().as_ref().clone()).collect();
        assert_eq!(got, sequential, "threads={threads}");
    }
}
