//! Kill-and-restart properties of the durability layer (WAL +
//! shard-incremental checkpoints + recovery):
//!
//! * a clean restart reproduces the exact pre-crash graph, however the
//!   random op script interleaved edits, commits, and checkpoints;
//! * truncating the WAL tail at an **arbitrary byte offset** recovers
//!   to some flushed commit point — a state from the run's checksum
//!   ledger, never a torn half-batch or an invented state;
//! * tearing the newest checkpoint manifest falls back to the previous
//!   checkpoint and still replays forward to the full final state
//!   (segment retirement keeps the older manifest's WAL suffix);
//! * a checkpoint after `k` edits rewrites **exactly** the dirty shards
//!   (the shards whose version stamp moved — at most `2k`) and reuses
//!   the rest, mirroring the B11 incremental-publish accounting;
//! * a recovered source articulates byte-identically to the uncrashed
//!   run.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;

use proptest::prelude::*;

use onion_core::prelude::*;
use onion_core::testkit::fs::TempDir;
use onion_core::OnionSystem;

const VERBS: [&str; 3] = ["SubclassOf", "AttributeOf", "uses.part"];

fn node(i: u8) -> String {
    format!("n{}", i % 20)
}

/// Label-level fingerprint: node labels and edge triples, sorted.
fn checksum(g: &OntGraph) -> u64 {
    let mut h = DefaultHasher::new();
    g.node_labels_sorted().hash(&mut h);
    g.edge_triples_sorted().hash(&mut h);
    h.finish()
}

#[derive(Clone, Debug)]
enum Act {
    AddEdge(u8, u8, u8),
    DelEdge(u8, u8, u8),
    DelNode(u8),
    /// Flush the journal tail to the WAL as one committed batch.
    Commit,
    /// Commit, then take a shard-incremental checkpoint.
    Checkpoint,
}

fn edit() -> impl Strategy<Value = Act> {
    prop_oneof![
        (0u8..20, 0u8..3, 0u8..20).prop_map(|(a, l, b)| Act::AddEdge(a, l, b)),
        (0u8..20, 0u8..3, 0u8..20).prop_map(|(a, l, b)| Act::AddEdge(a, l, b)),
        (0u8..20, 0u8..3, 0u8..20).prop_map(|(a, l, b)| Act::DelEdge(a, l, b)),
        (0u8..20).prop_map(Act::DelNode),
    ]
}

fn act() -> impl Strategy<Value = Act> {
    prop_oneof![edit(), edit(), edit(), Just(Act::Commit), Just(Act::Checkpoint),]
}

struct Run {
    g: OntGraph,
    dur: Durability,
    /// Checksum after the initial (empty) state and after every flushed
    /// commit point — the states a crash may legally recover to.
    ledger: Vec<u64>,
    checkpoints: usize,
}

fn commit(g: &mut OntGraph, dur: &mut Durability, ledger: &mut Vec<u64>) {
    let ops = g.drain_journal();
    if ops.is_empty() {
        return;
    }
    dur.log_batch(&ops);
    dur.flush().unwrap();
    ledger.push(checksum(g));
}

fn run_script(dir: &Path, acts: &[Act]) -> Run {
    let mut dur = Durability::create(dir, "g", true).unwrap();
    let mut g = OntGraph::new("g");
    g.enable_journal();
    let mut ledger = vec![checksum(&g)];
    let mut checkpoints = 0;
    for act in acts {
        match *act {
            Act::AddEdge(a, l, b) => {
                g.ensure_edge_by_labels(&node(a), VERBS[l as usize], &node(b)).unwrap();
            }
            Act::DelEdge(a, l, b) => {
                if g.find_edge_by_labels(&node(a), VERBS[l as usize], &node(b)).is_some() {
                    g.delete_edge_by_labels(&node(a), VERBS[l as usize], &node(b)).unwrap();
                }
            }
            Act::DelNode(a) => {
                if g.node_by_label(&node(a)).is_some() {
                    g.delete_node_by_label(&node(a)).unwrap();
                }
            }
            Act::Commit => commit(&mut g, &mut dur, &mut ledger),
            Act::Checkpoint => {
                commit(&mut g, &mut dur, &mut ledger);
                let snap = ShardedSnapshot::of(&g);
                dur.checkpoint(&snap, dur.last_lsn()).unwrap();
                checkpoints += 1;
            }
        }
    }
    commit(&mut g, &mut dur, &mut ledger);
    Run { g, dur, ledger, checkpoints }
}

fn files_with_prefix(dir: &Path, prefix: &str) -> Vec<std::path::PathBuf> {
    let mut out: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with(prefix)))
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Clean kill-and-restart: reopening reproduces the final flushed
    /// state exactly, and a second reopen is stable.
    #[test]
    fn clean_restart_reproduces_state(acts in proptest::collection::vec(act(), 1..80)) {
        let td = TempDir::new("rec-clean");
        let run = run_script(td.path(), &acts);
        let want = checksum(&run.g);
        prop_assert!(run.g.journal().is_empty(), "final commit drains the journal");
        prop_assert_eq!(run.dur.unflushed_bytes(), 0);
        drop(run);

        let (g2, dur2, stats) = Durability::open(td.path()).unwrap();
        prop_assert_eq!(checksum(&g2), want, "first reopen diverges");
        drop(dur2);
        let (g3, _dur3, _) = Durability::open(td.path()).unwrap();
        prop_assert_eq!(checksum(&g3), want, "second reopen diverges");
        // Recovery replayed from the newest checkpoint if one was taken.
        let _ = stats;
    }

    /// Crash mid-write: truncate the newest WAL segment at an arbitrary
    /// byte offset. Recovery lands on a flushed commit point — a state
    /// from the checksum ledger — never on a torn half-batch.
    #[test]
    fn torn_tail_recovers_to_a_committed_prefix(
        acts in proptest::collection::vec(act(), 1..80),
        frac in 0f64..1.0,
    ) {
        let td = TempDir::new("rec-torn");
        let run = run_script(td.path(), &acts);
        let ledger = run.ledger.clone();
        let checkpoints = run.checkpoints;
        drop(run);

        let segs = files_with_prefix(td.path(), "wal-");
        prop_assert!(!segs.is_empty());
        let last = segs.last().unwrap();
        let len = std::fs::metadata(last).unwrap().len();
        let cut = (len as f64 * frac) as u64;
        std::fs::OpenOptions::new().write(true).open(last).unwrap().set_len(cut).unwrap();

        let (g2, _dur2, stats) = Durability::open(td.path()).unwrap();
        prop_assert!(
            ledger.contains(&checksum(&g2)),
            "recovered state is not on the commit ledger (cut {} of {} bytes)", cut, len
        );
        if checkpoints > 0 {
            // Manifests live outside the WAL: a torn WAL tail never
            // loses the checkpoint itself.
            prop_assert!(stats.manifest_seq.is_some());
        }
    }

    /// Crash mid-checkpoint: the newest manifest is torn. Recovery
    /// falls back to the previous checkpoint and still replays the WAL
    /// suffix to the **full** final state (retirement keeps the older
    /// manifest's horizon replayable).
    #[test]
    fn torn_newest_manifest_still_recovers_fully(
        a in proptest::collection::vec(edit(), 1..30),
        b in proptest::collection::vec(edit(), 1..30),
        c in proptest::collection::vec(edit(), 1..30),
    ) {
        let td = TempDir::new("rec-mf");
        let mut script = a;
        script.push(Act::Checkpoint);
        script.extend(b);
        script.push(Act::Checkpoint);
        script.extend(c);
        let run = run_script(td.path(), &script);
        let want = checksum(&run.g);
        drop(run);

        let manifests = files_with_prefix(td.path(), "ckpt-");
        prop_assert!(manifests.len() >= 2, "two checkpoints retain two manifests");
        let newest = manifests.last().unwrap();
        let len = std::fs::metadata(newest).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(newest).unwrap().set_len(len / 2).unwrap();

        let (g2, _dur2, stats) = Durability::open(td.path()).unwrap();
        prop_assert_eq!(checksum(&g2), want, "fallback recovery lost flushed state");
        prop_assert!(stats.manifest_seq.is_some(), "older manifest should be used");
    }

    /// Incremental checkpoint accounting, mirroring B11: after `k` edge
    /// edits, the next checkpoint rewrites exactly the shards whose
    /// version stamp moved (≤ 2k) and reuses every other shard's file.
    #[test]
    fn checkpoint_rewrites_exactly_the_dirty_shards(
        seed in 0u64..1000,
        edits in proptest::collection::vec((0u8..20, 0u8..20), 1..5),
    ) {
        const SHARDS: usize = 8;
        let td = TempDir::new("rec-dirty");
        let mut dur = Durability::create(td.path(), "g", true).unwrap();
        let mut g = OntGraph::new("g");
        g.set_shard_count(SHARDS);
        g.enable_journal();
        // Dense-ish base graph so every shard owns nodes.
        for i in 0u8..20 {
            g.ensure_edge_by_labels(&node(i), VERBS[(seed % 3) as usize], &node(i.wrapping_add(1)))
                .unwrap();
        }
        let mut ledger = Vec::new();
        commit(&mut g, &mut dur, &mut ledger);
        let full = dur.checkpoint(&ShardedSnapshot::of(&g), dur.last_lsn()).unwrap();
        prop_assert_eq!((full.shards_written, full.shards_reused), (SHARDS, 0));

        let before: Vec<u64> = (0..SHARDS).map(|s| g.shard_version(s)).collect();
        for &(a, b) in &edits {
            g.ensure_edge_by_labels(&node(a), "probe.rel", &node(b)).unwrap();
        }
        let after: Vec<u64> = (0..SHARDS).map(|s| g.shard_version(s)).collect();
        let dirty = before.iter().zip(&after).filter(|(x, y)| x != y).count();
        prop_assert!(dirty >= 1 && dirty <= 2 * edits.len());

        commit(&mut g, &mut dur, &mut ledger);
        let inc = dur.checkpoint(&ShardedSnapshot::of(&g), dur.last_lsn()).unwrap();
        prop_assert_eq!(
            (inc.shards_written, inc.shards_reused),
            (dirty, SHARDS - dirty),
            "checkpoint accounting disagrees with the shard version stamps"
        );

        let want = checksum(&g);
        drop(dur);
        let (g2, _dur2, _) = Durability::open(td.path()).unwrap();
        prop_assert_eq!(checksum(&g2), want);
    }
}

/// Deleting the newest manifest outright (instead of tearing it) also
/// falls back cleanly.
#[test]
fn deleted_newest_manifest_still_recovers_fully() {
    let td = TempDir::new("rec-mf-del");
    let script = vec![
        Act::AddEdge(1, 0, 2),
        Act::AddEdge(2, 0, 3),
        Act::Checkpoint,
        Act::AddEdge(3, 1, 4),
        Act::Checkpoint,
        Act::AddEdge(4, 2, 5),
        Act::DelNode(1),
    ];
    let run = run_script(td.path(), &script);
    let want = checksum(&run.g);
    drop(run);

    let manifests = files_with_prefix(td.path(), "ckpt-");
    assert_eq!(manifests.len(), 2);
    std::fs::remove_file(manifests.last().unwrap()).unwrap();

    let (g2, _dur, stats) = Durability::open(td.path()).unwrap();
    assert_eq!(checksum(&g2), want);
    assert!(stats.manifest_seq.is_some());
}

/// End to end through the facade: a recovered source articulates
/// byte-identically to the uncrashed run (same report, same bridges).
#[test]
fn recovered_source_articulates_identically() {
    let td = TempDir::new("rec-artic");

    let mut s1 = OnionSystem::with_transport_lexicon();
    s1.add_source(examples::factory());
    s1.add_source(examples::carrier());
    s1.open_durable("carrier", td.path()).unwrap();
    let g = s1.source_mut("carrier").unwrap().graph_mut();
    g.ensure_edge_by_labels("Minivan", "SubclassOf", "Cars").unwrap();
    s1.checkpoint_source("carrier").unwrap();
    let g = s1.source_mut("carrier").unwrap().graph_mut();
    g.ensure_edge_by_labels("Cargobike", "SubclassOf", "Bicycles").unwrap();
    s1.publish_source("carrier").unwrap(); // flushed, not checkpointed
    s1.add_rules(examples::fig2_rules_text()).unwrap();
    let r1 = s1.articulate("carrier", "factory", &mut AcceptAll).unwrap();
    let art1 = render(s1.articulation().unwrap());
    drop(s1);

    let mut s2 = OnionSystem::with_transport_lexicon();
    s2.add_source(examples::factory());
    let open = s2.open_durable("carrier", td.path()).unwrap();
    assert!(open.recovered);
    s2.add_rules(examples::fig2_rules_text()).unwrap();
    let r2 = s2.articulate("carrier", "factory", &mut AcceptAll).unwrap();
    assert_eq!(r1.accepted, r2.accepted);
    assert_eq!(art1, render(s2.articulation().unwrap()));
}

/// Renders an articulation's **full** Debug form for byte-exact
/// comparison — ontology (interner layout, adjacency, shard versions),
/// bridges, rules, and the bridge-support map, which is ordered
/// (`BTreeMap`/`BTreeSet`) precisely so this rendering is
/// deterministic. The only masked artifact is `graph_id`: recovery
/// deliberately assigns the restored graph a fresh identity, so its
/// first checkpoint is full by construction.
fn render(a: &Articulation) -> String {
    let mut out = String::new();
    let s = format!("{a:?}");
    let mut rest = s.as_str();
    while let Some(i) = rest.find("graph_id: ") {
        let tail = &rest[i + "graph_id: ".len()..];
        let digits = tail.find(|c: char| !c.is_ascii_digit()).unwrap_or(tail.len());
        out.push_str(&rest[..i]);
        out.push_str("graph_id: _");
        rest = &tail[digits..];
    }
    out.push_str(rest);
    out
}
