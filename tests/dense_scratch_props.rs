//! Properties of the per-shard dense scratch remap
//! ([`ShardedSnapshot::dense_of`] and friends) that the parallel
//! traversal kernels size their visited/frontier buffers with:
//!
//! * on graphs with tombstones (deleted nodes), `dense_of` is a
//!   **bijection** from live nodes onto `0..scratch_len()` at every
//!   shard count in {1, 2, 7, 64}, and `dense_of_checked` rejects dead
//!   ids;
//! * the dense-indexed traversal kernels (`par_reachable`,
//!   `par_descendants`, `par_frontier_bfs`, `par_closure_pairs`)
//!   return results **identical** to the 1-shard sequential baseline
//!   on those same holey graphs — remapping the scratch space must
//!   never change an answer;
//! * the scratch space actually shrinks: after deletions,
//!   `scratch_len()` tracks live nodes, not `node_capacity()`.

use proptest::prelude::*;

use onion_core::exec::{
    par_closure_pairs, par_descendants, par_frontier_bfs, par_reachable, Executor,
};
use onion_core::graph::rel;
use onion_core::graph::traverse::{Direction, EdgeFilter};
use onion_core::prelude::*;
use onion_core::testkit::{closure_sources, generate_graph, GraphSpec};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 64];

/// A generated graph with `deletions` tombstoned nodes; returns the
/// deleted ids so tests can assert they have no dense slot.
fn holey_graph(seed: u64, deletions: usize) -> (OntGraph, Vec<NodeId>) {
    let mut g = generate_graph(&GraphSpec::sized(seed, 120, 500));
    let victims: Vec<NodeId> = g.node_ids().step_by(4).take(deletions).collect();
    for &v in &victims {
        g.delete_node(v).unwrap();
    }
    (g, victims)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// `dense_of` is a bijection live nodes → `0..scratch_len()` at
    /// every shard count, even with tombstones scattered through the
    /// id space; dead ids have no dense slot.
    #[test]
    fn dense_remap_is_bijective_with_tombstones(seed in 0u64..16, deletions in 1usize..30) {
        let (mut g, victims) = holey_graph(seed, deletions);
        for &count in &SHARD_COUNTS {
            g.set_shard_count(count);
            let snap = g.snapshot();
            prop_assert_eq!(snap.scratch_len(), snap.node_count(), "shards={}", count);
            let mut seen = vec![false; snap.scratch_len()];
            for n in snap.node_ids() {
                let d = snap.dense_of(n);
                prop_assert_eq!(Some(d), snap.dense_of_checked(n));
                prop_assert!(!seen[d], "dense slot {} assigned twice (shards={})", d, count);
                seen[d] = true;
            }
            prop_assert!(seen.iter().all(|&b| b), "every dense slot covered (shards={})", count);
            for &v in &victims {
                prop_assert_eq!(snap.dense_of_checked(v), None, "dead id keeps no slot");
            }
        }
    }

    /// The dense-indexed kernels answer identically to the 1-shard
    /// sequential baseline on holey graphs, at every shard and thread
    /// count — the remap is invisible to results.
    #[test]
    fn traversals_identical_on_holey_graphs(
        seed in 0u64..16,
        deletions in 1usize..30,
        nsrc in 1usize..16,
    ) {
        let (mut g, _) = holey_graph(seed, deletions);
        let sources = closure_sources(&g, nsrc, seed ^ 0xd15e);
        let root = g.node_ids().next().unwrap();
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);

        g.set_shard_count(1);
        let mono = g.snapshot();
        let seq = Executor::sequential();
        let want_reach = par_reachable(&seq, &mono, &sources, Direction::Forward, &filter);
        let want_desc = par_descendants(&seq, &mono, &sources, rel::SUBCLASS_OF);
        let want_pairs = par_closure_pairs(&seq, &mono, &sources, &filter);
        let want_bfs = {
            let rf = mono.resolve_filter(&EdgeFilter::All);
            mono.bfs(root, Direction::Forward, &rf)
        };

        for &count in &SHARD_COUNTS {
            g.set_shard_count(count);
            let snap = g.snapshot();
            for threads in [1usize, 4] {
                let exec = Executor::new(threads);
                let reach = par_reachable(&exec, &snap, &sources, Direction::Forward, &filter);
                prop_assert_eq!(&reach, &want_reach, "reach shards={} threads={}", count, threads);
                let desc = par_descendants(&exec, &snap, &sources, rel::SUBCLASS_OF);
                prop_assert_eq!(&desc, &want_desc, "desc shards={} threads={}", count, threads);
                let pairs = par_closure_pairs(&exec, &snap, &sources, &filter);
                prop_assert_eq!(&pairs, &want_pairs, "pairs shards={} threads={}", count, threads);
                let bfs = par_frontier_bfs(&exec, &snap, root, Direction::Forward, &EdgeFilter::All);
                prop_assert_eq!(&bfs, &want_bfs, "bfs shards={} threads={}", count, threads);
            }
        }
    }
}

/// The point of the remap: scratch buffers are sized to live nodes,
/// strictly below the (tombstone-padded) id capacity.
#[test]
fn scratch_space_tracks_live_nodes_not_capacity() {
    let (mut g, victims) = holey_graph(3, 20);
    assert!(!victims.is_empty());
    for &count in &SHARD_COUNTS {
        g.set_shard_count(count);
        let snap = g.snapshot();
        assert_eq!(snap.scratch_len(), snap.node_count(), "shards={count}");
        assert!(
            snap.scratch_len() < g.node_capacity(),
            "shards={count}: scratch {} must undercut capacity {}",
            snap.scratch_len(),
            g.node_capacity()
        );
    }
}
