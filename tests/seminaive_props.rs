//! Differential fuzzing of shard-parallel semi-naive inference.
//!
//! The determinism contract under test (see `onion_exec::inference`):
//! seeding partitions subclass edges by snapshot shard and merges by a
//! canonical id-remap, saturation splits each round's delta into work
//! units merged in unit order — so the seeded/derived fact bases
//! (atom ids included) and the full [`InferenceStats`] must be
//! **byte-identical across shard counts {1, 2, 7, 64} and thread
//! counts {1, 2, 4}**, and must agree with the sequential engines on
//! fact sets, conflict verdicts, totals, and per-round counters.
//!
//! The shard-local engine (`onion_exec::ShardLocalEngine`) joins the
//! matrix with its own contract: per-worker fact partitions and atom
//! tables, per-pair delta mailboxes, one canonical fold at fixpoint.
//! Its full `InferenceStats` (worker vectors included) and final fact
//! base are byte-identical across THREAD counts; across SHARD counts
//! the scalar counters, round ledger, and fact base stay byte-identical
//! while the per-worker vectors change shape by construction; its round
//! ledger and `atoms_examined` equal the parallel engine's (same
//! delta-first join), and the sum of its per-worker merge ledger equals
//! the parallel engine's single-barrier push count — the same merge
//! stream, distributed by ownership.
//!
//! Also here: the deep-hierarchy regression test pinning semi-naive's
//! O(log depth) round count and per-round deltas through the
//! [`RoundStats`] ledger (never wall-clock), and the generator-level
//! determinism of `GeneratorStats` through the parallel expand path.

use proptest::prelude::*;

use onion_core::articulate::{ArticulationGenerator, GeneratorConfig};
use onion_core::exec::{par_seed_subclass_facts, ParallelEngine, ShardLocalEngine};
use onion_core::ontology::examples::{carrier, factory};
use onion_core::prelude::*;
use onion_core::rules::conflict::Disjointness;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::infer::{FactBase, InferenceEngine, RoundStats, Strategy as InferStrategy};
use onion_core::rules::properties::RelationRegistry;
use onion_core::rules::{parse_rules, AtomTable, InferenceStats};
use onion_core::testkit::deep_chain_ontology;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 64];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn edge_list() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..24, 0u8..24), 1..40)
}

/// A subclass graph from the edge list (self-loops dropped: subclass
/// cycles would be rejected by ontology validation and are not the
/// subject here).
fn build_graph(edges: &[(u8, u8)], shards: usize) -> OntGraph {
    let mut g = OntGraph::new("g");
    for (a, b) in edges {
        if a != b {
            let _ = g.ensure_edge_by_labels(&format!("n{a}"), rel::SUBCLASS_OF, &format!("n{b}"));
        }
    }
    g.set_shard_count(shards);
    g
}

/// Sequential seeding over a raw graph — the exact per-edge cursor walk
/// the generator's sequential path uses.
fn seq_seed(g: &OntGraph, atoms: &mut AtomTable, fb: &mut FactBase) -> usize {
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return 0 };
    let pred = atoms.intern("subclassof");
    let mut cursor = atoms.graph_atoms(g);
    let mut added = 0;
    for (_, src, lid, dst) in g.edge_entries() {
        if lid != sub {
            continue;
        }
        let (Some(s), Some(d)) = (cursor.node_atom(src), cursor.node_atom(dst)) else { continue };
        if fb.add_fact(pred, vec![s, d]) {
            added += 1;
        }
    }
    added
}

/// Every `pred` fact resolved to strings, sorted — the
/// interning-order-independent view.
fn resolved(atoms: &AtomTable, fb: &FactBase, pred: &str) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = fb
        .query2(atoms, pred, None, None)
        .into_iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    v.sort();
    v
}

/// Conflict verdicts: the sorted list of derived `si` pairs that
/// violate a disjointness declaration. Differential across engines —
/// a missing or extra derivation flips a verdict.
fn disjointness_verdicts(
    atoms: &AtomTable,
    fb: &FactBase,
    disjoint: &Disjointness,
) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> =
        resolved(atoms, fb, "si").into_iter().filter(|(a, b)| disjoint.contains(a, b)).collect();
    v.sort();
    v
}

fn round_profile(stats: &InferenceStats) -> Vec<(usize, usize)> {
    stats.rounds.iter().map(|r| (r.delta, r.derived)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// THE matrix property: seed + saturate on every (shard count,
    /// thread count) combination. Within the parallel family
    /// everything is byte-identical — seeded facts with their atom
    /// ids, the full `InferenceStats`, the final fact base order.
    /// Against the sequential engine: identical resolved fact sets,
    /// conflict verdicts, totals, and per-round counters.
    #[test]
    fn shard_thread_matrix_is_deterministic(edges in edge_list()) {
        let program = HornProgram::standard(&RelationRegistry::onion_default());
        let mut disjoint = Disjointness::new();
        disjoint.declare("g.n1", "g.n2");
        disjoint.declare("g.n3", "g.n17");

        // Sequential baseline.
        let g0 = build_graph(&edges, 1);
        let mut seq_atoms = AtomTable::new();
        let mut seq_fb = FactBase::new();
        let seq_seeded = seq_seed(&g0, &mut seq_atoms, &mut seq_fb);
        let seq_stats = InferenceEngine::new(program.clone())
            .run(&mut seq_atoms, &mut seq_fb)
            .unwrap();
        let seq_facts = (resolved(&seq_atoms, &seq_fb, "subclassof"),
                         resolved(&seq_atoms, &seq_fb, "si"));
        let seq_verdicts = disjointness_verdicts(&seq_atoms, &seq_fb, &disjoint);

        // byte-identity baseline within the parallel family
        let mut family: Option<(usize, Vec<onion_core::rules::Fact>, InferenceStats)> = None;
        // shard-local cross-SHARD family: fact base + scalar counters +
        // round ledger (worker vectors excluded — their shape is the
        // shard count)
        let mut sl_family: Option<(Vec<onion_core::rules::Fact>, usize, usize, usize)> = None;
        for shards in SHARD_COUNTS {
            let g = build_graph(&edges, shards);
            // shard-local cross-THREAD family at this shard count:
            // everything byte-identical, worker vectors included
            let mut sl_threads: Option<(Vec<onion_core::rules::Fact>, InferenceStats)> = None;
            for threads in THREAD_COUNTS {
                let exec = Executor::new(threads);
                let mut atoms = AtomTable::new();
                let mut fb = FactBase::new();
                let seed = par_seed_subclass_facts(&exec, &g, &mut atoms, &mut fb);
                prop_assert_eq!(seed.seeded, seq_seeded,
                    "seed count (shards={}, threads={})", shards, threads);
                let stats = ParallelEngine::new(program.clone())
                    .run(&exec, &mut atoms, &mut fb)
                    .unwrap();

                // vs sequential: sets, verdicts, totals, rounds
                prop_assert_eq!(stats.iterations, seq_stats.iterations);
                prop_assert_eq!(stats.derived, seq_stats.derived);
                prop_assert_eq!(round_profile(&stats), round_profile(&seq_stats),
                    "per-round counters (shards={}, threads={})", shards, threads);
                prop_assert_eq!(
                    (resolved(&atoms, &fb, "subclassof"), resolved(&atoms, &fb, "si")),
                    seq_facts.clone(),
                    "fact sets (shards={}, threads={})", shards, threads
                );
                prop_assert_eq!(
                    disjointness_verdicts(&atoms, &fb, &disjoint),
                    seq_verdicts.clone(),
                    "conflict verdicts (shards={}, threads={})", shards, threads
                );

                // within the family: byte identity, atom ids included
                let snapshot = (seed.seeded, fb.facts_in_pred_order(), stats);
                match &family {
                    None => family = Some(snapshot),
                    Some(first) => prop_assert_eq!(
                        &snapshot, first,
                        "byte-identical at shards={}, threads={}", shards, threads
                    ),
                }
                let par_stats = &family.as_ref().unwrap().2;

                // ---- the shard-local engine on the same input ----
                let mut sl_atoms = AtomTable::new();
                let mut sl_fb = FactBase::new();
                par_seed_subclass_facts(&exec, &g, &mut sl_atoms, &mut sl_fb);
                let sl_stats = ShardLocalEngine::new(program.clone())
                    .with_shards(shards)
                    .run(&exec, &mut sl_atoms, &mut sl_fb)
                    .unwrap();

                // vs sequential: sets, verdicts, totals, rounds
                prop_assert_eq!(sl_stats.iterations, seq_stats.iterations);
                prop_assert_eq!(sl_stats.derived, seq_stats.derived);
                prop_assert_eq!(round_profile(&sl_stats), round_profile(&seq_stats),
                    "shard-local rounds (shards={}, threads={})", shards, threads);
                prop_assert_eq!(
                    (resolved(&sl_atoms, &sl_fb, "subclassof"), resolved(&sl_atoms, &sl_fb, "si")),
                    seq_facts.clone(),
                    "shard-local fact sets (shards={}, threads={})", shards, threads
                );
                prop_assert_eq!(
                    disjointness_verdicts(&sl_atoms, &sl_fb, &disjoint),
                    seq_verdicts.clone(),
                    "shard-local verdicts (shards={}, threads={})", shards, threads
                );
                // engine path: saturation derives no new symbols, so
                // the fold interns nothing and the canonical table is
                // byte-identical to the parallel engine's
                prop_assert_eq!(sl_atoms.len(), atoms.len(),
                    "canonical table untouched by the fold (shards={})", shards);

                // vs the parallel engine: same delta-first join ⇒ the
                // examined column matches too, and the merge stream it
                // serialised is exactly what the owners split up
                prop_assert_eq!(sl_stats.atoms_examined, par_stats.atoms_examined);
                prop_assert_eq!(&sl_stats.rounds, &par_stats.rounds);
                prop_assert_eq!(
                    sl_stats.worker_merge_facts.iter().sum::<usize>(),
                    par_stats.worker_merge_facts.iter().sum::<usize>(),
                    "merge stream total (shards={}, threads={})", shards, threads
                );
                prop_assert_eq!(sl_stats.worker_merge_facts.len(), shards);

                // byte identity across THREAD counts (worker vectors
                // included) …
                let sl_snapshot = (sl_fb.facts_in_pred_order(), sl_stats);
                match &sl_threads {
                    None => sl_threads = Some(sl_snapshot),
                    Some(first) => prop_assert_eq!(
                        &sl_snapshot, first,
                        "shard-local byte-identical at shards={}, threads={}", shards, threads
                    ),
                }
            }
            // … and across SHARD counts everything except the worker
            // vectors' shape — the final fb insertion order included
            // (novel facts land sorted by canonical ids)
            let (fb_order, st) = sl_threads.unwrap();
            let scalar = (fb_order, st.iterations, st.derived, st.atoms_examined);
            match &sl_family {
                None => sl_family = Some(scalar),
                Some(first) => prop_assert_eq!(
                    &scalar, first, "shard-local scalar identity at shards={}", shards
                ),
            }
        }
    }

    /// The generator's parallel expand path reproduces the sequential
    /// path's articulation exactly — same bridges, same seed counts,
    /// same round profile — and its `GeneratorStats` are identical at
    /// every thread count (satellite: counters survive the parallel
    /// merge deterministically).
    #[test]
    fn generator_parallel_expand_is_deterministic(threads_ix in 0usize..3) {
        let threads = THREAD_COUNTS[threads_ix];
        let c = carrier();
        let f = factory();
        let rules = parse_rules("carrier.Cars => transport.Vehicle\n").unwrap();

        let seq_gen = ArticulationGenerator::with_config(GeneratorConfig {
            expand_with_inference: true,
            ..Default::default()
        });
        let (seq_art, seq_stats) = seq_gen.generate_with_stats(&rules, &[&c, &f]).unwrap();

        let par_gen = ArticulationGenerator::with_config(GeneratorConfig {
            expand_with_inference: true,
            executor: Some(std::sync::Arc::new(Executor::new(threads))),
            ..Default::default()
        });
        let (par_art, par_stats) = par_gen.generate_with_stats(&rules, &[&c, &f]).unwrap();

        prop_assert_eq!(par_art.bridges, seq_art.bridges, "threads={}", threads);
        prop_assert_eq!(par_stats.seeded_facts, seq_stats.seeded_facts);
        prop_assert_eq!(par_stats.skipped_dead_nodes, seq_stats.skipped_dead_nodes);
        prop_assert_eq!(par_stats.derived_bridges, seq_stats.derived_bridges);
        prop_assert_eq!(par_stats.inference.derived, seq_stats.inference.derived);
        prop_assert_eq!(par_stats.inference.iterations, seq_stats.inference.iterations);
        prop_assert_eq!(
            round_profile(&par_stats.inference),
            round_profile(&seq_stats.inference)
        );

        // and the parallel path agrees with itself at another thread count
        let par_gen2 = ArticulationGenerator::with_config(GeneratorConfig {
            expand_with_inference: true,
            executor: Some(std::sync::Arc::new(Executor::new(THREAD_COUNTS[(threads_ix + 1) % 3]))),
            ..Default::default()
        });
        let (_, par_stats2) = par_gen2.generate_with_stats(&rules, &[&c, &f]).unwrap();
        prop_assert_eq!(par_stats, par_stats2, "GeneratorStats byte-identical across threads");
    }
}

/// Deep-hierarchy regression (satellite): semi-naive reaches the
/// fixpoint of a depth-`d` chain in O(log d) rounds — transitivity
/// doubles the reachable path length every round — with the shrinking
/// per-round deltas recorded in the ledger, while the naive loop
/// re-derives from the full fact set each round. Pinned entirely on
/// the `RoundStats` counters, never wall-clock.
#[test]
fn deep_chain_saturation_rounds_are_logarithmic() {
    let (chains, depth) = (4usize, 64usize);
    let onto = deep_chain_ontology("deep", chains, depth);
    let program =
        HornProgram::parse("subclassof(X, Z) :- subclassof(X, Y), subclassof(Y, Z).").unwrap();

    let run = |strategy: InferStrategy| -> (AtomTable, FactBase, InferenceStats) {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let seeded = onion_core::testkit::seed_subclass_facts(&onto, &mut atoms, &mut fb);
        assert_eq!(seeded, chains * depth);
        let stats = InferenceEngine::new(program.clone())
            .with_strategy(strategy)
            .run(&mut atoms, &mut fb)
            .unwrap();
        (atoms, fb, stats)
    };

    let (_, semi_fb, semi) = run(InferStrategy::SemiNaive);
    let (_, naive_fb, naive) = run(InferStrategy::Naive);
    assert_eq!(semi_fb.len(), naive_fb.len(), "identical fixpoint");
    assert_eq!(semi.derived, naive.derived);

    // O(log depth) rounds, not O(depth): path length doubles per round,
    // so ceil(log2(depth)) productive rounds + the fixpoint round.
    let log_bound = (usize::BITS - (depth - 1).leading_zeros()) as usize + 1;
    assert!(
        semi.iterations <= log_bound,
        "semi-naive took {} rounds for depth {depth} (log bound {log_bound})",
        semi.iterations
    );
    assert!(semi.iterations >= 4, "deep chain is genuinely multi-round");

    // The ledger: round 0 joins against every seeded fact, the deltas
    // then track exactly what the previous round derived, and the
    // derived column sums to the total.
    assert_eq!(semi.rounds.len(), semi.iterations);
    assert_eq!(semi.rounds[0].delta, chains * depth);
    for r in 1..semi.rounds.len() {
        assert_eq!(semi.rounds[r].delta, semi.rounds[r - 1].derived);
    }
    let ledger_total: usize = semi.rounds.iter().map(|r| r.derived).sum();
    assert_eq!(ledger_total, semi.derived);
    assert_eq!(semi.rounds.last().unwrap().derived, 0);

    // Naive's per-round derivations match (same fixpoint trajectory) …
    let semi_derived: Vec<usize> = semi.rounds.iter().map(|r| r.derived).collect();
    let naive_derived: Vec<usize> = naive.rounds.iter().map(|r| r.derived).collect();
    assert_eq!(semi_derived, naive_derived);
    // … but the delta columns separate the complexity classes: under
    // semi-naive every fact enters the delta exactly once, so the
    // column sums to the final fact count — O(total facts) join input
    // across the whole run. Naive feeds the entire growing base back
    // in every round — O(rounds × total facts) join input — and its
    // fixpoint-proving final round re-examines everything while
    // semi-naive's only chases the last (shrinking) delta.
    let semi_delta_sum: usize = semi.rounds.iter().map(|r| r.delta).sum();
    assert_eq!(semi_delta_sum, semi_fb.len(), "each fact is delta input exactly once");
    let naive_delta_sum: usize = naive.rounds.iter().map(|r| r.delta).sum();
    assert!(
        naive_delta_sum >= 2 * naive_fb.len(),
        "naive rederivation: {naive_delta_sum} delta input over {} facts",
        naive_fb.len()
    );
    let last: &RoundStats = naive.rounds.last().unwrap();
    assert_eq!(last.delta, naive_fb.len(), "naive joins the full base every round");
    assert!(
        last.examined >= 2 * semi.rounds.last().unwrap().examined,
        "final naive round re-examines the closure ({} vs {})",
        last.examined,
        semi.rounds.last().unwrap().examined
    );
    assert!(
        naive.atoms_examined * 2 >= semi.atoms_examined * 3,
        "naive total effort ({}) should clearly exceed semi-naive ({})",
        naive.atoms_examined,
        semi.atoms_examined
    );

    // The parallel engine walks the same trajectory, byte-identically
    // at every thread count.
    let mut first: Option<InferenceStats> = None;
    for threads in THREAD_COUNTS {
        let exec = Executor::new(threads);
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        onion_core::testkit::seed_subclass_facts(&onto, &mut atoms, &mut fb);
        let stats = ParallelEngine::new(program.clone()).run(&exec, &mut atoms, &mut fb).unwrap();
        assert_eq!(fb.len(), semi_fb.len());
        assert_eq!(stats.iterations, semi.iterations);
        assert_eq!(stats.derived, semi.derived);
        assert_eq!(
            stats.rounds.iter().map(|r| (r.delta, r.derived)).collect::<Vec<_>>(),
            semi.rounds.iter().map(|r| (r.delta, r.derived)).collect::<Vec<_>>()
        );
        match &first {
            None => first = Some(stats),
            Some(f) => assert_eq!(&stats, f, "threads={threads}"),
        }
    }

    // So does the shard-local engine — O(log depth) rounds survive the
    // partitioned delta exchange at every shard/thread combination,
    // and with more than one shard the merge ledger shows the stream
    // split across owners instead of serialised at one barrier.
    for shards in [1usize, 4, 64] {
        let mut sl_first: Option<InferenceStats> = None;
        for threads in THREAD_COUNTS {
            let exec = Executor::new(threads);
            let mut atoms = AtomTable::new();
            let mut fb = FactBase::new();
            onion_core::testkit::seed_subclass_facts(&onto, &mut atoms, &mut fb);
            let stats = ShardLocalEngine::new(program.clone())
                .with_shards(shards)
                .run(&exec, &mut atoms, &mut fb)
                .unwrap();
            assert_eq!(fb.len(), semi_fb.len(), "shards={shards} threads={threads}");
            assert_eq!(stats.iterations, semi.iterations);
            assert_eq!(stats.derived, semi.derived);
            assert_eq!(
                stats.rounds.iter().map(|r| (r.delta, r.derived)).collect::<Vec<_>>(),
                semi.rounds.iter().map(|r| (r.delta, r.derived)).collect::<Vec<_>>()
            );
            assert_eq!(stats.worker_merge_facts.len(), shards);
            if shards > 1 {
                let total: usize = stats.worker_merge_facts.iter().sum();
                let max = stats.worker_merge_facts.iter().copied().max().unwrap();
                assert!(
                    max < total,
                    "merge work distributed: max {max} of {total} (shards={shards})"
                );
            }
            match &sl_first {
                None => sl_first = Some(stats),
                Some(f) => assert_eq!(&stats, f, "shards={shards} threads={threads}"),
            }
        }
    }
}
