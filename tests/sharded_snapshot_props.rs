//! Properties of the sharded snapshot layer:
//!
//! * a [`ShardedSnapshot`] at shard counts {1, 2, 7, 64} yields results
//!   **identical** to the monolithic (1-shard) build — closure,
//!   traversal (source-partitioned and frontier-split), and query
//!   batches — at every tested thread count;
//! * incremental publish rebuilds exactly the dirty shards: after `k`
//!   edge edits the store rebuilds no more shards than the edits
//!   dirtied (≤ 2k, typically far fewer), shares every clean shard's
//!   allocation with the previous epoch, and a single same-shard edit
//!   rebuilds exactly one;
//! * [`SnapshotStore::load`] is safe under concurrent publish churn
//!   (the read path is atomics-only — no mutex to contend on).

use proptest::prelude::*;

use onion_core::exec::{par_closure_pairs, par_frontier_bfs, par_reachable, Executor};
use onion_core::graph::rel;
use onion_core::graph::snapshot::SnapshotStore;
use onion_core::graph::traverse::{Direction, EdgeFilter};
use onion_core::prelude::*;
use onion_core::testkit::{closure_sources, generate_graph, GraphSpec};
use onion_core::OnionSystem;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 64];

fn small_graph(seed: u64) -> OntGraph {
    generate_graph(&GraphSpec::sized(seed, 120, 500))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Closure pairs and per-source reachability are byte-identical
    /// across shard counts {1, 2, 7, 64} and thread counts {1, 4}.
    #[test]
    fn shard_count_never_changes_results(seed in 0u64..20, nsrc in 1usize..24) {
        let mut g = small_graph(seed);
        let sources = closure_sources(&g, nsrc, seed ^ 0x5eed);
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);
        g.set_shard_count(1);
        let mono = g.snapshot();
        let seq = Executor::sequential();
        let want_reach = par_reachable(&seq, &mono, &sources, Direction::Forward, &filter);
        let want_pairs = par_closure_pairs(&seq, &mono, &sources, &filter);
        for &count in &SHARD_COUNTS[1..] {
            g.set_shard_count(count);
            let snap = g.snapshot();
            prop_assert_eq!(snap.shard_count(), count);
            prop_assert_eq!(snap.node_count(), mono.node_count());
            prop_assert_eq!(snap.edge_count(), mono.edge_count());
            for threads in [1usize, 4] {
                let exec = Executor::new(threads);
                let reach = par_reachable(&exec, &snap, &sources, Direction::Forward, &filter);
                prop_assert_eq!(&reach, &want_reach, "shards={} threads={}", count, threads);
                let pairs = par_closure_pairs(&exec, &snap, &sources, &filter);
                prop_assert_eq!(&pairs, &want_pairs, "shards={} threads={}", count, threads);
            }
        }
    }

    /// The frontier-splitting single-root BFS reproduces the
    /// sequential snapshot BFS order exactly, at every shard and
    /// thread count.
    #[test]
    fn frontier_bfs_is_byte_identical(seed in 0u64..20) {
        let mut g = small_graph(seed);
        let root = g.node_ids().next().unwrap();
        for &count in &SHARD_COUNTS {
            g.set_shard_count(count);
            let snap = g.snapshot();
            let rf = snap.resolve_filter(&EdgeFilter::All);
            let want = snap.bfs(root, Direction::Forward, &rf);
            for threads in [1usize, 2, 4] {
                let exec = Executor::new(threads);
                let got = par_frontier_bfs(&exec, &snap, root, Direction::Forward, &EdgeFilter::All);
                prop_assert_eq!(&got, &want, "shards={} threads={}", count, threads);
            }
        }
    }

    /// After k edge edits, publish rebuilds no more shards than the
    /// edits dirtied (each edge edit touches at most its two endpoint
    /// shards), reuses every clean shard's allocation, and the new
    /// epoch answers like a fresh monolithic freeze.
    #[test]
    fn publish_rebuilds_at_most_the_dirty_shards(seed in 0u64..20, edits in 1usize..12) {
        let mut g = small_graph(seed);
        g.set_shard_count(7);
        let store = SnapshotStore::new(&g);
        let before = store.load();
        let versions: Vec<u64> = (0..7).map(|s| g.shard_version(s)).collect();
        // k edge edits: delete an existing edge or add a fresh one
        let victims: Vec<(NodeId, String, NodeId)> = g
            .edges()
            .take(edits)
            .map(|e| (e.src, e.label.to_string(), e.dst))
            .collect();
        for (i, (s, l, d)) in victims.iter().enumerate() {
            if i % 2 == 0 {
                g.delete_edge_by_labels(
                    g.node_label(*s).unwrap().to_string().as_str(),
                    l,
                    g.node_label(*d).unwrap().to_string().as_str(),
                ).unwrap();
            } else {
                g.ensure_edge(*s, "fresh-edit", *d).unwrap();
            }
        }
        let dirty: Vec<usize> =
            (0..7).filter(|&s| g.shard_version(s) != versions[s]).collect();
        let (after, stats) = store.publish_stats(&g);
        prop_assert_eq!(stats.rebuilt, dirty.len(), "rebuilds exactly the dirty shards");
        prop_assert!(stats.rebuilt <= 2 * edits, "≤ two shards per edge edit");
        for s in 0..7 {
            prop_assert_eq!(
                after.shares_shard_with(&before, s),
                !dirty.contains(&s),
                "shard {} sharing mismatch", s
            );
        }
        // the incremental epoch answers exactly like a fresh freeze
        let fresh = g.snapshot();
        let sources: Vec<NodeId> = fresh.node_ids().collect();
        let rf = fresh.resolve_filter(&EdgeFilter::All);
        prop_assert_eq!(
            after.closure_pairs_from(&sources, &rf),
            fresh.closure_pairs_from(&sources, &rf)
        );
    }
}

/// Acceptance pin: an incremental publish after a single-edge mutation
/// whose endpoints share a shard rebuilds exactly 1 of the 64 shards.
#[test]
fn single_edge_mutation_rebuilds_exactly_one_shard() {
    let mut g = small_graph(11);
    g.set_shard_count(64);
    let store = SnapshotStore::new(&g);
    // two nodes in the same shard (same index mod 64)
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let a = nodes[0];
    let b = *nodes[1..].iter().find(|n| n.index() % 64 == a.index() % 64).unwrap_or(&a);
    g.ensure_edge(a, "same-shard-edit", b).unwrap();
    let (_, stats) = store.publish_stats(&g);
    assert_eq!(stats.rebuilt, 1, "one dirty shard, one rebuild");
    assert_eq!(stats.reused, 63);
}

/// Facade-level identity: `run_batch` results are unaffected by the
/// system's shard configuration, at every thread count.
#[test]
fn query_batches_are_identical_across_shard_counts() {
    use onion_core::testkit::random_queries;

    let build = |shards: usize| {
        let mut s = OnionSystem::with_transport_lexicon();
        s.set_shard_count(shards);
        s.add_source(examples::carrier());
        s.add_source(examples::factory());
        s.add_rules(examples::fig2_rules_text()).unwrap();
        s.articulate_from_rules("carrier", "factory").unwrap();
        let mut ckb = KnowledgeBase::new("carrier");
        for i in 0..40 {
            ckb.add(
                Instance::new(&format!("c{i}"), if i % 2 == 0 { "Cars" } else { "SUV" })
                    .with("Price", Value::Num((i * 997) as f64)),
            );
        }
        s.add_knowledge_base(ckb);
        s
    };
    let reference = build(1);
    let queries = random_queries(reference.articulation().unwrap(), "Price", 12, 3);
    let want: Vec<ResultSet> = queries.iter().map(|q| reference.run_query(q).unwrap()).collect();
    for shards in [2usize, 7, 64] {
        let system = build(shards);
        for threads in [1usize, 4] {
            let exec = Executor::new(threads);
            let got: Vec<ResultSet> = system
                .run_batch(&exec, &queries)
                .into_iter()
                .map(|r| r.unwrap().as_ref().clone())
                .collect();
            assert_eq!(got, want, "shards={shards} threads={threads}");
        }
    }
}

/// The lock-free store under real churn: publishing 100 epochs while
/// pool workers continuously load must never tear a reader or lose an
/// epoch.
#[test]
fn lock_free_load_survives_publish_storm() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut g = small_graph(5);
    g.set_shard_count(7);
    let store = Arc::new(SnapshotStore::new(&g));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut loads = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.load();
                    assert!(snap.epoch() >= last, "epochs regress");
                    // coherence: counts match a full scan of the frozen view
                    assert_eq!(snap.node_ids().count(), snap.node_count());
                    last = snap.epoch();
                    loads += 1;
                }
                loads
            })
        })
        .collect();
    for i in 0..100 {
        g.ensure_edge_by_labels(&format!("Storm{i}"), rel::SUBCLASS_OF, "C0").unwrap();
        store.publish(&g);
    }
    stop.store(true, Ordering::Relaxed);
    let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers actually loaded");
    assert_eq!(store.epoch(), 100);
}
