//! Property-based checks of the ontology algebra laws (§5) over
//! generated overlap pairs and rule subsets.

use proptest::prelude::*;

use onion_core::algebra::laws;
use onion_core::prelude::*;
use onion_core::testkit::{overlap_pair, OverlapSpec};

fn spec_strategy() -> impl Strategy<Value = OverlapSpec> {
    (0u64..1000, 10usize..40, 0.0f64..0.6, 0.0f64..1.0).prop_map(
        |(seed, concepts, overlap, rename_prob)| OverlapSpec {
            seed,
            concepts,
            overlap,
            rename_prob,
            max_children: 4,
        },
    )
}

/// Builds a rule set bridging a subset of the pair's planted truth.
fn rules_from_truth(pair: &onion_core::testkit::OverlapPair, take: usize) -> RuleSet {
    let mut rs = RuleSet::new();
    for (l, r) in pair.truth.iter().take(take) {
        let (lo, ln) = l.split_once('.').expect("qualified");
        let (ro, rn) = r.split_once('.').expect("qualified");
        rs.push(ArticulationRule::term_implies(Term::qualified(lo, ln), Term::qualified(ro, rn)));
    }
    rs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// All §5 laws hold on arbitrary planted pairs and truth-subset rules.
    #[test]
    fn algebra_laws_hold(spec in spec_strategy(), take in 0usize..20) {
        let pair = overlap_pair(&spec);
        let rules = rules_from_truth(&pair, take);
        let generator = ArticulationGenerator::new();
        let violations =
            laws::check_all(&pair.left, &pair.right, &rules, &generator).unwrap();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// Difference shrinks monotonically as more concepts are bridged.
    #[test]
    fn difference_monotone_in_rules(spec in spec_strategy()) {
        let pair = overlap_pair(&spec);
        let generator = ArticulationGenerator::new();
        let mut previous = usize::MAX;
        for take in [0usize, 2, 8, usize::MAX] {
            let take = take.min(pair.truth.len());
            let rules = rules_from_truth(&pair, take);
            let art = generator.generate(&rules, &[&pair.left, &pair.right]).unwrap();
            let (d, _) = difference(&pair.left, &pair.right, &art).unwrap();
            prop_assert!(d.node_count() <= previous,
                "difference grew from {previous} to {} at take={take}", d.node_count());
            previous = d.node_count();
        }
    }

    /// Union node count equals the sum of parts (no accidental merging).
    #[test]
    fn union_preserves_sources(spec in spec_strategy(), take in 0usize..10) {
        let pair = overlap_pair(&spec);
        let rules = rules_from_truth(&pair, take);
        let generator = ArticulationGenerator::new();
        let u = union(&pair.left, &pair.right, &rules, &generator).unwrap();
        prop_assert_eq!(
            u.graph.node_count(),
            pair.left.term_count() + pair.right.term_count()
                + u.articulation.ontology.term_count()
        );
    }

    /// Intersection terms never exceed the bridged vocabulary.
    #[test]
    fn intersection_bounded_by_rules(spec in spec_strategy(), take in 0usize..10) {
        let pair = overlap_pair(&spec);
        let rules = rules_from_truth(&pair, take);
        let generator = ArticulationGenerator::new();
        let i = intersect(&pair.left, &pair.right, &rules, &generator).unwrap();
        // each simple rule introduces at most one articulation term
        prop_assert!(i.term_count() <= rules.len());
    }
}
