//! Property tests for the label-indexed adjacency layer: the id-typed
//! and string-typed APIs must agree on arbitrary graphs (this is the
//! executable witness that the string wrappers are thin — they resolve
//! the label once and run the same id path), and the closure operators
//! must respect reachability on random DAGs from `onion-testkit`.

use proptest::prelude::*;

use onion_core::graph::closure::{materialize_closure, transitive_pairs, transitive_reduce};
use onion_core::graph::rel;
use onion_core::graph::traverse::EdgeFilter;
use onion_core::prelude::*;
use onion_core::testkit::{generate_dag, generate_graph, GraphSpec};

fn subclass_filter() -> EdgeFilter {
    EdgeFilter::label(rel::SUBCLASS_OF)
}

proptest! {
    /// `transitive_reduce` alone never changes reachability: it deletes
    /// only edges implied by paths that remain.
    #[test]
    fn reduce_preserves_reachability(seed in 0u64..48, extra in 0usize..120) {
        let g0 = generate_dag(seed, 60, extra);
        let before = transitive_pairs(&g0, &subclass_filter());
        let mut g = g0.clone();
        transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        let after = transitive_pairs(&g, &subclass_filter());
        prop_assert_eq!(before, after);
    }

    /// `materialize_closure ∘ transitive_reduce` is a fixpoint on DAGs:
    /// applying the pair a second time changes nothing.
    #[test]
    fn materialize_after_reduce_is_fixpoint(seed in 0u64..48, extra in 0usize..120) {
        let mut g = generate_dag(seed, 50, extra);
        transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        let once = g.clone();
        transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        prop_assert!(g.same_shape(&once), "second application changed the graph");
    }

    /// On a reduced DAG, re-materialising and re-reducing returns the
    /// same edge set: reduction is canonical for DAGs.
    #[test]
    fn reduce_is_canonical_on_dags(seed in 0u64..48, extra in 0usize..120) {
        let mut g = generate_dag(seed, 50, extra);
        transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        let reduced = g.clone();
        materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        prop_assert!(g.same_shape(&reduced));
    }

    /// Id-based and string-based neighbour/degree/find APIs agree on
    /// random mixed-label graphs — and the id path never consults the
    /// interner, so agreement proves the wrappers do exactly one
    /// resolution at the boundary.
    #[test]
    fn id_and_string_apis_agree(seed in 0u64..48) {
        let g = generate_graph(&GraphSpec::sized(seed, 80, 400));
        let mut labels: Vec<String> =
            g.edges().map(|e| e.label.to_string()).collect();
        labels.push("NeverInterned".to_string());
        labels.sort();
        labels.dedup();
        for n in g.node_ids() {
            for label in &labels {
                let lid = g.label_id(label);
                let by_str: Vec<NodeId> = g.out_neighbors(n, label).collect();
                let by_id: Vec<NodeId> = match lid {
                    Some(l) => g.out_neighbors_by_id(n, l).collect(),
                    None => Vec::new(),
                };
                prop_assert_eq!(&by_str, &by_id);
                let in_str: Vec<NodeId> = g.in_neighbors(n, label).collect();
                let in_id: Vec<NodeId> = match lid {
                    Some(l) => g.in_neighbors_by_id(n, l).collect(),
                    None => Vec::new(),
                };
                prop_assert_eq!(&in_str, &in_id);
                if let Some(l) = lid {
                    prop_assert_eq!(by_id.len(), g.out_degree_labeled(n, l));
                    prop_assert_eq!(in_id.len(), g.in_degree_labeled(n, l));
                    prop_assert_eq!(
                        g.degree_labeled(n, l),
                        g.out_degree_labeled(n, l) + g.in_degree_labeled(n, l)
                    );
                    for &m in &by_id {
                        prop_assert_eq!(g.find_edge(n, label, m), g.find_edge_by_ids(n, l, m));
                        prop_assert!(g.find_edge_by_ids(n, l, m).is_some());
                    }
                }
            }
            // the whole incident list partitions into the label buckets
            let out_total: usize = labels
                .iter()
                .filter_map(|l| g.label_id(l))
                .map(|l| g.out_degree_labeled(n, l))
                .sum();
            prop_assert_eq!(out_total, g.out_degree(n));
            prop_assert_eq!(g.out_edge_entries(n).count(), g.out_degree(n));
            prop_assert_eq!(g.in_edge_entries(n).count(), g.in_degree(n));
        }
    }

    /// Entry iteration agrees with the `EdgeRef` view edge-by-edge.
    #[test]
    fn edge_entries_agree_with_edge_refs(seed in 0u64..48) {
        let g = generate_graph(&GraphSpec::sized(seed, 60, 300));
        let refs: Vec<(EdgeId, NodeId, String, NodeId)> =
            g.edges().map(|e| (e.id, e.src, e.label.to_string(), e.dst)).collect();
        let entries: Vec<(EdgeId, NodeId, String, NodeId)> = g
            .edge_entries()
            .map(|(e, s, l, d)| (e, s, g.resolve(l).to_string(), d))
            .collect();
        prop_assert_eq!(refs, entries);
    }

    /// Deleting and re-adding edges keeps every index consistent
    /// (incident lists, label buckets, the edge index and degrees).
    #[test]
    fn churn_keeps_indexes_consistent(seed in 0u64..32, kills in 1usize..20) {
        let mut g = generate_graph(&GraphSpec::sized(seed, 40, 200));
        // delete `kills` arbitrary edges, then re-add them
        let victims: Vec<(NodeId, String, NodeId)> = g
            .edges()
            .take(kills)
            .map(|e| (e.src, e.label.to_string(), e.dst))
            .collect();
        for (s, l, d) in &victims {
            let id = g.find_edge(*s, l, *d).expect("listed edge");
            g.delete_edge(id).unwrap();
            prop_assert!(g.find_edge(*s, l, *d).is_none());
        }
        for (s, l, d) in &victims {
            g.add_edge(*s, l, *d).unwrap();
        }
        for n in g.node_ids() {
            prop_assert_eq!(g.out_edge_entries(n).count(), g.out_degree(n));
            // every listed out-edge is probeable through the edge index
            for (e, lid, dst) in g.out_edge_entries(n) {
                prop_assert_eq!(g.find_edge_by_ids(n, lid, dst), Some(e));
            }
        }
    }
}
