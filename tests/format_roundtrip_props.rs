//! Property-based round-trips for the interchange formats (§2.1): text,
//! XML, rule syntax, Horn syntax and query syntax all print-then-parse
//! to the same value.

use proptest::prelude::*;

use onion_core::graph::{text, xml};
use onion_core::prelude::*;
use onion_core::rules::horn::HornProgram;
use onion_core::rules::parser::parse_rule;

/// Labels exercising quoting: plain words, spaces, quotes, XML entities.
fn gnarly_label() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z][a-zA-Z0-9_]{0,8}",
        Just("has space".to_string()),
        Just("quo\"te".to_string()),
        Just("amp&lt".to_string()),
        Just("tick'mark".to_string()),
        Just("<angled>".to_string()),
    ]
}

fn edge_list() -> impl Strategy<Value = Vec<(String, String, String)>> {
    prop::collection::vec((gnarly_label(), "[a-z]{1,6}", gnarly_label()), 0..20)
}

/// Lowercase ontology names avoiding the rule grammar's reserved words
/// (`and` / `or` must be quoted when used as identifiers).
fn ontology_name() -> impl Strategy<Value = String> {
    "[a-z]{1,6}".prop_map(|s| if s == "or" || s == "and" { format!("{s}x") } else { s })
}

fn build(edges: &[(String, String, String)]) -> OntGraph {
    let mut g = OntGraph::new("roundtrip");
    for (a, l, b) in edges {
        if a != b {
            let _ = g.ensure_edge_by_labels(a, l, b);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn text_roundtrip(edges in edge_list()) {
        let g = build(&edges);
        let serialized = text::to_text(&g);
        let parsed = text::from_text(&serialized).unwrap();
        prop_assert!(g.same_shape(&parsed));
        prop_assert_eq!(g.name(), parsed.name());
    }

    #[test]
    fn xml_roundtrip(edges in edge_list()) {
        let g = build(&edges);
        let serialized = xml::to_xml(&g);
        let parsed = xml::from_xml(&serialized).unwrap();
        prop_assert!(g.same_shape(&parsed));
    }

    #[test]
    fn rule_roundtrip(
        o1 in ontology_name(), t1 in "[A-Z][a-z]{1,6}",
        o2 in ontology_name(), t2 in "[A-Z][a-z]{1,6}",
        t3 in "[A-Z][a-z]{1,6}",
        shape in 0u8..5,
    ) {
        let src = match shape {
            0 => format!("{o1}.{t1} => {o2}.{t2}"),
            1 => format!("{o1}.{t1} => transport.{t3} => {o2}.{t2}"),
            2 => format!("({o1}.{t1} & {o1}.{t3}) => {o2}.{t2}"),
            3 => format!("{o1}.{t1} => ({o2}.{t2} | {o2}.{t3})"),
            _ => format!("ConvFn(): {o1}.{t1} => {o2}.{t2}"),
        };
        let rule = parse_rule(&src).unwrap();
        let reparsed = parse_rule(&rule.to_string()).unwrap();
        prop_assert_eq!(rule, reparsed);
    }

    #[test]
    fn horn_roundtrip(
        consts in prop::collection::vec("[a-z]{1,5}(\\.[A-Z][a-z]{1,4})?", 1..6)
    ) {
        let mut src = String::from("p(X, Z) :- p(X, Y), p(Y, Z).\n");
        for c in &consts {
            src.push_str(&format!("p(\"{c}\", \"{c}x\").\n"));
        }
        let prog = HornProgram::parse(&src).unwrap();
        let printed: String =
            prog.clauses.iter().map(|c| format!("{c}\n")).collect();
        let reparsed = HornProgram::parse(&printed).unwrap();
        prop_assert_eq!(prog, reparsed);
    }

    #[test]
    fn query_roundtrip(
        class in "[A-Z][a-z]{1,8}",
        attrs in prop::collection::vec("[A-Z][a-z]{1,6}", 0..3),
        bound in 0.0f64..100000.0,
    ) {
        let mut q = Query::all(&class);
        for a in &attrs {
            q = q.select(a);
        }
        if let Some(a) = attrs.first() {
            q = q.filter(a, CmpOp::Lt, Value::Num(bound.round()));
        }
        let reparsed = Query::parse(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Importing the same graph through text and XML yields the same shape.
    #[test]
    fn formats_agree(edges in edge_list()) {
        let g = build(&edges);
        let via_text = text::from_text(&text::to_text(&g)).unwrap();
        let via_xml = xml::from_xml(&xml::to_xml(&g)).unwrap();
        prop_assert!(via_text.same_shape(&via_xml));
    }
}
