//! Property-based tests on the graph substrate: transformation
//! primitives, closure, pattern matching.

use proptest::prelude::*;

use onion_core::graph::closure::{materialize_closure, transitive_pairs, transitive_reduce};
use onion_core::graph::ops::{apply_all, GraphOp};
use onion_core::graph::traverse::{has_path, EdgeFilter};
use onion_core::prelude::*;

/// A small label alphabet keeps collision (and thus interesting merges)
/// likely.
fn label() -> impl Strategy<Value = String> {
    (0u8..12).prop_map(|i| format!("n{i}"))
}

fn edge_list() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((label(), label()), 0..40)
}

fn graph_from(edges: &[(String, String)]) -> OntGraph {
    let mut g = OntGraph::new("prop");
    for (a, b) in edges {
        if a != b {
            let _ = g.ensure_edge_by_labels(a, "S", b);
        }
    }
    g
}

proptest! {
    /// Journal replay reproduces the graph exactly.
    #[test]
    fn journal_replay_is_faithful(edges in edge_list(), delete in prop::collection::vec(label(), 0..6)) {
        let mut g = OntGraph::new("orig");
        g.enable_journal();
        for (a, b) in &edges {
            if a != b {
                let _ = g.ensure_edge_by_labels(a, "S", b);
            }
        }
        for d in &delete {
            let _ = g.delete_node_by_label(d);
        }
        let journal = g.take_journal();
        let mut replay = OntGraph::new("replay");
        apply_all(&mut replay, &journal).unwrap();
        prop_assert!(replay.same_shape(&g));
    }

    /// Closure materialisation then reduction returns to a graph with
    /// the same reachability.
    #[test]
    fn closure_roundtrip_preserves_reachability(edges in edge_list()) {
        let g0 = graph_from(&edges);
        let pairs_before = transitive_pairs(&g0, &EdgeFilter::label("S"));
        let mut g = g0.clone();
        materialize_closure(&mut g, "S").unwrap();
        transitive_reduce(&mut g, "S").unwrap();
        let pairs_after = transitive_pairs(&g, &EdgeFilter::label("S"));
        prop_assert_eq!(pairs_before, pairs_after);
    }

    /// After materialisation, every transitive pair has a direct edge.
    #[test]
    fn materialized_closure_is_complete(edges in edge_list()) {
        let mut g = graph_from(&edges);
        materialize_closure(&mut g, "S").unwrap();
        for (a, b) in transitive_pairs(&g, &EdgeFilter::label("S")) {
            if a != b {
                prop_assert!(g.find_edge(a, "S", b).is_some());
            }
        }
    }

    /// has_path agrees with membership in the transitive closure.
    #[test]
    fn has_path_agrees_with_closure(edges in edge_list()) {
        let g = graph_from(&edges);
        let pairs = transitive_pairs(&g, &EdgeFilter::All);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for &a in nodes.iter().take(8) {
            for &b in nodes.iter().take(8) {
                if a == b { continue; }
                let reported = has_path(&g, a, b, &EdgeFilter::All);
                prop_assert_eq!(reported, pairs.contains(&(a, b)));
            }
        }
    }

    /// Node deletion removes exactly the incident edges.
    #[test]
    fn deletion_is_local(edges in edge_list(), victim in label()) {
        let mut g = graph_from(&edges);
        let Some(v) = g.node_by_label(&victim) else { return Ok(()); };
        let incident = g.out_degree(v) + g.in_degree(v);
        let edges_before = g.edge_count();
        let nodes_before = g.node_count();
        g.delete_node(v).unwrap();
        prop_assert_eq!(g.edge_count(), edges_before - incident);
        prop_assert_eq!(g.node_count(), nodes_before - 1);
    }

    /// A single-edge pattern matches exactly the edges with that label.
    #[test]
    fn single_edge_pattern_counts_edges(edges in edge_list()) {
        let g = graph_from(&edges);
        let mut p = Pattern::new();
        let x = p.any_node();
        let y = p.any_node();
        p.edge(x, "S", y);
        let matches = Matcher::new(&g).find_all(&p).unwrap();
        prop_assert_eq!(matches.len(), g.edge_count());
    }

    /// Matching a pattern extracted from the graph itself always succeeds.
    #[test]
    fn self_extracted_patterns_match(edges in edge_list()) {
        let g = graph_from(&edges);
        for e in g.edges().take(5) {
            let s = g.node_label(e.src).unwrap();
            let d = g.node_label(e.dst).unwrap();
            let mut p = Pattern::new();
            let a = p.node(s);
            let b = p.node(d);
            p.edge(a, e.label, b);
            prop_assert!(Matcher::new(&g).matches(&p).unwrap());
        }
    }

    /// merge_from is idempotent: merging the same graph twice changes
    /// nothing the second time.
    #[test]
    fn merge_from_idempotent(edges in edge_list()) {
        let src = graph_from(&edges);
        let mut dst = OntGraph::new("dst");
        dst.merge_from(&src).unwrap();
        let nodes = dst.node_count();
        let edge_count = dst.edge_count();
        dst.merge_from(&src).unwrap();
        prop_assert_eq!(dst.node_count(), nodes);
        prop_assert_eq!(dst.edge_count(), edge_count);
    }

    /// Inverses of edge ops really undo them.
    #[test]
    fn edge_op_inverse_roundtrip(edges in edge_list()) {
        let mut g = graph_from(&edges);
        let snapshot = g.edge_triples_sorted();
        let op = GraphOp::edge_add("fresh_a", "S", "fresh_b");
        op.apply(&mut g).unwrap();
        op.inverse().unwrap().apply(&mut g).unwrap();
        // fresh nodes remain but edges are restored
        prop_assert_eq!(g.edge_triples_sorted(), snapshot);
    }
}
