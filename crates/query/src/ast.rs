//! Query representation and textual syntax.
//!
//! Queries are phrased in the articulation ontology's vocabulary, in a
//! small form that matches the paper's attribute-pattern notation:
//!
//! ```text
//! find Vehicle(Price, Owner) where Price < 10000 and Owner = "Ann"
//! ```
//!
//! * `Vehicle` — a class of the articulation ontology;
//! * the parenthesised list — attributes to return (empty means "id
//!   only");
//! * `where` — conjunctive comparisons on attribute values. Numbers are
//!   interpreted in the articulation's metric space (e.g. Euro) and
//!   converted per source by the reformulator.

use std::fmt;

use crate::{QueryError, Result};

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric (all numerics are f64; ontology instance data is small).
    Num(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Numeric accessor.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Evaluates `left op right`. Mixed types compare unequal (and
    /// order-compare false).
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        match (left, right) {
            (Value::Num(a), Value::Num(b)) => match self {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Ge => a >= b,
                CmpOp::Gt => a > b,
            },
            (Value::Str(a), Value::Str(b)) => match self {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Ge => a >= b,
                CmpOp::Gt => a > b,
            },
            _ => self == CmpOp::Ne,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        };
        write!(f, "{s}")
    }
}

/// One conjunctive condition `attr op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Attribute name (articulation vocabulary).
    pub attr: String,
    /// Operator.
    pub op: CmpOp,
    /// Comparison value (articulation metric space).
    pub value: Value,
}

impl Condition {
    /// Builds a condition.
    pub fn new(attr: &str, op: CmpOp, value: Value) -> Self {
        Condition { attr: attr.to_string(), op, value }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// A query against the articulation ontology.
///
/// ```
/// use onion_query::{CmpOp, Query, Value};
///
/// let q = Query::parse("find Vehicle(Price) where Price < 10000").unwrap();
/// assert_eq!(q.class, "Vehicle");
/// assert_eq!(q.select, vec!["Price"]);
/// assert_eq!(q.conditions[0].op, CmpOp::Lt);
/// assert_eq!(q.conditions[0].value, Value::Num(10000.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Class (articulation vocabulary, unqualified).
    pub class: String,
    /// Attributes to project (articulation vocabulary).
    pub select: Vec<String>,
    /// Conjunctive conditions.
    pub conditions: Vec<Condition>,
}

impl Query {
    /// Query for all instances of `class`.
    pub fn all(class: &str) -> Self {
        Query { class: class.to_string(), select: Vec::new(), conditions: Vec::new() }
    }

    /// Adds a projected attribute.
    pub fn select(mut self, attr: &str) -> Self {
        self.select.push(attr.to_string());
        self
    }

    /// Adds a condition.
    pub fn filter(mut self, attr: &str, op: CmpOp, value: Value) -> Self {
        self.conditions.push(Condition::new(attr, op, value));
        self
    }

    /// Parses the textual form (see module docs).
    pub fn parse(input: &str) -> Result<Query> {
        let s = input.trim();
        let rest = s
            .strip_prefix("find ")
            .ok_or_else(|| QueryError::Parse("query must start with 'find'".into()))?;
        let (head, where_part) = match rest.find(" where ") {
            Some(i) => (&rest[..i], Some(&rest[i + 7..])),
            None => (rest, None),
        };
        let head = head.trim();
        let (class, select) = match head.find('(') {
            Some(i) => {
                let class = head[..i].trim();
                let args = head[i..]
                    .strip_prefix('(')
                    .and_then(|a| a.strip_suffix(')'))
                    .ok_or_else(|| QueryError::Parse("unbalanced parentheses".into()))?;
                let select: Vec<String> = args
                    .split(',')
                    .map(|a| a.trim().to_string())
                    .filter(|a| !a.is_empty())
                    .collect();
                (class.to_string(), select)
            }
            None => (head.to_string(), Vec::new()),
        };
        if class.is_empty() || class.contains(char::is_whitespace) {
            return Err(QueryError::Parse(format!("bad class name {class:?}")));
        }
        let mut q = Query { class, select, conditions: Vec::new() };
        if let Some(w) = where_part {
            for clause in w.split(" and ") {
                q.conditions.push(parse_condition(clause.trim())?);
            }
        }
        Ok(q)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "find {}", self.class)?;
        if !self.select.is_empty() {
            write!(f, "({})", self.select.join(", "))?;
        }
        for (i, c) in self.conditions.iter().enumerate() {
            write!(f, " {} {c}", if i == 0 { "where" } else { "and" })?;
        }
        Ok(())
    }
}

fn parse_condition(s: &str) -> Result<Condition> {
    // longest operators first
    for (tok, op) in [
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("!=", CmpOp::Ne),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
        ("=", CmpOp::Eq),
    ] {
        if let Some(i) = s.find(tok) {
            let attr = s[..i].trim();
            let val = s[i + tok.len()..].trim();
            if attr.is_empty() || val.is_empty() {
                return Err(QueryError::Parse(format!("bad condition {s:?}")));
            }
            let value = if let Some(stripped) = val.strip_prefix('"') {
                let inner = stripped
                    .strip_suffix('"')
                    .ok_or_else(|| QueryError::Parse(format!("unterminated string in {s:?}")))?;
                Value::Str(inner.to_string())
            } else if let Ok(n) = val.parse::<f64>() {
                Value::Num(n)
            } else {
                Value::Str(val.to_string())
            };
            return Ok(Condition::new(attr, op, value));
        }
    }
    Err(QueryError::Parse(format!("no operator in condition {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_query() {
        let q = Query::parse("find Vehicle(Price, Owner) where Price < 10000 and Owner = \"Ann\"")
            .unwrap();
        assert_eq!(q.class, "Vehicle");
        assert_eq!(q.select, vec!["Price", "Owner"]);
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.conditions[0], Condition::new("Price", CmpOp::Lt, Value::Num(10000.0)));
        assert_eq!(q.conditions[1], Condition::new("Owner", CmpOp::Eq, Value::Str("Ann".into())));
    }

    #[test]
    fn parse_minimal_query() {
        let q = Query::parse("find Vehicle").unwrap();
        assert_eq!(q.class, "Vehicle");
        assert!(q.select.is_empty());
        assert!(q.conditions.is_empty());
    }

    #[test]
    fn parse_empty_projection() {
        let q = Query::parse("find Vehicle()").unwrap();
        assert!(q.select.is_empty());
    }

    #[test]
    fn parse_operators() {
        for (src, op) in [
            ("find C where A < 1", CmpOp::Lt),
            ("find C where A <= 1", CmpOp::Le),
            ("find C where A = 1", CmpOp::Eq),
            ("find C where A != 1", CmpOp::Ne),
            ("find C where A >= 1", CmpOp::Ge),
            ("find C where A > 1", CmpOp::Gt),
        ] {
            assert_eq!(Query::parse(src).unwrap().conditions[0].op, op, "{src}");
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "Vehicle",
            "find ",
            "find V(a",
            "find V where",
            "find V where Price",
            "find V where Price < ",
            "find V where O = \"open",
        ] {
            assert!(Query::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "find Vehicle",
            "find Vehicle(Price)",
            "find Vehicle(Price, Owner) where Price < 10000",
            "find Vehicle where Owner = \"Ann\" and Price >= 2",
        ] {
            let q = Query::parse(src).unwrap();
            let q2 = Query::parse(&q.to_string()).unwrap();
            assert_eq!(q, q2, "roundtrip failed for {src}");
        }
    }

    #[test]
    fn cmp_eval_numbers_and_strings() {
        assert!(CmpOp::Lt.eval(&Value::Num(1.0), &Value::Num(2.0)));
        assert!(!CmpOp::Lt.eval(&Value::Num(2.0), &Value::Num(2.0)));
        assert!(CmpOp::Le.eval(&Value::Num(2.0), &Value::Num(2.0)));
        assert!(CmpOp::Eq.eval(&Value::Str("a".into()), &Value::Str("a".into())));
        assert!(CmpOp::Gt.eval(&Value::Str("b".into()), &Value::Str("a".into())));
        // mixed types: only != holds
        assert!(CmpOp::Ne.eval(&Value::Num(1.0), &Value::Str("1".into())));
        assert!(!CmpOp::Eq.eval(&Value::Num(1.0), &Value::Str("1".into())));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Num(2000.0).to_string(), "2000");
        assert_eq!(Value::Num(2.5).to_string(), "2.5");
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
    }

    #[test]
    fn builder_api() {
        let q = Query::all("Vehicle").select("Price").filter("Price", CmpOp::Lt, Value::Num(5.0));
        assert_eq!(q.to_string(), "find Vehicle(Price) where Price < 5");
    }
}
