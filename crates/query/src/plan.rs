//! Query planning: which sources to consult, with what local queries.
//!
//! §2.3: the engine "derives an execution plan against the sources
//! involved". The plan records, per contributing source, the local
//! classes, rewritten conditions and attribute mappings; sources whose
//! vocabularies the bridges cannot reach are pruned (their wrapper is
//! never called — asserted by the executor tests).

use onion_articulate::Articulation;
use onion_ontology::Ontology;
use onion_rules::ConversionRegistry;

use crate::ast::Query;
use crate::reformulate::{Reformulator, SourceReformulation};
use crate::Result;

/// One source's part of the plan.
pub type SourceQuery = SourceReformulation;

/// A full query plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The original query (articulation vocabulary).
    pub query: Query,
    /// Per-source reformulated queries (only contributing sources).
    pub source_queries: Vec<SourceQuery>,
}

impl QueryPlan {
    /// Names of the sources this plan consults.
    pub fn sources(&self) -> Vec<&str> {
        self.source_queries.iter().map(|s| s.source.as_str()).collect()
    }

    /// Human-readable plan rendering (for the viewer / examples).
    pub fn explain(&self) -> String {
        let mut out = format!("plan for: {}\n", self.query);
        if self.source_queries.is_empty() {
            out.push_str("  (no source can answer)\n");
        }
        for sq in &self.source_queries {
            out.push_str(&format!("  source {}: classes [{}]", sq.source, sq.classes.join(", ")));
            if !sq.conditions.is_empty() {
                let conds: Vec<String> = sq.conditions.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(" where {}", conds.join(" and ")));
            }
            if !sq.conversions.is_empty() {
                let convs: Vec<String> = sq
                    .conversions
                    .iter()
                    .map(|c| format!("{} via {}", c.local_attr, c.to_articulation))
                    .collect();
                out.push_str(&format!(" converting [{}]", convs.join(", ")));
            }
            out.push('\n');
        }
        out
    }
}

/// Plans `query` over the articulation and sources.
pub fn plan(
    query: &Query,
    articulation: &Articulation,
    sources: &[&Ontology],
    conversions: &ConversionRegistry,
) -> Result<QueryPlan> {
    let reformulator = Reformulator::new(articulation, sources.to_vec(), conversions);
    let source_queries = reformulator.reformulate(query)?;
    Ok(QueryPlan { query: query.clone(), source_queries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    #[test]
    fn plan_consults_both_fig2_sources_for_vehicles() {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        let conv = ConversionRegistry::standard();
        let q = Query::parse("find Vehicle(Price) where Price < 5000").unwrap();
        let p = plan(&q, &art, &[&c, &f], &conv).unwrap();
        let mut sources = p.sources();
        sources.sort_unstable();
        assert_eq!(sources, vec!["carrier", "factory"]);
        let text = p.explain();
        assert!(text.contains("source carrier"), "{text}");
        assert!(text.contains("DGToEuroFn"), "{text}");
    }

    #[test]
    fn plan_prunes_unreachable_sources() {
        let c = carrier();
        let f = factory();
        // a single rule that gives carrier no path into the queried class
        let rules =
            onion_rules::parse_rules("factory.CargoCarrier => transport.CargoCarrier\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&c, &f]).unwrap();
        let conv = ConversionRegistry::standard();
        let q = Query::all("CargoCarrier");
        let p = plan(&q, &art, &[&c, &f], &conv).unwrap();
        assert_eq!(p.sources(), vec!["factory"]);
    }

    #[test]
    fn fig2_trucks_are_cargo_carriers_via_conjunction() {
        // with the full Fig. 2 rules, carrier.Trucks ⇒ CargoCarrierVehicle
        // ⇒ factory.CargoCarrier ⇒ transport.CargoCarrier — both sources
        // legitimately answer a CargoCarrier query
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        let conv = ConversionRegistry::standard();
        let p = plan(&Query::all("CargoCarrier"), &art, &[&c, &f], &conv).unwrap();
        let mut sources = p.sources();
        sources.sort_unstable();
        assert_eq!(sources, vec!["carrier", "factory"]);
    }

    #[test]
    fn plan_explain_handles_empty() {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        let conv = ConversionRegistry::standard();
        // Euro is an articulation term no source class implies… except
        // currency terms; if they do map, accept a non-empty plan. Use a
        // synthesized-only term instead: Person (intra-articulation).
        let q = Query::all("Person");
        let p = plan(&q, &art, &[&c, &f], &conv).unwrap();
        let _ = p.explain(); // must not panic either way
    }
}
