//! Source wrappers (Fig. 1: "Wrapper" boxes between the query engine
//! and the knowledge bases).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::ast::Condition;
use crate::kb::{Instance, KnowledgeBase};
use crate::Result;

/// A queryable source of instances.
pub trait Wrapper {
    /// The source ontology this wrapper serves.
    fn source(&self) -> &str;

    /// Fetches instances of any of `classes` satisfying `conditions`
    /// (all in the source's local vocabulary).
    fn fetch(&self, classes: &[String], conditions: &[Condition]) -> Result<Vec<Instance>>;
}

/// Wrapper over an in-memory [`KnowledgeBase`], counting calls so tests
/// and benches can observe plan behaviour (e.g. that pruned sources are
/// never consulted). The counter is atomic so wrappers stay `Sync` and
/// `onion-exec` can fan query batches over them from several threads.
#[derive(Debug)]
pub struct InMemoryWrapper {
    kb: KnowledgeBase,
    calls: AtomicUsize,
}

impl InMemoryWrapper {
    /// Wraps a knowledge base.
    pub fn new(kb: KnowledgeBase) -> Self {
        InMemoryWrapper { kb, calls: AtomicUsize::new(0) }
    }

    /// How many fetches have been served.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Read access to the underlying KB.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }
}

impl Wrapper for InMemoryWrapper {
    fn source(&self) -> &str {
        self.kb.name()
    }

    fn fetch(&self, classes: &[String], conditions: &[Condition]) -> Result<Vec<Instance>> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(self.kb.query(classes, conditions).into_iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Value};

    #[test]
    fn wrapper_serves_and_counts() {
        let mut kb = KnowledgeBase::new("carrier");
        kb.add(Instance::new("car1", "Cars").with("Price", Value::Num(4000.0)));
        kb.add(Instance::new("truck1", "Trucks").with("Price", Value::Num(9000.0)));
        let w = InMemoryWrapper::new(kb);
        assert_eq!(w.source(), "carrier");
        assert_eq!(w.calls(), 0);
        let got = w
            .fetch(&["Cars".to_string()], &[Condition::new("Price", CmpOp::Lt, Value::Num(5000.0))])
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, "car1");
        assert_eq!(w.calls(), 1);
    }
}
