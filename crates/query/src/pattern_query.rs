//! Pattern queries over the unified ontology (paper §3 "The Graph
//! Patterns").
//!
//! The paper's examples — `carrier:car:driver` and
//! `truck(O: owner, model)` — are *schema-level* queries: they select
//! portions of the (unified) ontology graph rather than instance data.
//! This module compiles the textual notation against the unified graph's
//! qualified labels (`carrier.Cars`), resolving each step
//! case-insensitively and singular/plural-insensitively, matching the
//! paper's loose use of `car` for the `Cars` node.

use onion_graph::pattern::NodeConstraint;
use onion_graph::{
    CaseInsensitiveEquiv, LabelEquiv, Match, MatchConfig, Matcher, OntGraph, Pattern,
};
use onion_lexicon::normalize::normalize;

use crate::{QueryError, Result};

/// Label equivalence for schema queries: case-insensitive and
/// plural-insensitive on the local part of a qualified label; the
/// ontology prefix must match exactly when present in the pattern.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemaEquiv;

impl LabelEquiv for SchemaEquiv {
    fn node_equiv(&self, pattern_label: &str, graph_label: &str) -> bool {
        if pattern_label == graph_label {
            return true;
        }
        // split qualified forms; pattern may be unqualified
        let (p_onto, p_name) = split(pattern_label);
        let (g_onto, g_name) = split(graph_label);
        if let Some(po) = p_onto {
            if g_onto != Some(po) {
                return false;
            }
        }
        normalize(p_name) == normalize(g_name)
    }

    fn edge_equiv(&self, pattern_label: &str, graph_label: &str) -> bool {
        CaseInsensitiveEquiv.edge_equiv(pattern_label, graph_label)
    }
}

fn split(label: &str) -> (Option<&str>, &str) {
    match label.split_once('.') {
        Some((o, n)) if !o.is_empty() && !n.is_empty() => (Some(o), n),
        _ => (None, label),
    }
}

/// Compiles the paper's textual pattern into a pattern scoped to one
/// source ontology: `carrier:car:driver` becomes a path pattern over
/// `carrier.car` → `carrier.driver` (resolved fuzzily by
/// [`SchemaEquiv`]). Patterns already containing dots are left as-is.
pub fn compile_scoped(text: &str) -> Result<Pattern> {
    let p = Pattern::parse(text).map_err(|e| QueryError::Parse(e.to_string()))?;
    // the paper's convention: the first path step may name the ontology;
    // if so, strip it and qualify the remaining labels with it
    let first_label = match &p.nodes.first() {
        Some(n) => match &n.constraint {
            NodeConstraint::Label(l) if !l.contains('.') => Some(l.clone()),
            _ => None,
        },
        None => None,
    };
    let Some(onto) = first_label else { return Ok(p) };
    // heuristic: treat the first step as an ontology prefix only when it
    // has a single outgoing Any edge chain (path form) and at least two
    // steps follow… simpler and predictable: when the caller wrote a
    // path of ≥ 2 steps and no label is qualified yet.
    let already_qualified = p.nodes.iter().any(|n| match &n.constraint {
        NodeConstraint::Label(l) => l.contains('.'),
        NodeConstraint::Any => false,
    });
    if already_qualified || p.nodes.len() < 2 {
        return Ok(p);
    }
    // drop node 0 and re-point edges; qualify every remaining label
    let mut q = Pattern::new();
    for n in p.nodes.iter().skip(1) {
        match &n.constraint {
            NodeConstraint::Label(l) => {
                let lbl = format!("{onto}.{l}");
                match &n.var {
                    Some(v) => q.var_node(v, &lbl),
                    None => q.node(&lbl),
                }
            }
            NodeConstraint::Any => match &n.var {
                Some(v) => q.any_var_node(v),
                None => q.any_node(),
            },
        };
    }
    for e in &p.edges {
        if e.src == 0 || e.dst == 0 {
            continue; // edges touching the ontology pseudo-step vanish
        }
        q.edges.push(onion_graph::PatternEdge {
            src: e.src - 1,
            dst: e.dst - 1,
            constraint: e.constraint.clone(),
        });
    }
    q.validate().map_err(|e| QueryError::Parse(e.to_string()))?;
    Ok(q)
}

/// Runs a schema pattern over the unified graph.
pub fn run(unified: &OntGraph, pattern: &Pattern) -> Result<Vec<Match>> {
    Matcher::with_equiv(unified, SchemaEquiv)
        .with_config(MatchConfig { relax_edge_labels: true, ..Default::default() })
        .find_all(pattern)
        .map_err(|e| QueryError::Parse(e.to_string()))
}

/// Convenience: compile the paper notation and run it.
pub fn query_unified(unified: &OntGraph, text: &str) -> Result<Vec<Match>> {
    let p = compile_scoped(text)?;
    run(unified, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    fn unified() -> OntGraph {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        art.unified(&[&c, &f]).unwrap()
    }

    #[test]
    fn papers_path_example() {
        // §3: carrier:car:driver — "a node car which has an outgoing edge
        // to the node driver"
        let u = unified();
        let ms = query_unified(&u, "carrier:car:driver").unwrap();
        assert_eq!(ms.len(), 1, "Cars -hasDriver-> Driver matches");
        let labels: Vec<&str> = ms[0].nodes.iter().map(|&n| u.node_label(n).unwrap()).collect();
        assert_eq!(labels, vec!["carrier.Cars", "carrier.Driver"]);
    }

    #[test]
    fn papers_attribute_example() {
        // §3: truck(O: owner, model) — scoped to carrier
        let u = unified();
        let ms = query_unified(&u, "carrier:truck(O: owner, model)").unwrap();
        // hmm: attribute args attach to the head step "truck"; the scope
        // step is consumed. One match against carrier.Trucks expected.
        assert_eq!(ms.len(), 1);
        let owner = ms[0].get("O").unwrap();
        assert_eq!(u.node_label(owner), Some("carrier.Owner"));
    }

    #[test]
    fn unscoped_patterns_match_across_namespaces() {
        let u = unified();
        // price attributes exist in both sources
        let p = compile_scoped("price").unwrap();
        let ms = run(&u, &p).unwrap();
        assert!(ms.len() >= 2, "carrier.Price and factory.Price (got {})", ms.len());
    }

    #[test]
    fn qualified_patterns_pass_through() {
        let u = unified();
        let p = compile_scoped("carrier.SUV -SubclassOf-> carrier.Cars").unwrap();
        let ms = run(&u, &p).unwrap();
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn schema_equiv_rules() {
        let e = SchemaEquiv;
        assert!(e.node_equiv("carrier.car", "carrier.Cars"));
        assert!(e.node_equiv("car", "carrier.Cars"), "unqualified matches any namespace");
        assert!(!e.node_equiv("factory.car", "carrier.Cars"), "wrong namespace");
        assert!(e.node_equiv("truck", "factory.Truck"));
        assert!(!e.node_equiv("truck", "factory.Vehicle"));
    }

    #[test]
    fn bad_pattern_is_parse_error() {
        assert!(matches!(compile_scoped("a -"), Err(QueryError::Parse(_))));
    }
}
