//! Plan execution: fetch per source, convert, merge.

use std::collections::BTreeMap;

use onion_articulate::Articulation;
use onion_ontology::Ontology;
use onion_rules::ConversionRegistry;

use crate::ast::Query;
use crate::plan::QueryPlan;
use crate::reformulate::Reformulator;
use crate::result::{ResultRow, ResultSet};
use crate::wrapper::Wrapper;
use crate::Result;

/// Executes a plan against the wrappers (matched to plan sources by
/// name; missing wrappers contribute nothing, mirroring an offline
/// source). Values are converted into articulation metric space and
/// attribute names into articulation vocabulary.
pub fn execute_plan(
    plan: &QueryPlan,
    articulation: &Articulation,
    sources: &[&Ontology],
    conversions: &ConversionRegistry,
    wrappers: &[&dyn Wrapper],
) -> Result<ResultSet> {
    let reformulator = Reformulator::new(articulation, sources.to_vec(), conversions);
    let mut rs = ResultSet::default();
    for sq in &plan.source_queries {
        let Some(wrapper) = wrappers.iter().find(|w| w.source() == sq.source) else {
            continue;
        };
        let fetched = wrapper.fetch(&sq.classes, &sq.conditions)?;
        for inst in fetched {
            let mut attrs = BTreeMap::new();
            for art_attr in &plan.query.select {
                if let Some(local) = sq.attr_map.get(art_attr) {
                    if let Some(v) = inst.attrs.get(local) {
                        let converted = reformulator.to_articulation_space(sq, local, v)?;
                        attrs.insert(art_attr.clone(), converted);
                    }
                }
            }
            rs.rows.push(ResultRow {
                id: inst.id,
                source: sq.source.clone(),
                local_class: inst.class,
                attrs,
            });
        }
    }
    rs.normalise();
    Ok(rs)
}

/// Convenience: plan + execute in one call.
pub fn execute(
    query: &Query,
    articulation: &Articulation,
    sources: &[&Ontology],
    conversions: &ConversionRegistry,
    wrappers: &[&dyn Wrapper],
) -> Result<ResultSet> {
    let plan = crate::plan::plan(query, articulation, sources, conversions)?;
    execute_plan(&plan, articulation, sources, conversions, wrappers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Value;
    use crate::kb::{Instance, KnowledgeBase};
    use crate::wrapper::InMemoryWrapper;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    /// Fig. 2 instance data: carrier prices in Dutch Guilders, factory
    /// prices in Pound Sterling.
    fn setup() -> (Ontology, Ontology, Articulation, InMemoryWrapper, InMemoryWrapper) {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();

        let mut ckb = KnowledgeBase::new("carrier");
        // 2203.71 NLG = 1000 EUR
        ckb.add(
            Instance::new("MyCar", "Cars")
                .with("Price", Value::Num(2203.71))
                .with("Owner", Value::Str("Mitra".into())),
        );
        ckb.add(Instance::new("suv1", "SUV").with("Price", Value::Num(22037.1))); // 10k EUR
        ckb.add(Instance::new("bike1", "Bicycles").with("Price", Value::Num(100.0))); // unmapped class

        let mut fkb = KnowledgeBase::new("factory");
        // 653.3 GBP = 1000 EUR
        fkb.add(Instance::new("pc7", "PassengerCar").with("Price", Value::Num(653.3)));
        fkb.add(Instance::new("truck9", "Truck").with("Price", Value::Num(6533.0))); // 10k EUR
        (c, f, art, InMemoryWrapper::new(ckb), InMemoryWrapper::new(fkb))
    }

    #[test]
    fn cross_source_query_with_currency_normalisation() {
        let (c, f, art, cw, fw) = setup();
        let conv = ConversionRegistry::standard();
        let q = Query::parse("find Vehicle(Price)").unwrap();
        let rs = execute(&q, &art, &[&c, &f], &conv, &[&cw, &fw]).unwrap();
        // MyCar, suv1, pc7, truck9 — bike1's class is unmapped
        assert_eq!(rs.len(), 4, "{rs}");
        let eur: BTreeMap<&str, f64> =
            rs.rows.iter().map(|r| (r.id.as_str(), r.attrs["Price"].as_num().unwrap())).collect();
        assert!((eur["MyCar"] - 1000.0).abs() < 1e-6, "guilders normalised to euro");
        assert!((eur["pc7"] - 1000.0).abs() < 1e-6, "sterling normalised to euro");
        assert!((eur["suv1"] - 10000.0).abs() < 1e-6);
        assert!((eur["truck9"] - 10000.0).abs() < 1e-6);
    }

    #[test]
    fn conditions_filter_across_metric_spaces() {
        let (c, f, art, cw, fw) = setup();
        let conv = ConversionRegistry::standard();
        // under 5000 EUR: MyCar (1000) and pc7 (1000) qualify
        let q = Query::parse("find Vehicle(Price) where Price < 5000").unwrap();
        let rs = execute(&q, &art, &[&c, &f], &conv, &[&cw, &fw]).unwrap();
        let ids: Vec<&str> = rs.rows.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, vec!["MyCar", "pc7"]);
    }

    #[test]
    fn pruned_sources_not_consulted() {
        let (c, f, _, cw, fw) = setup();
        // narrow articulation: only factory knows cargo carriers
        let rules =
            onion_rules::parse_rules("factory.CargoCarrier => transport.CargoCarrier\n").unwrap();
        let art = ArticulationGenerator::new().generate(&rules, &[&c, &f]).unwrap();
        let conv = ConversionRegistry::standard();
        let q = Query::all("CargoCarrier");
        let _ = execute(&q, &art, &[&c, &f], &conv, &[&cw, &fw]).unwrap();
        assert_eq!(cw.calls(), 0, "carrier wrapper untouched");
        assert_eq!(fw.calls(), 1);
    }

    #[test]
    fn string_attributes_pass_through() {
        let (c, f, art, cw, fw) = setup();
        let conv = ConversionRegistry::standard();
        let q = Query::parse("find Vehicle(Owner) where Owner = \"Mitra\"").unwrap();
        let rs = execute(&q, &art, &[&c, &f], &conv, &[&cw, &fw]).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].attrs["Owner"], Value::Str("Mitra".into()));
    }

    #[test]
    fn missing_wrapper_is_tolerated() {
        let (c, f, art, cw, _) = setup();
        let conv = ConversionRegistry::standard();
        let q = Query::parse("find Vehicle(Price)").unwrap();
        let rs = execute(&q, &art, &[&c, &f], &conv, &[&cw]).unwrap();
        // only carrier rows (factory offline)
        assert!(rs.rows.iter().all(|r| r.source == "carrier"));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn result_table_renders() {
        let (c, f, art, cw, fw) = setup();
        let conv = ConversionRegistry::standard();
        let q = Query::parse("find Vehicle(Price)").unwrap();
        let rs = execute(&q, &art, &[&c, &f], &conv, &[&cw, &fw]).unwrap();
        let table = rs.to_table(&["Price".to_string()]);
        assert!(table.contains("MyCar"));
        assert!(table.contains("1000"));
    }
}
