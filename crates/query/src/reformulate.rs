//! Query reformulation across the semantic bridges.
//!
//! A query names an articulation class (`transport.Vehicle`); each
//! source knows it by different local classes (`carrier.Cars`,
//! `factory.PassengerCar`, …). The reformulator follows the **directed**
//! implication structure — bridges plus articulation-internal
//! `SubclassOf` edges — to find, per source, every local class whose
//! instances are semantically instances of the queried class, plus the
//! attribute renamings and metric conversions the bridges record.

use std::collections::{HashMap, HashSet, VecDeque};

use onion_articulate::Articulation;
use onion_graph::{rel, LabelId, OntGraph};
use onion_ontology::Ontology;
use onion_rules::ConversionRegistry;

use crate::ast::{Condition, Query, Value};
use crate::{QueryError, Result};

/// Interned qualified-term key: `(ontology index, label id)`.
///
/// The implication structure used to be keyed by `format!("onto.Term")`
/// strings, paying an allocation plus a string hash per node per seed
/// on the reformulation hot path (ROADMAP "String seams remain at
/// crate boundaries"). Ontology names are now deduplicated into a
/// `u16` index and terms ride on each ontology's own interner ids;
/// terms that appear only in bridge text (never as a node of their
/// graph) get overflow ids above the interner range. Keys are built
/// once at [`Reformulator::new`] and every query-time lookup is id
/// hashing only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TermKey {
    onto: u16,
    label: u32,
}

/// Index of the articulation's namespace (always registered first).
const ART: u16 = 0;

#[inline]
fn key_of_label(onto: u16, lid: LabelId) -> TermKey {
    TermKey { onto, label: lid.index() as u32 }
}

/// A numeric conversion between a source metric space and the
/// articulation's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrConversion {
    /// Attribute (local vocabulary) the conversion applies to.
    pub local_attr: String,
    /// Function name: local → articulation space.
    pub to_articulation: String,
    /// Function name: articulation → local space (for condition
    /// pushdown), if registered.
    pub to_local: Option<String>,
}

/// The per-source reformulation of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReformulation {
    /// Source ontology name.
    pub source: String,
    /// Local classes whose instances answer the query.
    pub classes: Vec<String>,
    /// articulation attribute → local attribute.
    pub attr_map: HashMap<String, String>,
    /// Conversions for numeric attributes.
    pub conversions: Vec<AttrConversion>,
    /// Conditions rewritten into local vocabulary and metric space.
    pub conditions: Vec<Condition>,
}

/// Reformulates articulation-vocabulary queries for each source.
pub struct Reformulator<'a> {
    articulation: &'a Articulation,
    sources: Vec<&'a Ontology>,
    conversions: &'a ConversionRegistry,
    /// Ontology name → namespace index (articulation first).
    names: HashMap<String, u16>,
    /// Canonical graph per namespace (`None` for namespaces that only
    /// occur in bridge text).
    graphs: Vec<Option<&'a OntGraph>>,
    /// Per namespace: bridge-only terms → overflow ids (≥ the canonical
    /// interner's length, so they never collide with real label ids).
    overflow: Vec<HashMap<String, u32>>,
    /// term → directly implied terms (directed).
    implication: HashMap<TermKey, Vec<TermKey>>,
}

impl<'a> Reformulator<'a> {
    /// Builds a reformulator over an articulation and its sources.
    pub fn new(
        articulation: &'a Articulation,
        sources: Vec<&'a Ontology>,
        conversions: &'a ConversionRegistry,
    ) -> Self {
        let mut r = Reformulator {
            articulation,
            sources,
            conversions,
            names: HashMap::new(),
            graphs: Vec::new(),
            overflow: Vec::new(),
            implication: HashMap::new(),
        };
        let art_g = articulation.ontology.graph();
        r.add_namespace(articulation.name(), Some(art_g));
        for o in r.sources.clone() {
            r.add_namespace(o.name(), Some(o.graph()));
        }
        for b in &articulation.bridges {
            if b.label == rel::SI_BRIDGE {
                let s = r.intern_term(b.src.ontology.as_deref().unwrap_or(""), &b.src.name);
                let d = r.intern_term(b.dst.ontology.as_deref().unwrap_or(""), &b.dst.name);
                r.implication.entry(s).or_default().push(d);
            }
        }
        // articulation-internal subclass edges imply, on ids directly
        // (the articulation graph is its namespace's canonical graph)
        if let Some(sub) = art_g.label_id(rel::SUBCLASS_OF) {
            for (_, src, lid, dst) in art_g.edge_entries() {
                if lid == sub {
                    let s = key_of_label(ART, art_g.node_label_id(src).expect("live"));
                    let d = key_of_label(ART, art_g.node_label_id(dst).expect("live"));
                    r.implication.entry(s).or_default().push(d);
                }
            }
        }
        // source-local subclass edges also imply (an SUV is a Cars)
        for o in r.sources.clone() {
            let g = o.graph();
            let sub = g.label_id(rel::SUBCLASS_OF);
            let inst = g.label_id(rel::INSTANCE_OF);
            if sub.is_none() && inst.is_none() {
                continue;
            }
            let idx = r.names[o.name()];
            let canonical = r.graphs[idx as usize].map(|c| std::ptr::eq(c, g)).unwrap_or(false);
            for (_, src, lid, dst) in g.edge_entries() {
                if Some(lid) == sub || Some(lid) == inst {
                    let (s, d) = if canonical {
                        (
                            key_of_label(idx, g.node_label_id(src).expect("live")),
                            key_of_label(idx, g.node_label_id(dst).expect("live")),
                        )
                    } else {
                        // a sibling graph shares this namespace's name:
                        // translate through strings into the canonical space
                        (
                            r.intern_term(o.name(), g.node_label(src).expect("live")),
                            r.intern_term(o.name(), g.node_label(dst).expect("live")),
                        )
                    };
                    r.implication.entry(s).or_default().push(d);
                }
            }
        }
        r
    }

    /// Registers a namespace; the first registration of a name wins and
    /// provides the canonical graph.
    fn add_namespace(&mut self, name: &str, graph: Option<&'a OntGraph>) -> u16 {
        if let Some(&i) = self.names.get(name) {
            return i;
        }
        let i = self.graphs.len() as u16;
        self.names.insert(name.to_string(), i);
        self.graphs.push(graph);
        self.overflow.push(HashMap::new());
        i
    }

    /// Build-time interning of a possibly graph-less term.
    fn intern_term(&mut self, onto: &str, term: &str) -> TermKey {
        let idx = self.add_namespace(onto, None);
        if let Some(g) = self.graphs[idx as usize] {
            if let Some(lid) = g.label_id(term) {
                return key_of_label(idx, lid);
            }
        }
        let base = self.graphs[idx as usize].map(|g| g.interner().len() as u32).unwrap_or(0);
        let ov = &mut self.overflow[idx as usize];
        let next = base + ov.len() as u32;
        let label = *ov.entry(term.to_string()).or_insert(next);
        TermKey { onto: idx, label }
    }

    /// Query-time (read-only) key lookup.
    fn lookup_term(&self, idx: u16, term: &str) -> Option<TermKey> {
        if let Some(g) = self.graphs[idx as usize] {
            if let Some(lid) = g.label_id(term) {
                return Some(key_of_label(idx, lid));
            }
        }
        self.overflow[idx as usize].get(term).map(|&label| TermKey { onto: idx, label })
    }

    /// Key of a node's label: the fast path reuses the graph's own
    /// label id when the graph is its namespace's canonical graph.
    fn node_key(&self, idx: u16, g: &OntGraph, lid: LabelId) -> Option<TermKey> {
        match self.graphs[idx as usize] {
            Some(canon) if std::ptr::eq(canon, g) => Some(key_of_label(idx, lid)),
            _ => self.lookup_term(idx, g.resolve(lid)),
        }
    }

    /// Does a directed implication path lead from `from` to `to`?
    fn implies(&self, from: TermKey, to: TermKey) -> bool {
        if from == to {
            return true;
        }
        let mut seen: HashSet<TermKey> = HashSet::new();
        let mut q: VecDeque<TermKey> = VecDeque::new();
        q.push_back(from);
        while let Some(cur) = q.pop_front() {
            if let Some(nexts) = self.implication.get(&cur) {
                for &n in nexts {
                    if n == to {
                        return true;
                    }
                    if seen.insert(n) {
                        q.push_back(n);
                    }
                }
            }
        }
        false
    }

    /// Source labels whose term implies `target` — the shared kernel of
    /// [`Reformulator::local_classes`] and [`Reformulator::local_attr`],
    /// allocation-free per candidate node.
    fn implying_labels(&self, source: &Ontology, target: TermKey) -> Vec<String> {
        let Some(&idx) = self.names.get(source.name()) else { return Vec::new() };
        let g = source.graph();
        let mut out: Vec<String> = g
            .node_ids()
            .filter_map(|n| {
                let lid = g.node_label_id(n)?;
                match self.node_key(idx, g, lid) {
                    Some(key) if self.implies(key, target) => Some(g.resolve(lid).to_string()),
                    _ => None,
                }
            })
            .collect();
        out.sort();
        out
    }

    /// Local classes of `source` whose instances belong to the
    /// articulation class `class`.
    pub fn local_classes(&self, source: &Ontology, class: &str) -> Vec<String> {
        match self.lookup_term(ART, class) {
            Some(target) => self.implying_labels(source, target),
            None => Vec::new(),
        }
    }

    /// The local attribute of `source` corresponding to the articulation
    /// attribute `attr`: a local attribute term that implies (or is
    /// label-identical to) `transport.attr`.
    pub fn local_attr(&self, source: &Ontology, attr: &str) -> Option<String> {
        // prefer an explicit bridge
        if let Some(target) = self.lookup_term(ART, attr) {
            if let Some(b) = self.implying_labels(source, target).into_iter().next() {
                return Some(b);
            }
        }
        // fall back to identical labels (the common case: both call it Price)
        if source.defines(attr) {
            return Some(attr.to_string());
        }
        None
    }

    /// The metric conversion for `local_attr` in `source`, if its value
    /// space is bridged by a functional rule: the source records
    /// `attr -expressedIn-> Currency` and the articulation holds a
    /// functional bridge `source.Currency -[Fn]-> art.X`.
    pub fn conversion_for(&self, source: &Ontology, local_attr: &str) -> Option<AttrConversion> {
        let g = source.graph();
        let attr_node = g.node_by_label(local_attr)?;
        for metric in g.out_neighbors(attr_node, "expressedIn") {
            let metric_label = g.node_label(metric).expect("live");
            for b in &self.articulation.bridges {
                if b.kind == onion_articulate::BridgeKind::Functional
                    && b.src.in_ontology(source.name())
                    && b.src.name == metric_label
                {
                    let to_local = self
                        .conversions
                        .get(&b.label)
                        .and_then(|c| c.inverse_name())
                        .map(str::to_string);
                    return Some(AttrConversion {
                        local_attr: local_attr.to_string(),
                        to_articulation: b.label.clone(),
                        to_local,
                    });
                }
            }
        }
        None
    }

    /// Reformulates `query` for every source; sources without a mapped
    /// class are omitted (they cannot contribute answers).
    pub fn reformulate(&self, query: &Query) -> Result<Vec<SourceReformulation>> {
        if !self.articulation.ontology.defines(&query.class) {
            return Err(QueryError::UnknownClass(query.class.clone()));
        }
        let mut out = Vec::new();
        for source in &self.sources {
            let classes = self.local_classes(source, &query.class);
            if classes.is_empty() {
                continue;
            }
            let mut attr_map = HashMap::new();
            let mut conversions = Vec::new();
            let mut wanted: Vec<&str> = query.select.iter().map(String::as_str).collect();
            for c in &query.conditions {
                if !wanted.contains(&c.attr.as_str()) {
                    wanted.push(&c.attr);
                }
            }
            for attr in wanted {
                if let Some(local) = self.local_attr(source, attr) {
                    if let Some(conv) = self.conversion_for(source, &local) {
                        conversions.push(conv);
                    }
                    attr_map.insert(attr.to_string(), local);
                }
            }
            // rewrite conditions into local vocabulary + metric space
            let mut conditions = Vec::new();
            for c in &query.conditions {
                let Some(local) = attr_map.get(&c.attr) else {
                    // source lacks the attribute: condition can never hold
                    // (except !=); emit an impossible condition on the raw
                    // name so the wrapper filters everything out.
                    conditions.push(Condition::new(&c.attr, c.op, c.value.clone()));
                    continue;
                };
                let value = match (&c.value, self.conversion_value(&conversions, local)) {
                    (Value::Num(n), Some(conv)) => {
                        let fn_name = conv.to_local.as_deref().ok_or_else(|| {
                            QueryError::Conversion(format!(
                                "no inverse registered for {}",
                                conv.to_articulation
                            ))
                        })?;
                        let converted = self
                            .conversions
                            .apply(fn_name, *n)
                            .map_err(|e| QueryError::Conversion(e.to_string()))?;
                        Value::Num(converted)
                    }
                    (v, _) => v.clone(),
                };
                conditions.push(Condition::new(local, c.op, value));
            }
            out.push(SourceReformulation {
                source: source.name().to_string(),
                classes,
                attr_map,
                conversions,
                conditions,
            });
        }
        Ok(out)
    }

    fn conversion_value<'c>(
        &self,
        conversions: &'c [AttrConversion],
        local_attr: &str,
    ) -> Option<&'c AttrConversion> {
        conversions.iter().find(|c| c.local_attr == local_attr)
    }

    /// Converts a fetched local value into articulation space.
    pub fn to_articulation_space(
        &self,
        reform: &SourceReformulation,
        local_attr: &str,
        value: &Value,
    ) -> Result<Value> {
        match (value, reform.conversions.iter().find(|c| c.local_attr == local_attr)) {
            (Value::Num(n), Some(conv)) => {
                let converted = self
                    .conversions
                    .apply(&conv.to_articulation, *n)
                    .map_err(|e| QueryError::Conversion(e.to_string()))?;
                Ok(Value::Num(converted))
            }
            (v, _) => Ok(v.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    fn setup() -> (Ontology, Ontology, Articulation, ConversionRegistry) {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        (c, f, art, ConversionRegistry::standard())
    }

    #[test]
    fn local_classes_follow_bridges_and_subclasses() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        // transport.Vehicle: carrier.Cars bridged; carrier.SUV via local
        // subclass; carrier.MyCar via InstanceOf
        let lc = r.local_classes(&c, "Vehicle");
        assert!(lc.contains(&"Cars".to_string()), "{lc:?}");
        assert!(lc.contains(&"SUV".to_string()), "{lc:?}");
        // factory side: Vehicle equivalent, PassengerCar bridged, Truck via
        // subclass chain
        let lf = r.local_classes(&f, "Vehicle");
        assert!(lf.contains(&"Vehicle".to_string()), "{lf:?}");
        assert!(lf.contains(&"PassengerCar".to_string()), "{lf:?}");
        assert!(lf.contains(&"Truck".to_string()), "{lf:?}");
    }

    #[test]
    fn unknown_class_is_error() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        let q = Query::all("Spaceship");
        assert!(matches!(r.reformulate(&q), Err(QueryError::UnknownClass(_))));
    }

    #[test]
    fn attribute_falls_back_to_identical_label() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        assert_eq!(r.local_attr(&c, "Price"), Some("Price".to_string()));
        assert_eq!(r.local_attr(&c, "NoSuchAttr"), None);
    }

    #[test]
    fn conversion_found_for_priced_attributes() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        let cc = r.conversion_for(&c, "Price").expect("carrier price in guilders");
        assert_eq!(cc.to_articulation, "DGToEuroFn");
        assert_eq!(cc.to_local.as_deref(), Some("EuroToDGFn"));
        let cf = r.conversion_for(&f, "Price").expect("factory price in sterling");
        assert_eq!(cf.to_articulation, "PSToEuroFn");
    }

    #[test]
    fn conditions_pushed_down_in_local_metric() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        let q = Query::parse("find Vehicle(Price) where Price < 1000").unwrap();
        let reforms = r.reformulate(&q).unwrap();
        let carrier_side = reforms.iter().find(|x| x.source == "carrier").unwrap();
        // 1000 EUR pushed down in guilders: 1000 * 2.20371
        let pushed = carrier_side.conditions[0].value.as_num().unwrap();
        assert!((pushed - 2203.71).abs() < 1e-9, "pushed value {pushed}");
        let factory_side = reforms.iter().find(|x| x.source == "factory").unwrap();
        let pushed_f = factory_side.conditions[0].value.as_num().unwrap();
        assert!((pushed_f - 653.3).abs() < 1e-9, "pushed value {pushed_f}");
    }

    #[test]
    fn to_articulation_space_roundtrip() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        let q = Query::parse("find Vehicle(Price)").unwrap();
        let reforms = r.reformulate(&q).unwrap();
        let carrier_side = reforms.iter().find(|x| x.source == "carrier").unwrap();
        let eur = r.to_articulation_space(carrier_side, "Price", &Value::Num(2203.71)).unwrap();
        assert!((eur.as_num().unwrap() - 1000.0).abs() < 1e-9);
        // strings pass through
        let s = r.to_articulation_space(carrier_side, "Owner", &Value::Str("Ann".into())).unwrap();
        assert_eq!(s, Value::Str("Ann".into()));
    }

    #[test]
    fn sources_without_mapped_class_are_skipped() {
        let (c, f, art, conv) = setup();
        let r = Reformulator::new(&art, vec![&c, &f], &conv);
        // transport.Euro is an articulation term with no class instances
        // mapped in carrier (DutchGuilders implies Euro though!)
        let q = Query::all("CargoCarrier");
        let reforms = r.reformulate(&q).unwrap();
        // factory.CargoCarrier equivalent; carrier has Trucks =>
        // CargoCarrierVehicle but not CargoCarrier… depends on rules: the
        // conjunction bridged transport.CargoCarrierVehicle -> factory.*
        // but carrier.Trucks -> transport.CargoCarrierVehicle (not
        // CargoCarrier). So only factory contributes.
        assert!(reforms.iter().any(|x| x.source == "factory"));
    }
}
