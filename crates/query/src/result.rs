//! Query results in articulation vocabulary.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::Value;

/// One answer row.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Instance id (as known by its source).
    pub id: String,
    /// Which source answered.
    pub source: String,
    /// Local class the instance belongs to.
    pub local_class: String,
    /// Projected attributes, in articulation vocabulary and metric space.
    pub attrs: BTreeMap<String, Value>,
}

/// A merged result set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    /// The rows, ordered by (source, id).
    pub rows: Vec<ResultRow>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts rows by (source, id) for deterministic output.
    pub fn normalise(&mut self) {
        self.rows.sort_by(|a, b| (&a.source, &a.id).cmp(&(&b.source, &b.id)));
    }

    /// Renders an aligned text table with the given attribute columns.
    pub fn to_table(&self, columns: &[String]) -> String {
        let mut header: Vec<String> = vec!["id".into(), "source".into()];
        header.extend(columns.iter().cloned());
        let mut rows: Vec<Vec<String>> = vec![header];
        for r in &self.rows {
            let mut row = vec![r.id.clone(), r.source.clone()];
            for c in columns {
                row.push(r.attrs.get(c).map(|v| v.to_string()).unwrap_or_else(|| "-".into()));
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|i| rows.iter().map(|r| r[i].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (ri, row) in rows.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            out.push('\n');
            if ri == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
        }
        out
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut columns: Vec<String> = Vec::new();
        for r in &self.rows {
            for k in r.attrs.keys() {
                if !columns.contains(k) {
                    columns.push(k.clone());
                }
            }
        }
        write!(f, "{}", self.to_table(&columns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str, source: &str, price: f64) -> ResultRow {
        let mut attrs = BTreeMap::new();
        attrs.insert("Price".to_string(), Value::Num(price));
        ResultRow { id: id.into(), source: source.into(), local_class: "Cars".into(), attrs }
    }

    #[test]
    fn normalise_orders_rows() {
        let mut rs = ResultSet {
            rows: vec![
                row("b", "factory", 1.0),
                row("a", "carrier", 2.0),
                row("a", "factory", 3.0),
            ],
        };
        rs.normalise();
        let order: Vec<(&str, &str)> =
            rs.rows.iter().map(|r| (r.source.as_str(), r.id.as_str())).collect();
        assert_eq!(order, vec![("carrier", "a"), ("factory", "a"), ("factory", "b")]);
    }

    #[test]
    fn table_renders_aligned() {
        let rs = ResultSet { rows: vec![row("car1", "carrier", 4000.0)] };
        let t = rs.to_table(&["Price".to_string()]);
        assert!(t.contains("id"));
        assert!(t.contains("car1"));
        assert!(t.contains("4000"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn table_shows_dash_for_missing() {
        let rs = ResultSet { rows: vec![row("car1", "carrier", 4000.0)] };
        let t = rs.to_table(&["Owner".to_string()]);
        assert!(t.contains('-'));
    }
}
