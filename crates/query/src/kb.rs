//! In-memory knowledge bases — the reproduction's stand-in for the
//! external sources behind ONION's wrappers (KB1–KB3 in Fig. 1; see
//! DESIGN.md substitution table).

use std::collections::BTreeMap;

use crate::ast::{Condition, Value};

/// One individual with typed attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Identifier, unique within the knowledge base.
    pub id: String,
    /// Local class name (source-ontology vocabulary).
    pub class: String,
    /// Attribute values, keyed by local attribute name.
    pub attrs: BTreeMap<String, Value>,
}

impl Instance {
    /// Builds an instance.
    pub fn new(id: &str, class: &str) -> Self {
        Instance { id: id.to_string(), class: class.to_string(), attrs: BTreeMap::new() }
    }

    /// Adds an attribute value.
    pub fn with(mut self, attr: &str, value: Value) -> Self {
        self.attrs.insert(attr.to_string(), value);
        self
    }

    /// Does this instance satisfy `cond` (in local vocabulary)? Missing
    /// attributes fail every condition except `!=`.
    pub fn satisfies(&self, cond: &Condition) -> bool {
        match self.attrs.get(&cond.attr) {
            Some(v) => cond.op.eval(v, &cond.value),
            None => cond.op == crate::ast::CmpOp::Ne,
        }
    }
}

/// A per-source instance store.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    name: String,
    instances: Vec<Instance>,
}

impl KnowledgeBase {
    /// Empty KB for the source ontology `name`.
    pub fn new(name: &str) -> Self {
        KnowledgeBase { name: name.to_string(), instances: Vec::new() }
    }

    /// The source ontology this KB instantiates.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an instance.
    pub fn add(&mut self, instance: Instance) {
        self.instances.push(instance);
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// All instances (read-only).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Instances whose class is in `classes` and which satisfy every
    /// condition (local vocabulary).
    pub fn query(&self, classes: &[String], conditions: &[Condition]) -> Vec<&Instance> {
        self.instances
            .iter()
            .filter(|i| classes.iter().any(|c| c == &i.class))
            .filter(|i| conditions.iter().all(|c| i.satisfies(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new("carrier");
        kb.add(
            Instance::new("car1", "Cars")
                .with("Price", Value::Num(4000.0))
                .with("Owner", Value::Str("Ann".into())),
        );
        kb.add(Instance::new("car2", "Cars").with("Price", Value::Num(9000.0)));
        kb.add(Instance::new("suv1", "SUV").with("Price", Value::Num(15000.0)));
        kb
    }

    #[test]
    fn query_filters_by_class_and_condition() {
        let kb = kb();
        let cheap = kb.query(
            &["Cars".to_string()],
            &[Condition::new("Price", CmpOp::Lt, Value::Num(5000.0))],
        );
        assert_eq!(cheap.len(), 1);
        assert_eq!(cheap[0].id, "car1");
    }

    #[test]
    fn query_multiple_classes() {
        let kb = kb();
        let all = kb.query(&["Cars".to_string(), "SUV".to_string()], &[]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn missing_attribute_fails_conditions_except_ne() {
        let i = Instance::new("x", "C");
        assert!(!i.satisfies(&Condition::new("Price", CmpOp::Eq, Value::Num(1.0))));
        assert!(!i.satisfies(&Condition::new("Price", CmpOp::Lt, Value::Num(1.0))));
        assert!(i.satisfies(&Condition::new("Price", CmpOp::Ne, Value::Num(1.0))));
    }

    #[test]
    fn string_conditions() {
        let kb = kb();
        let anns = kb.query(
            &["Cars".to_string()],
            &[Condition::new("Owner", CmpOp::Eq, Value::Str("Ann".into()))],
        );
        assert_eq!(anns.len(), 1);
    }

    #[test]
    fn empty_class_list_matches_nothing() {
        let kb = kb();
        assert!(kb.query(&[], &[]).is_empty());
    }
}
