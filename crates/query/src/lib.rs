//! # onion-query
//!
//! The ONION query system (paper §2.3): "Interoperation of ontologies
//! forms the basis for querying their semantically meaningful
//! intersection … a traditional query engine, which takes a query
//! phrased in terms of an articulation ontology and derives an execution
//! plan against the sources involved. Given the semantic bridges,
//! however, query reformulation is often required."
//!
//! Pipeline:
//!
//! 1. a [`ast::Query`] names a class in the articulation ontology,
//!    attributes to return, and value conditions;
//! 2. [`reformulate`] maps the articulation class and attributes to each
//!    source's local vocabulary by following the semantic bridges, and
//!    collects the conversion functions needed for metric-space
//!    normalisation (§4.1: "The query processor will utilize these
//!    normalizations functions to transform terms to and from the
//!    articulation ontology in order to answer queries involving the
//!    prices of vehicles");
//! 3. [`plan()`] decides which sources to consult (those with a mapped
//!    class) and pushes converted conditions down;
//! 4. [`exec`] runs the per-source queries through [`wrapper`]s over
//!    [`kb`] fact stores and merges results in articulation vocabulary.

pub mod ast;
pub mod exec;
pub mod kb;
pub mod pattern_query;
pub mod plan;
pub mod reformulate;
pub mod result;
pub mod wrapper;

pub use ast::{CmpOp, Condition, Query, Value};
pub use exec::execute;
pub use kb::{Instance, KnowledgeBase};
pub use pattern_query::query_unified;
pub use plan::{plan, QueryPlan, SourceQuery};
pub use reformulate::Reformulator;
pub use result::{ResultRow, ResultSet};
pub use wrapper::{InMemoryWrapper, Wrapper};

/// Errors from the query system.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Syntax error in the textual query form.
    Parse(String),
    /// The queried class is unknown in the articulation ontology.
    UnknownClass(String),
    /// A conversion function was needed but not registered.
    Conversion(String),
    /// A wrapper failed to answer.
    Source(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(m) => write!(f, "query parse error: {m}"),
            QueryError::UnknownClass(c) => write!(f, "unknown articulation class {c:?}"),
            QueryError::Conversion(m) => write!(f, "conversion error: {m}"),
            QueryError::Source(m) => write!(f, "source error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;
