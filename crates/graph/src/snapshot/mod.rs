//! Sharded, immutable, share-everywhere frozen views of a graph.
//!
//! ONION's read traffic (query reformulation, closure, traversal)
//! vastly outweighs its write traffic (articulation maintenance), so
//! the concurrency model is snapshot isolation: writers mutate the live
//! [`OntGraph`] single-threaded as before, and readers run against a
//! [`ShardedSnapshot`] — an immutable frozen view that is `Send + Sync`
//! and can be traversed from any number of threads with zero locking.
//!
//! The frozen view is not one monolithic CSR but **N node-partitioned
//! shards** ([`SnapshotShard`]), node `n` owned by shard
//! `n.index() % N`. Sharding buys two things:
//!
//! * **incremental publish** — the live graph stamps a per-shard
//!   version on every mutation; [`SnapshotStore::publish`] rebuilds
//!   only the shards whose stamp changed and structurally shares the
//!   clean ones (`Arc`) with the previous epoch, so publish cost is
//!   `O(dirty shards)`, not `O(graph)`;
//! * **a natural unit of parallelism** — `onion-exec` fans traversal
//!   batches out shard-by-shard and splits single-root frontiers across
//!   the pool; cross-shard edges are mirrored into both endpoints'
//!   shards (out-entry at the source, in-entry at the target), so a
//!   traversal crosses shard boundaries by just following global ids.
//!
//! Node and edge-label ids are **preserved** from the source graph
//! ([`NodeId`]s index the same arena slots, [`LabelId`]s the same
//! interner entries), every per-node adjacency slice is sorted by
//! `(label, neighbour)` exactly as the monolithic snapshot sorted it,
//! and the shard partition is invisible to the read API — results are
//! byte-identical at every shard count, including `N = 1`.
//!
//! [`SnapshotStore`] holds the *current* snapshot behind an epoch
//! pointer and swaps it atomically on publish. [`SnapshotStore::load`]
//! is **mutex-free**: readers pin, clone the `Arc` out of an atomic
//! pointer, and unpin — three atomic ops, no lock — while publishers
//! serialise among themselves on a writer-side mutex and defer freeing
//! a replaced snapshot until no reader is mid-pin.

pub(crate) mod shard;

pub use shard::SnapshotShard;

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::graph::{NodeId, OntGraph};
use crate::label::{Interner, LabelId};
use crate::traverse::{Direction, EdgeFilter, ResolvedFilter};

/// Historical name of the frozen view, kept so call sites written
/// against the monolithic snapshot keep compiling; the build behind it
/// is sharded now.
pub type GraphSnapshot = ShardedSnapshot;

/// An immutable frozen view of an [`OntGraph`] at one epoch, stored as
/// node-partitioned shards (see the [module docs](self)).
///
/// Cheap to share (`Arc`, and clean shards are shared *between epochs*
/// too), safe to traverse from any thread, and guaranteed not to change
/// under a reader: mutations go to the live graph and become visible
/// only through the *next* snapshot.
#[derive(Debug, Clone)]
pub struct ShardedSnapshot {
    name: String,
    epoch: u64,
    graph_id: u64,
    interner: Arc<Interner>,
    shards: Vec<Arc<SnapshotShard>>,
    shard_count: usize,
    /// `log2(shard_count)` when the count is a power of two (the
    /// defaults are), letting the per-node-expansion owner lookup be a
    /// mask+shift instead of a runtime div/mod; `u32::MAX` otherwise.
    shard_shift: u32,
    /// `scratch_base[s]` = number of live nodes owned by shards `< s`:
    /// the offset of shard `s`'s dense segment in the snapshot-wide
    /// scratch index space (see [`ShardedSnapshot::dense_of`]).
    scratch_base: Vec<u32>,
    node_cap: usize,
    live_nodes: usize,
    live_edges: usize,
}

/// What one [`SnapshotStore::publish_stats`] did: how many shards were
/// rebuilt vs structurally shared with the previous epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishStats {
    /// Epoch assigned to the published snapshot.
    pub epoch: u64,
    /// Shards rebuilt because their version stamp changed (or no
    /// previous epoch was reusable).
    pub rebuilt: usize,
    /// Shards shared (`Arc`) from the previous epoch unchanged.
    pub reused: usize,
}

impl ShardedSnapshot {
    /// Freezes `g` at its configured shard count. Prefer
    /// [`OntGraph::snapshot`].
    pub fn of(g: &OntGraph) -> Self {
        let count = g.shard_count();
        let shards: Vec<Arc<SnapshotShard>> =
            (0..count).map(|s| Arc::new(SnapshotShard::build(g, s, count))).collect();
        Self::assemble(g, Arc::new(g.interner().clone()), shards, 0)
    }

    /// Freezes `g`, reusing every shard of `prev` whose version stamp
    /// still matches the live graph. Returns the snapshot and the
    /// rebuild/reuse split.
    fn of_incremental(g: &OntGraph, prev: &ShardedSnapshot, epoch: u64) -> (Self, PublishStats) {
        let count = g.shard_count();
        let comparable = prev.graph_id == g.graph_id() && prev.shard_count == count;
        let mut rebuilt = 0usize;
        let mut reused = 0usize;
        let shards: Vec<Arc<SnapshotShard>> = (0..count)
            .map(|s| {
                if comparable && prev.shards[s].version() == g.shard_version(s) {
                    reused += 1;
                    Arc::clone(&prev.shards[s])
                } else {
                    rebuilt += 1;
                    if onion_obs::enabled() {
                        let t = std::time::Instant::now();
                        let shard = Arc::new(SnapshotShard::build(g, s, count));
                        onion_obs::observe_us!(
                            "onion_publish_shard_rebuild_us",
                            t.elapsed().as_micros()
                        );
                        shard
                    } else {
                        Arc::new(SnapshotShard::build(g, s, count))
                    }
                }
            })
            .collect();
        // the interner is append-only, so same graph + same length
        // means identical content — share it too
        let interner = if prev.graph_id == g.graph_id() && prev.interner.len() == g.interner().len()
        {
            Arc::clone(&prev.interner)
        } else {
            Arc::new(g.interner().clone())
        };
        let snap = Self::assemble(g, interner, shards, epoch);
        (snap, PublishStats { epoch, rebuilt, reused })
    }

    fn assemble(
        g: &OntGraph,
        interner: Arc<Interner>,
        shards: Vec<Arc<SnapshotShard>>,
        epoch: u64,
    ) -> Self {
        let live_nodes = shards.iter().map(|s| s.live_nodes()).sum();
        let live_edges = shards.iter().map(|s| s.out_edges()).sum();
        let count = shards.len();
        let mut scratch_base = Vec::with_capacity(count);
        let mut base = 0u32;
        for s in &shards {
            scratch_base.push(base);
            base += s.live_nodes() as u32;
        }
        ShardedSnapshot {
            name: g.name().to_string(),
            epoch,
            graph_id: g.graph_id(),
            interner,
            shard_count: count,
            shard_shift: if count.is_power_of_two() { count.trailing_zeros() } else { u32::MAX },
            scratch_base,
            shards,
            node_cap: g.node_capacity(),
            live_nodes,
            live_edges,
        }
    }

    /// The source graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The store epoch this snapshot was published at (0 for snapshots
    /// taken directly via [`OntGraph::snapshot`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Identity of the graph this snapshot froze (see
    /// [`OntGraph::graph_id`]).
    pub fn graph_id(&self) -> u64 {
        self.graph_id
    }

    /// Number of shards the frozen view is partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning node `n`.
    #[inline]
    pub fn shard_of(&self, n: NodeId) -> usize {
        let idx = n.index();
        if self.shard_shift != u32::MAX {
            idx & (self.shard_count - 1)
        } else {
            idx % self.shard_count
        }
    }

    /// Read access to one frozen shard.
    pub fn shard(&self, s: usize) -> &SnapshotShard {
        &self.shards[s]
    }

    /// True if shard `s` of this snapshot is the same allocation as
    /// shard `s` of `other` (structural sharing across epochs).
    pub fn shares_shard_with(&self, other: &ShardedSnapshot, s: usize) -> bool {
        self.shard_count == other.shard_count && Arc::ptr_eq(&self.shards[s], &other.shards[s])
    }

    /// Number of live nodes at freeze time.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges at freeze time.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound (exclusive) for [`NodeId::index`], matching the
    /// source graph's [`OntGraph::node_capacity`] at freeze time.
    pub fn node_capacity(&self) -> usize {
        self.node_cap
    }

    /// Read access to the frozen interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Looks up a label id without interning.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.interner.get(label)
    }

    /// Resolves an interned label id to its string.
    pub fn resolve(&self, id: LabelId) -> &str {
        self.interner.resolve(id)
    }

    #[inline]
    fn shard_slot(&self, n: NodeId) -> (&SnapshotShard, usize) {
        let idx = n.index();
        if self.shard_shift != u32::MAX {
            (&self.shards[idx & (self.shard_count - 1)], idx >> self.shard_shift)
        } else {
            (&self.shards[idx % self.shard_count], idx / self.shard_count)
        }
    }

    // ------------------------------------------------------------------
    // dense scratch remap
    // ------------------------------------------------------------------

    /// Size of the **dense scratch** index space: one slot per live
    /// node, shard segments laid out consecutively. Traversal kernels
    /// size their visited stamps and frontier buffers by this instead
    /// of [`ShardedSnapshot::node_capacity`] — on a long-lived graph
    /// the capacity spans every tombstone ever allocated, while the
    /// dense space is exactly the live set, so per-query scratch stays
    /// proportional to the data it can actually touch.
    #[inline]
    pub fn scratch_len(&self) -> usize {
        self.live_nodes
    }

    /// The dense scratch index of a **live** node: its owning shard's
    /// segment offset plus its dense rank within that shard (the
    /// per-shard global→dense remap frozen at build time). The map is
    /// a bijection live nodes → `0..scratch_len()`; it says nothing
    /// about dead ids — callers must only pass nodes that were live at
    /// freeze time (traversal only ever reaches live nodes).
    #[inline]
    pub fn dense_of(&self, n: NodeId) -> usize {
        let idx = n.index();
        let (s, local) = if self.shard_shift != u32::MAX {
            (idx & (self.shard_count - 1), idx >> self.shard_shift)
        } else {
            (idx % self.shard_count, idx / self.shard_count)
        };
        let rank = self.shards[s].dense_local(local);
        debug_assert_ne!(rank, u32::MAX, "dense_of called on a dead node {n:?}");
        self.scratch_base[s] as usize + rank as usize
    }

    /// [`ShardedSnapshot::dense_of`] for possibly-dead ids: `None` for
    /// tombstones, unallocated slots, and out-of-range ids.
    #[inline]
    pub fn dense_of_checked(&self, n: NodeId) -> Option<usize> {
        if n.index() >= self.node_cap {
            return None;
        }
        let (shard, local) = self.shard_slot(n);
        let rank = shard.dense_local(local);
        if rank == u32::MAX {
            return None;
        }
        Some(self.scratch_base[shard.shard_index()] as usize + rank as usize)
    }

    /// True if `id` was a live node at freeze time.
    pub fn is_live_node(&self, id: NodeId) -> bool {
        let (shard, local) = self.shard_slot(id);
        shard.label_local(local).is_some()
    }

    /// The label of a (frozen-live) node.
    pub fn node_label(&self, id: NodeId) -> Option<&str> {
        self.node_label_id(id).map(|l| self.interner.resolve(l))
    }

    /// The interned label id of a (frozen-live) node.
    pub fn node_label_id(&self, id: NodeId) -> Option<LabelId> {
        let (shard, local) = self.shard_slot(id);
        shard.label_local(local)
    }

    /// The first live node carrying `label` (lowest id), if any.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let lid = self.interner.get(label)?;
        // each shard's per-label list ascends, so its head is the shard
        // minimum; the global minimum is the min over shard heads
        self.shards.iter().filter_map(|s| s.by_label(lid).first().copied()).min()
    }

    /// All live nodes carrying `label`, ascending by id (merged across
    /// shards).
    pub fn nodes_by_label(&self, label: &str) -> Vec<NodeId> {
        let Some(lid) = self.interner.get(label) else { return Vec::new() };
        let mut out: Vec<NodeId> =
            self.shards.iter().flat_map(|s| s.by_label(lid).iter().copied()).collect();
        out.sort_unstable();
        out
    }

    /// Iterates all frozen-live node ids, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_cap as u32).map(NodeId).filter(|&n| self.is_live_node(n))
    }

    #[inline]
    fn half_entries(&self, n: NodeId, out: bool) -> &[(LabelId, NodeId)] {
        let (shard, local) = self.shard_slot(n);
        shard.entries_local(local, out)
    }

    #[inline]
    fn half_labeled(&self, n: NodeId, label: LabelId, out: bool) -> &[(LabelId, NodeId)] {
        let all = self.half_entries(n, out);
        let lo = all.partition_point(|&(l, _)| l < label);
        let hi = lo + all[lo..].partition_point(|&(l, _)| l == label);
        &all[lo..hi]
    }

    /// The out-edges of `n` as sorted `(label, dst)` entries.
    pub fn out_entries(&self, n: NodeId) -> &[(LabelId, NodeId)] {
        self.half_entries(n, true)
    }

    /// The in-edges of `n` as sorted `(label, src)` entries.
    pub fn in_entries(&self, n: NodeId) -> &[(LabelId, NodeId)] {
        self.half_entries(n, false)
    }

    /// Out-neighbours of `n` via `label` edges (binary-searched run).
    pub fn out_neighbors_by_id(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.half_labeled(n, label, true).iter().map(|&(_, m)| m)
    }

    /// In-neighbours of `n` via `label` edges (binary-searched run).
    pub fn in_neighbors_by_id(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.half_labeled(n, label, false).iter().map(|&(_, m)| m)
    }

    /// Resolves an [`EdgeFilter`] against the frozen interner.
    pub fn resolve_filter(&self, filter: &EdgeFilter) -> ResolvedFilter {
        match filter {
            EdgeFilter::All => ResolvedFilter::All,
            EdgeFilter::Labels(ls) => {
                ResolvedFilter::Ids(ls.iter().filter_map(|l| self.interner.get(l)).collect())
            }
        }
    }

    /// Visits each admitted neighbour of `n` (the snapshot counterpart
    /// of the traversal kernel in [`crate::traverse`]). Neighbour ids
    /// are global, so following them crosses shard boundaries through
    /// the mirrored edge entries.
    #[inline]
    pub fn for_each_neighbor(
        &self,
        n: NodeId,
        dir: Direction,
        filter: &ResolvedFilter,
        mut f: impl FnMut(NodeId),
    ) {
        let fwd = matches!(dir, Direction::Forward | Direction::Both);
        let bwd = matches!(dir, Direction::Backward | Direction::Both);
        match filter {
            ResolvedFilter::All => {
                if fwd {
                    for &(_, m) in self.half_entries(n, true) {
                        f(m);
                    }
                }
                if bwd {
                    for &(_, m) in self.half_entries(n, false) {
                        f(m);
                    }
                }
            }
            ResolvedFilter::Ids(ids) if ids.len() == 1 => {
                if fwd {
                    for &(_, m) in self.half_labeled(n, ids[0], true) {
                        f(m);
                    }
                }
                if bwd {
                    for &(_, m) in self.half_labeled(n, ids[0], false) {
                        f(m);
                    }
                }
            }
            ResolvedFilter::Ids(ids) => {
                if fwd {
                    for &(lid, m) in self.half_entries(n, true) {
                        if ids.contains(&lid) {
                            f(m);
                        }
                    }
                }
                if bwd {
                    for &(lid, m) in self.half_entries(n, false) {
                        if ids.contains(&lid) {
                            f(m);
                        }
                    }
                }
            }
        }
    }

    /// Breadth-first order from `start` (inclusive) — deterministic:
    /// neighbours are visited in sorted `(label, id)` order. Visited
    /// stamps are dense-indexed ([`ShardedSnapshot::dense_of`]), so the
    /// scratch is sized to the live set, not the node capacity.
    pub fn bfs(&self, start: NodeId, dir: Direction, filter: &ResolvedFilter) -> Vec<NodeId> {
        let mut order = Vec::new();
        if !self.is_live_node(start) {
            return order;
        }
        let mut visited = vec![false; self.scratch_len()];
        visited[self.dense_of(start)] = true;
        order.push(start);
        let mut scan = 0;
        while scan < order.len() {
            let n = order[scan];
            scan += 1;
            self.for_each_neighbor(n, dir, filter, |m| {
                let d = self.dense_of(m);
                if !visited[d] {
                    visited[d] = true;
                    order.push(m);
                }
            });
        }
        order
    }

    /// Per-start closure runs: `runs[i]` holds the pairs `(starts[i],
    /// m)` for every `m` with a non-empty admitted path `starts[i] →*
    /// m`, in discovery order. One stamp vector serves all starts (the
    /// per-chunk scratch-sharing the parallel executor relies on); it
    /// is dense-indexed ([`ShardedSnapshot::dense_of`]), so its size is
    /// the live node count, not the arena capacity.
    pub fn closure_runs_from(
        &self,
        starts: &[NodeId],
        filter: &ResolvedFilter,
    ) -> Vec<Vec<(NodeId, NodeId)>> {
        let mut runs = Vec::with_capacity(starts.len());
        let mut stamp: Vec<u32> = vec![0; self.scratch_len()];
        let mut epoch: u32 = 0;
        let mut frontier: Vec<NodeId> = Vec::new();
        for &start in starts {
            let mut pairs = Vec::new();
            if !self.is_live_node(start) {
                runs.push(pairs);
                continue;
            }
            epoch += 1;
            frontier.clear();
            frontier.push(start);
            let mut scan = 0;
            // `start` is deliberately not pre-stamped so cycles back to
            // it are reported, matching `closure::transitive_pairs`
            while scan < frontier.len() {
                let n = frontier[scan];
                scan += 1;
                self.for_each_neighbor(n, Direction::Forward, filter, |m| {
                    let d = self.dense_of(m);
                    if stamp[d] != epoch {
                        stamp[d] = epoch;
                        pairs.push((start, m));
                        frontier.push(m);
                    }
                });
            }
            runs.push(pairs);
        }
        runs
    }

    /// All pairs `(s, m)` with a non-empty admitted path `s →* m`, for
    /// every start in `starts`, in `(starts order, discovery order)` —
    /// the flattened form of [`ShardedSnapshot::closure_runs_from`].
    pub fn closure_pairs_from(
        &self,
        starts: &[NodeId],
        filter: &ResolvedFilter,
    ) -> Vec<(NodeId, NodeId)> {
        self.closure_runs_from(starts, filter).into_iter().flatten().collect()
    }
}

impl OntGraph {
    /// Freezes the current state into an immutable, thread-shareable
    /// [`ShardedSnapshot`] at the graph's configured shard count
    /// (epoch 0; use a [`SnapshotStore`] for epoch management and
    /// incremental publish).
    pub fn snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot::of(self)
    }
}

/// Epoch-swapped holder of the current [`ShardedSnapshot`].
///
/// The read path is **mutex-free**: [`SnapshotStore::load`] pins
/// (`fetch_add`), reads the epoch pointer, bumps the `Arc`'s strong
/// count in place, and unpins — readers never block on a publisher and
/// never observe a torn snapshot; they keep their epoch for as long as
/// they hold the `Arc`. Publishers serialise among themselves on a
/// writer-side mutex (writes are rare), build the new snapshot
/// *outside* any reader-visible critical section, swap the pointer, and
/// **retire** the replaced snapshot: the store's count on it is
/// released only at a later moment when no reader is mid-pin (checked
/// without blocking on each publish, and unconditionally on drop).
/// Publish latency is therefore bounded — a publisher never waits on
/// readers; under continuous load traffic retired epochs just free a
/// beat later.
///
/// `publish` is **incremental**: only shards whose version stamp
/// changed since the previous epoch are rebuilt; clean shards are
/// shared structurally (see [`PublishStats`]).
#[derive(Debug)]
pub struct SnapshotStore {
    /// Owns one strong count of the current snapshot.
    current: AtomicPtr<ShardedSnapshot>,
    /// Readers mid-`load` (pinned); retired snapshots are freed only at
    /// moments when this is observed 0.
    pins: AtomicUsize,
    epoch: AtomicU64,
    /// Serialises publishers and holds the retired epochs (strong
    /// counts whose release is deferred past any in-flight pin); the
    /// read path never touches it.
    writer: Mutex<Vec<*mut ShardedSnapshot>>,
}

// SAFETY: the raw pointers in `current` and the retired list each own
// one strong count of an immutable (`Send + Sync`) snapshot; they are
// only swapped/freed under the writer mutex, and only at moments when
// no reader is inside the pin window.
unsafe impl Send for SnapshotStore {}
unsafe impl Sync for SnapshotStore {}

impl SnapshotStore {
    /// A store whose epoch-0 snapshot freezes `g`'s current state.
    pub fn new(g: &OntGraph) -> Self {
        let first: Arc<ShardedSnapshot> = Arc::new(g.snapshot());
        SnapshotStore {
            current: AtomicPtr::new(Arc::into_raw(first) as *mut ShardedSnapshot),
            pins: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            writer: Mutex::new(Vec::new()),
        }
    }

    /// The current snapshot — mutex-free (three atomic operations). The
    /// returned `Arc` stays valid (and unchanged) for as long as the
    /// caller holds it, regardless of later publishes.
    pub fn load(&self) -> Arc<ShardedSnapshot> {
        self.pins.fetch_add(1, Ordering::SeqCst);
        let p = self.current.load(Ordering::SeqCst);
        // SAFETY: `p` was the current snapshot at the load above; a
        // publisher that swapped it out concurrently waits for our pin
        // to clear before releasing its strong count, so `p` is alive
        // here and the increment hands us our own count.
        unsafe { Arc::increment_strong_count(p) };
        self.pins.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: consumes the strong count acquired above.
        unsafe { Arc::from_raw(p) }
    }

    /// The epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Freezes `g` and swaps it in as the new current snapshot,
    /// returning it. See [`SnapshotStore::publish_stats`] for the
    /// rebuild/reuse accounting.
    pub fn publish(&self, g: &OntGraph) -> Arc<ShardedSnapshot> {
        self.publish_stats(g).0
    }

    /// Incremental publish: rebuilds exactly the shards whose version
    /// stamps differ from the previous epoch's (all of them when the
    /// graph identity or shard count changed), bumps the epoch, and
    /// swaps the new snapshot in. The build happens before the swap, so
    /// readers always observe a fully built snapshot; concurrent
    /// publishers are serialised and the stored epoch sequence is
    /// strictly increasing.
    pub fn publish_stats(&self, g: &OntGraph) -> (Arc<ShardedSnapshot>, PublishStats) {
        let _span = onion_obs::span!("publish");
        let mut retired = self.writer.lock().expect("snapshot store writer lock");
        // SAFETY: only publishers swap/free `current` and we hold the
        // writer lock, so the pointer stays valid for this borrow.
        let prev = unsafe { &*self.current.load(Ordering::SeqCst) };
        let epoch = self.epoch.load(Ordering::SeqCst) + 1;
        let (snap, stats) = ShardedSnapshot::of_incremental(g, prev, epoch);
        let snap = Arc::new(snap);
        let fresh = Arc::into_raw(Arc::clone(&snap)) as *mut ShardedSnapshot;
        self.epoch.store(epoch, Ordering::SeqCst);
        let old = self.current.swap(fresh, Ordering::SeqCst);
        // a reader may still be inside its pin window holding `old`
        // raw; defer releasing the store's count instead of blocking
        retired.push(old);
        onion_obs::count!("onion_publish_total");
        onion_obs::count!("onion_publish_shards_rebuilt_total", stats.rebuilt);
        onion_obs::count!("onion_publish_shards_reused_total", stats.reused);
        onion_obs::gauge_set!("onion_publish_retired_depth", retired.len());
        Self::reclaim(&self.pins, &mut retired);
        drop(retired);
        (snap, stats)
    }

    /// Frees retired epochs if a moment with zero pinned readers can be
    /// observed within a short bounded retry (a pin window is three
    /// atomic ops, so under any non-adversarial load a gap appears
    /// almost immediately). Never blocks unboundedly: if readers stay
    /// continuously pinned, the epochs remain retired for the next
    /// publish (their unique memory is only their *rebuilt* shards —
    /// clean shards are shared with the live snapshot) and are freed at
    /// the latest when the store drops.
    fn reclaim(pins: &AtomicUsize, retired: &mut Vec<*mut ShardedSnapshot>) {
        if retired.is_empty() {
            return;
        }
        for _ in 0..64 {
            // at any instant with zero pinned readers, every
            // earlier-loaded raw pointer has been secured with its own
            // strong count, so the retired epochs can go
            if pins.load(Ordering::SeqCst) == 0 {
                for p in retired.drain(..) {
                    // SAFETY: releases the store's own strong count;
                    // the pins==0 observation above rules out a reader
                    // that loaded `p` but has not incremented yet, and
                    // `p` can never be loaded again (it is no longer
                    // `current`).
                    unsafe { drop(Arc::from_raw(p)) };
                }
                return;
            }
            onion_obs::count!("onion_publish_pin_waits_total");
            std::hint::spin_loop();
        }
    }
}

impl Drop for SnapshotStore {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no reader or publisher is active;
        // release the store's strong counts on the current snapshot and
        // every retired epoch whose reclaim was deferred.
        let p = *self.current.get_mut();
        unsafe { drop(Arc::from_raw(p)) };
        for p in self.writer.get_mut().expect("snapshot store writer lock").drain(..) {
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    fn hierarchy() -> OntGraph {
        let mut g = OntGraph::new("t");
        for (a, b) in [("SUV", "Car"), ("Car", "Vehicle"), ("Truck", "Vehicle")] {
            g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
        }
        g.ensure_edge_by_labels("Price", rel::ATTRIBUTE_OF, "Car").unwrap();
        g
    }

    #[test]
    fn snapshot_mirrors_counts_ids_and_labels() {
        let g = hierarchy();
        let s = g.snapshot();
        assert_eq!(s.node_count(), g.node_count());
        assert_eq!(s.edge_count(), g.edge_count());
        assert_eq!(s.node_capacity(), g.node_capacity());
        for n in g.node_ids() {
            assert_eq!(s.node_label(n), g.node_label(n));
            assert_eq!(s.node_label_id(n), g.node_label_id(n));
        }
        assert_eq!(s.node_by_label("Car"), g.node_by_label("Car"));
        assert_eq!(s.nodes_by_label("Car"), g.nodes_by_label("Car"));
    }

    #[test]
    fn snapshot_adjacency_agrees_with_graph_at_every_shard_count() {
        for count in [1usize, 2, 7, 64] {
            let mut g = hierarchy();
            g.set_shard_count(count);
            let s = g.snapshot();
            assert_eq!(s.shard_count(), count);
            let sub = g.label_id(rel::SUBCLASS_OF).unwrap();
            for n in g.node_ids() {
                let mut from_g: Vec<NodeId> = g.out_neighbors_by_id(n, sub).collect();
                from_g.sort_unstable();
                let from_s: Vec<NodeId> = s.out_neighbors_by_id(n, sub).collect();
                assert_eq!(from_s, from_g, "shards={count}");
                let mut in_g: Vec<NodeId> = g.in_neighbors_by_id(n, sub).collect();
                in_g.sort_unstable();
                let in_s: Vec<NodeId> = s.in_neighbors_by_id(n, sub).collect();
                assert_eq!(in_s, in_g, "shards={count}");
                assert_eq!(s.out_entries(n).len(), g.out_degree(n));
                assert_eq!(s.in_entries(n).len(), g.in_degree(n));
            }
        }
    }

    #[test]
    fn shard_counts_produce_identical_reads() {
        let mut g = hierarchy();
        g.set_shard_count(1);
        let mono = g.snapshot();
        let root = g.node_by_label("Vehicle").unwrap();
        let rf = mono.resolve_filter(&EdgeFilter::label(rel::SUBCLASS_OF));
        let starts: Vec<NodeId> = mono.node_ids().collect();
        let want_bfs = mono.bfs(root, Direction::Backward, &rf);
        let want_pairs = mono.closure_pairs_from(&starts, &rf);
        for count in [2usize, 7, 64] {
            g.set_shard_count(count);
            let s = g.snapshot();
            assert_eq!(s.bfs(root, Direction::Backward, &rf), want_bfs, "shards={count}");
            assert_eq!(s.closure_pairs_from(&starts, &rf), want_pairs, "shards={count}");
            assert_eq!(s.node_ids().collect::<Vec<_>>(), mono.node_ids().collect::<Vec<_>>());
        }
    }

    #[test]
    fn snapshot_excludes_tombstones() {
        let mut g = hierarchy();
        g.delete_node_by_label("Car").unwrap();
        let s = g.snapshot();
        assert_eq!(s.node_count(), g.node_count());
        assert_eq!(s.edge_count(), g.edge_count());
        assert!(s.node_by_label("Car").is_none());
        let dead = g.node_capacity(); // capacity spans tombstones too
        assert_eq!(s.node_capacity(), dead);
        assert_eq!(s.node_ids().count(), g.node_count());
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let mut g = hierarchy();
        let s = g.snapshot();
        g.delete_node_by_label("Vehicle").unwrap();
        g.ensure_edge_by_labels("Bike", rel::SUBCLASS_OF, "Car").unwrap();
        // the frozen view still sees the original graph
        assert!(s.node_by_label("Vehicle").is_some());
        assert!(s.node_by_label("Bike").is_none());
        let car = s.node_by_label("Car").unwrap();
        let sub = s.label_id(rel::SUBCLASS_OF).unwrap();
        let parents: Vec<_> = s.out_neighbors_by_id(car, sub).collect();
        assert_eq!(parents, vec![s.node_by_label("Vehicle").unwrap()]);
    }

    #[test]
    fn bfs_on_snapshot_matches_graph_bfs_as_set() {
        let g = hierarchy();
        let s = g.snapshot();
        let root = g.node_by_label("Vehicle").unwrap();
        let rf = s.resolve_filter(&EdgeFilter::label(rel::SUBCLASS_OF));
        let from_s = s.bfs(root, Direction::Backward, &rf);
        let from_g = crate::traverse::bfs(
            &g,
            root,
            Direction::Backward,
            &EdgeFilter::label(rel::SUBCLASS_OF),
        );
        let mut a = from_s.clone();
        let mut b = from_g.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(from_s.len(), 4, "Vehicle, Car, Truck, SUV");
    }

    #[test]
    fn closure_pairs_match_transitive_pairs() {
        let g = hierarchy();
        let s = g.snapshot();
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);
        let starts: Vec<NodeId> = s.node_ids().collect();
        let mut from_s = s.closure_pairs_from(&starts, &s.resolve_filter(&filter));
        from_s.sort_unstable();
        let mut from_g: Vec<(NodeId, NodeId)> =
            crate::closure::transitive_pairs(&g, &filter).into_iter().collect();
        from_g.sort_unstable();
        assert_eq!(from_s, from_g);
    }

    #[test]
    fn store_epochs_advance_and_old_readers_keep_their_view() {
        let mut g = hierarchy();
        let store = SnapshotStore::new(&g);
        assert_eq!(store.epoch(), 0);
        let before = store.load();
        g.ensure_edge_by_labels("Bike", rel::SUBCLASS_OF, "Vehicle").unwrap();
        let after = store.publish(&g);
        assert_eq!(store.epoch(), 1);
        assert_eq!(after.epoch(), 1);
        assert_eq!(before.epoch(), 0);
        assert!(before.node_by_label("Bike").is_none(), "old epoch untouched");
        assert!(after.node_by_label("Bike").is_some());
        assert_eq!(store.load().epoch(), 1);
    }

    #[test]
    fn incremental_publish_rebuilds_only_dirty_shards() {
        let mut g = OntGraph::new("t");
        g.set_shard_count(4);
        // nodes 0..8 spread round-robin across the 4 shards
        for i in 0..8 {
            g.add_node(&format!("N{i}")).unwrap();
        }
        let store = SnapshotStore::new(&g);
        let before = store.load();
        // a self-loop on node 0 touches only shard 0
        let n0 = g.node_by_label("N0").unwrap();
        g.add_edge(n0, "loop", n0).unwrap();
        let (after, stats) = store.publish_stats(&g);
        assert_eq!(stats, PublishStats { epoch: 1, rebuilt: 1, reused: 3 });
        for s in 1..4 {
            assert!(after.shares_shard_with(&before, s), "clean shard {s} shared");
        }
        assert!(!after.shares_shard_with(&before, 0));
        assert_eq!(after.edge_count(), 1);
        // an untouched publish reuses everything
        let (_, stats) = store.publish_stats(&g);
        assert_eq!((stats.rebuilt, stats.reused), (0, 4));
    }

    #[test]
    fn publish_after_shard_count_change_or_clone_rebuilds_fully() {
        let mut g = hierarchy();
        let store = SnapshotStore::new(&g);
        g.set_shard_count(2);
        let (_, stats) = store.publish_stats(&g);
        assert_eq!(stats.rebuilt, 2, "count change invalidates everything");
        // a clone has a fresh identity: its versions are not comparable
        let clone = g.clone();
        let (_, stats) = store.publish_stats(&clone);
        assert_eq!(stats.rebuilt, 2);
        assert_eq!(stats.reused, 0);
    }

    #[test]
    fn cross_shard_edges_are_mirrored_into_both_shards() {
        let mut g = OntGraph::new("t");
        g.set_shard_count(2);
        let a = g.add_node("A").unwrap(); // shard 0
        let b = g.add_node("B").unwrap(); // shard 1
        g.add_edge(a, "S", b).unwrap();
        let s = g.snapshot();
        let lid = s.label_id("S").unwrap();
        // out-entry lives in A's shard, in-entry in B's shard
        assert_eq!(s.shard_of(a), 0);
        assert_eq!(s.shard_of(b), 1);
        assert_eq!(s.out_neighbors_by_id(a, lid).collect::<Vec<_>>(), vec![b]);
        assert_eq!(s.in_neighbors_by_id(b, lid).collect::<Vec<_>>(), vec![a]);
        assert_eq!(s.shard(0).out_edges(), 1);
        assert_eq!(s.shard(1).out_edges(), 0);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn dense_remap_is_a_bijection_over_live_nodes() {
        let mut g = hierarchy();
        g.ensure_edge_by_labels("Bike", rel::SUBCLASS_OF, "Vehicle").unwrap();
        g.delete_node_by_label("Truck").unwrap(); // leave a tombstone
        for count in [1usize, 2, 7, 64] {
            g.set_shard_count(count);
            let s = g.snapshot();
            assert_eq!(s.scratch_len(), s.node_count(), "shards={count}");
            let mut seen = vec![false; s.scratch_len()];
            for n in s.node_ids() {
                let d = s.dense_of(n);
                assert_eq!(Some(d), s.dense_of_checked(n));
                assert!(!seen[d], "dense index {d} assigned twice (shards={count})");
                seen[d] = true;
            }
            assert!(seen.iter().all(|&b| b), "every dense slot covered (shards={count})");
            // dead and out-of-range ids have no dense slot
            let dead = g.node_capacity() as u32;
            assert_eq!(s.dense_of_checked(NodeId(dead)), None);
            let truck_slot =
                (0..g.node_capacity() as u32).map(NodeId).find(|&n| !s.is_live_node(n)).unwrap();
            assert_eq!(s.dense_of_checked(truck_slot), None);
        }
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedSnapshot>();
        assert_send_sync::<SnapshotShard>();
        assert_send_sync::<SnapshotStore>();
    }

    #[test]
    fn concurrent_loads_survive_publish_churn() {
        use std::sync::atomic::AtomicBool;
        let mut g = hierarchy();
        let store = Arc::new(SnapshotStore::new(&g));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.load();
                        // epochs only move forward and the snapshot is coherent
                        assert!(snap.epoch() >= last);
                        assert_eq!(snap.node_ids().count(), snap.node_count());
                        last = snap.epoch();
                    }
                })
            })
            .collect();
        for i in 0..200 {
            g.ensure_edge_by_labels(&format!("X{i}"), rel::SUBCLASS_OF, "Vehicle").unwrap();
            store.publish(&g);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.epoch(), 200);
        assert_eq!(store.load().node_count(), g.node_count());
    }
}
