//! Per-shard CSR build: the unit of incremental publish.
//!
//! A [`SnapshotShard`] freezes the slice of an
//! [`OntGraph`](crate::OntGraph) its shard owns — nodes with
//! `index() % shard_count == shard` — as two compressed-sparse-row
//! halves (out- and in-adjacency) plus the shard-local label index.
//! Neighbour entries carry **global** [`NodeId`]s, so an edge whose
//! endpoints live in different shards is *mirrored*: its out-entry sits
//! in the source's shard, its in-entry in the target's shard, and a
//! traversal crosses the boundary by simply following the global id
//! into the neighbouring shard's slice. Every per-node entry list is
//! sorted by `(label, neighbour)` — exactly the invariant the
//! monolithic snapshot maintained — which is what makes results
//! byte-identical across shard counts.
//!
//! Building one shard costs `O(owned nodes + their incident edges)` and
//! touches nothing outside the shard, so a publish that finds `k` dirty
//! shards does `k/N` of a full freeze (see
//! [`SnapshotStore::publish`](crate::SnapshotStore::publish)).

use crate::graph::{NodeId, OntGraph};
use crate::hash::FxHashMap;
use crate::label::LabelId;

/// One CSR half, locally indexed: `start[local]..start[local + 1]`
/// spans the `(label, neighbour)` entries of the shard's `local`-th
/// owned slot, sorted by label then neighbour id.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    start: Vec<u32>,
    adj: Vec<(LabelId, NodeId)>,
}

impl Csr {
    #[inline]
    pub(crate) fn entries(&self, local: usize) -> &[(LabelId, NodeId)] {
        match self.start.get(local..local + 2) {
            Some(w) => &self.adj[w[0] as usize..w[1] as usize],
            None => &[],
        }
    }

    #[inline]
    fn total(&self) -> usize {
        self.adj.len()
    }
}

/// Number of arena slots a shard owns under `cap` total slots.
#[inline]
pub(crate) fn owned_slots(cap: usize, shard: usize, count: usize) -> usize {
    if cap > shard {
        (cap - shard - 1) / count + 1
    } else {
        0
    }
}

/// An immutable frozen view of one shard's slice of the graph.
///
/// Shards are shared by `Arc` between consecutive
/// [`ShardedSnapshot`](crate::ShardedSnapshot) epochs: a publish reuses
/// every shard whose [`version`](SnapshotShard::version) still matches
/// the live graph's and rebuilds only the dirty ones.
#[derive(Debug)]
pub struct SnapshotShard {
    shard: usize,
    /// Per owned slot (local index): the node's label, `None` for
    /// tombstones and never-allocated tail slots.
    labels: Vec<Option<LabelId>>,
    /// Per owned slot: the node's **dense rank** among the shard's live
    /// nodes (ascending by local slot, so ranks follow id order within
    /// the shard); `u32::MAX` for tombstones and unallocated tail
    /// slots. This is the per-shard global→dense remap the traversal
    /// kernels use to size visited stamps and frontier scratch to live
    /// nodes instead of `node_capacity` (see
    /// [`ShardedSnapshot::dense_of`](crate::ShardedSnapshot::dense_of)).
    dense: Vec<u32>,
    out: Csr,
    inc: Csr,
    /// Owned live nodes per label, ascending by global id.
    by_label: FxHashMap<LabelId, Vec<NodeId>>,
    live_nodes: usize,
    version: u64,
}

impl SnapshotShard {
    /// Freezes shard `shard` of `count` from `g`, stamping it with the
    /// graph's current version for that shard.
    pub(crate) fn build(g: &OntGraph, shard: usize, count: usize) -> Self {
        let cap = g.node_capacity();
        let owned = owned_slots(cap, shard, count);
        let mut labels: Vec<Option<LabelId>> = vec![None; owned];
        let mut dense: Vec<u32> = vec![u32::MAX; owned];
        let mut by_label: FxHashMap<LabelId, Vec<NodeId>> = FxHashMap::default();
        let mut live_nodes = 0usize;
        for local in 0..owned {
            let n = NodeId((shard + local * count) as u32);
            if let Some(lid) = g.node_label_id(n) {
                labels[local] = Some(lid);
                dense[local] = live_nodes as u32;
                by_label.entry(lid).or_default().push(n);
                live_nodes += 1;
            }
        }
        let out = Self::build_csr(g, shard, count, owned, true);
        let inc = Self::build_csr(g, shard, count, owned, false);
        SnapshotShard {
            shard,
            labels,
            dense,
            out,
            inc,
            by_label,
            live_nodes,
            version: g.shard_version(shard),
        }
    }

    fn build_csr(g: &OntGraph, shard: usize, count: usize, owned: usize, out: bool) -> Csr {
        let mut start = vec![0u32; owned + 1];
        for local in 0..owned {
            let n = NodeId((shard + local * count) as u32);
            let degree = if !g.is_live_node(n) {
                0
            } else if out {
                g.out_degree(n)
            } else {
                g.in_degree(n)
            };
            start[local + 1] = start[local] + degree as u32;
        }
        let mut adj = vec![(LabelId(0), NodeId(0)); start[owned] as usize];
        for local in 0..owned {
            let n = NodeId((shard + local * count) as u32);
            let range = start[local] as usize..start[local + 1] as usize;
            let slot = &mut adj[range];
            if slot.is_empty() {
                continue;
            }
            if out {
                for (dst, (_, lid, other)) in slot.iter_mut().zip(g.out_edge_entries(n)) {
                    *dst = (lid, other);
                }
            } else {
                for (dst, (_, lid, other)) in slot.iter_mut().zip(g.in_edge_entries(n)) {
                    *dst = (lid, other);
                }
            }
            // the per-node (label, neighbour) sort is the invariant that
            // makes traversal order shard-count independent
            slot.sort_unstable();
        }
        Csr { start, adj }
    }

    /// The shard's index within its snapshot.
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    /// The graph shard-version this shard was frozen at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live nodes owned by this shard.
    pub fn live_nodes(&self) -> usize {
        self.live_nodes
    }

    /// Live edges whose **source** this shard owns (summing this over
    /// all shards counts every edge exactly once).
    pub fn out_edges(&self) -> usize {
        self.out.total()
    }

    #[inline]
    pub(crate) fn label_local(&self, local: usize) -> Option<LabelId> {
        self.labels.get(local).copied().flatten()
    }

    /// The dense rank of the shard's `local`-th slot among its live
    /// nodes, or `u32::MAX` for a tombstone / unallocated slot.
    #[inline]
    pub(crate) fn dense_local(&self, local: usize) -> u32 {
        self.dense.get(local).copied().unwrap_or(u32::MAX)
    }

    #[inline]
    pub(crate) fn entries_local(&self, local: usize, out: bool) -> &[(LabelId, NodeId)] {
        if out {
            self.out.entries(local)
        } else {
            self.inc.entries(local)
        }
    }

    #[inline]
    pub(crate) fn by_label(&self, lid: LabelId) -> &[NodeId] {
        self.by_label.get(&lid).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_slots_partition_the_capacity() {
        for cap in [0usize, 1, 7, 8, 63, 64, 65, 1000] {
            for count in [1usize, 2, 7, 64] {
                let total: usize = (0..count).map(|s| owned_slots(cap, s, count)).sum();
                assert_eq!(total, cap, "cap={cap} count={count}");
            }
        }
    }

    #[test]
    fn owned_slots_are_stable_under_growth() {
        // adding one slot grows exactly the shard that owns it
        for cap in 0usize..130 {
            for count in [2usize, 7] {
                for s in 0..count {
                    let before = owned_slots(cap, s, count);
                    let after = owned_slots(cap + 1, s, count);
                    if s == cap % count {
                        assert_eq!(after, before + 1);
                    } else {
                        assert_eq!(after, before);
                    }
                }
            }
        }
    }
}
