//! Graphviz DOT export — the reproduction's stand-in for the ONION
//! viewer's rendered ontology graphs (paper §2.2, Fig. 2).

use std::fmt::Write as _;

use crate::graph::OntGraph;

/// Rendering options for DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the `digraph` header (sanitised).
    pub name: Option<String>,
    /// Map well-known relationship labels to short forms (`SubclassOf`→`S`
    /// etc.) as in Fig. 2 of the paper.
    pub abbreviate_relations: bool,
    /// Emit `rankdir=BT` so subclass hierarchies point upward.
    pub bottom_to_top: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions { name: None, abbreviate_relations: true, bottom_to_top: true }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn abbreviate(label: &str) -> &str {
    match label {
        "SubclassOf" => "S",
        "AttributeOf" => "A",
        "InstanceOf" => "I",
        "SemanticImplication" => "SI",
        other => other,
    }
}

/// Renders `g` as a Graphviz `digraph`.
pub fn to_dot(g: &OntGraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let name = opts.name.clone().unwrap_or_else(|| g.name().to_string());
    let name: String = name.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
    let _ = writeln!(out, "digraph {name} {{");
    if opts.bottom_to_top {
        let _ = writeln!(out, "  rankdir=BT;");
    }
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for n in g.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n.id.index(), escape(n.label));
    }
    for e in g.edges() {
        let label = if opts.abbreviate_relations { abbreviate(e.label) } else { e.label };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.src.index(),
            e.dst.index(),
            escape(label)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = OntGraph::new("carrier");
        g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Vehicle").unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("digraph carrier {"));
        assert!(dot.contains("label=\"Car\""));
        assert!(dot.contains("label=\"Vehicle\""));
        assert!(dot.contains("label=\"S\""), "SubclassOf abbreviated to S as in Fig. 2");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_without_abbreviation() {
        let mut g = OntGraph::new("g");
        g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Vehicle").unwrap();
        let opts = DotOptions { abbreviate_relations: false, ..Default::default() };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("label=\"SubclassOf\""));
    }

    #[test]
    fn dot_escapes_quotes_and_sanitises_name() {
        let mut g = OntGraph::new("my graph!");
        g.add_node("He said \"hi\"").unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.contains("digraph my_graph_ {"));
        assert!(dot.contains("\\\"hi\\\""));
    }

    #[test]
    fn dot_skips_tombstones() {
        let mut g = OntGraph::new("g");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.delete_node_by_label("A").unwrap();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(!dot.contains("label=\"A\""));
        assert!(!dot.contains("->"));
    }
}
