//! Graph patterns (§3 of the paper).
//!
//! A pattern `P = (N', E')` is itself a small labeled graph; it *matches
//! into* a graph `G` when a total mapping `f` from pattern nodes to graph
//! nodes preserves node labels and maps every pattern edge onto a graph
//! edge with the same label. Pattern nodes may be wildcards and may carry
//! **variables** that capture the matched graph node, as in the paper's
//! `truck(O: owner, model)` example where `O` binds the truck-owner object.
//!
//! Two textual notations from the paper are parsed by [`Pattern::parse`]:
//!
//! * **path** notation `carrier:car:driver` — each step has an outgoing
//!   edge (any label) to the next;
//! * **attribute** notation `truck(O: owner, model)` — the parenthesised
//!   terms are attributes of the head (edges labeled `AttributeOf` *into*
//!   the head, matching the edge direction of Fig. 2); `{}` may be used in
//!   place of `()` for hierarchical objects.
//!
//! An explicit-edge notation `car -SubclassOf-> vehicle` (and the reverse
//! `vehicle <-SubclassOf- car`) is also accepted: the paper leaves the
//! full query syntax to its citation \[18\], and rules need edge-labeled
//! patterns.

use crate::error::GraphError;
use crate::rel;
use crate::Result;

/// Constraint on the label of a pattern node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeConstraint {
    /// Node label must equal (or be equivalent to, under fuzzy matching)
    /// this string.
    Label(String),
    /// Matches any node.
    Any,
}

/// Constraint on the label of a pattern edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeConstraint {
    /// Edge label must equal (or be equivalent to) this string.
    Label(String),
    /// Matches an edge with any label.
    Any,
}

/// A node of a pattern, optionally binding a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Label constraint.
    pub constraint: NodeConstraint,
    /// Variable name capturing the matched graph node, if any.
    pub var: Option<String>,
}

/// A directed edge of a pattern between node indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternEdge {
    /// Index of the source pattern node.
    pub src: usize,
    /// Index of the target pattern node.
    pub dst: usize,
    /// Edge-label constraint.
    pub constraint: EdgeConstraint,
}

/// A graph pattern `P = (N', E')`.
///
/// ```
/// use onion_graph::{Matcher, OntGraph, Pattern};
///
/// let mut g = OntGraph::new("g");
/// g.ensure_edge_by_labels("Owner", "AttributeOf", "Trucks").unwrap();
/// g.ensure_edge_by_labels("Model", "AttributeOf", "Trucks").unwrap();
///
/// // the paper's §3 notation: truck(O: owner, model)
/// let p = Pattern::parse("Trucks(O: Owner, Model)").unwrap();
/// let matches = Matcher::new(&g).find_all(&p).unwrap();
/// assert_eq!(matches.len(), 1);
/// let owner = matches[0].get("O").unwrap();
/// assert_eq!(g.node_label(owner), Some("Owner"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pattern {
    /// Pattern nodes; indices are referenced by [`PatternEdge`].
    pub nodes: Vec<PatternNode>,
    /// Pattern edges.
    pub edges: Vec<PatternEdge>,
}

impl Pattern {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a labeled node; returns its index.
    pub fn node(&mut self, label: &str) -> usize {
        self.push_node(NodeConstraint::Label(label.to_string()), None)
    }

    /// Adds a wildcard node; returns its index.
    pub fn any_node(&mut self) -> usize {
        self.push_node(NodeConstraint::Any, None)
    }

    /// Adds a labeled node that binds `var`; returns its index.
    pub fn var_node(&mut self, var: &str, label: &str) -> usize {
        self.push_node(NodeConstraint::Label(label.to_string()), Some(var.to_string()))
    }

    /// Adds a wildcard node that binds `var`; returns its index.
    pub fn any_var_node(&mut self, var: &str) -> usize {
        self.push_node(NodeConstraint::Any, Some(var.to_string()))
    }

    fn push_node(&mut self, constraint: NodeConstraint, var: Option<String>) -> usize {
        self.nodes.push(PatternNode { constraint, var });
        self.nodes.len() - 1
    }

    /// Adds an edge with a required label.
    pub fn edge(&mut self, src: usize, label: &str, dst: usize) -> &mut Self {
        self.edges.push(PatternEdge {
            src,
            dst,
            constraint: EdgeConstraint::Label(label.to_string()),
        });
        self
    }

    /// Adds an edge matching any label.
    pub fn any_edge(&mut self, src: usize, dst: usize) -> &mut Self {
        self.edges.push(PatternEdge { src, dst, constraint: EdgeConstraint::Any });
        self
    }

    /// Number of pattern nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of pattern edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Names of all variables bound by the pattern, in node order.
    pub fn variables(&self) -> Vec<&str> {
        self.nodes.iter().filter_map(|n| n.var.as_deref()).collect()
    }

    /// Validates endpoint indices and variable uniqueness.
    pub fn validate(&self) -> Result<()> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= self.nodes.len() || e.dst >= self.nodes.len() {
                return Err(GraphError::InvalidPattern(format!(
                    "edge {i} references node index out of range"
                )));
            }
        }
        let mut vars: Vec<&str> = self.variables();
        vars.sort_unstable();
        for w in vars.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::InvalidPattern(format!(
                    "variable {:?} bound more than once",
                    w[0]
                )));
            }
        }
        if self.nodes.is_empty() {
            return Err(GraphError::InvalidPattern("pattern has no nodes".into()));
        }
        Ok(())
    }

    /// True if every node is reachable from node 0 ignoring direction.
    /// Disconnected patterns are legal but match as cross products, which
    /// is usually a query mistake; the matcher warns via this predicate.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.src].push(e.dst);
            adj[e.dst].push(e.src);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for &m in &adj[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        seen.into_iter().all(|b| b)
    }

    /// Parses the paper's textual pattern notation. See module docs for
    /// the accepted grammar.
    pub fn parse(input: &str) -> Result<Pattern> {
        Parser::new(input).parse()
    }
}

// ----------------------------------------------------------------------
// Textual notation parser
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Colon,
    Comma,
    Open(char),       // '(' or '{'
    Close(char),      // ')' or '}'
    ArrowOut(String), // -label->
    ArrowIn(String),  // <-label-
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { toks: Vec::new(), pos: 0, input }
    }

    fn err(&self, msg: impl Into<String>) -> GraphError {
        GraphError::Parse { line: 1, msg: format!("{} (in pattern {:?})", msg.into(), self.input) }
    }

    fn tokenize(&mut self) -> Result<()> {
        let s = self.input;
        let b = s.as_bytes();
        let mut i = 0;
        while i < b.len() {
            let c = b[i] as char;
            match c {
                ' ' | '\t' => i += 1,
                ':' => {
                    self.toks.push(Tok::Colon);
                    i += 1;
                }
                ',' => {
                    self.toks.push(Tok::Comma);
                    i += 1;
                }
                '(' | '{' => {
                    self.toks.push(Tok::Open(c));
                    i += 1;
                }
                ')' | '}' => {
                    self.toks.push(Tok::Close(c));
                    i += 1;
                }
                '"' => {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && b[j] as char != '"' {
                        j += 1;
                    }
                    if j >= b.len() {
                        return Err(self.err("unterminated quoted label"));
                    }
                    self.toks.push(Tok::Ident(s[start..j].to_string()));
                    i = j + 1;
                }
                '-' => {
                    // -label->
                    let rest = &s[i + 1..];
                    if let Some(gt) = rest.find("->") {
                        let label = rest[..gt].trim();
                        if label.is_empty() {
                            return Err(self.err("empty edge label in '-label->'"));
                        }
                        self.toks.push(Tok::ArrowOut(label.to_string()));
                        i += 1 + gt + 2;
                    } else {
                        return Err(self.err("dangling '-'; expected '-label->'"));
                    }
                }
                '<' => {
                    // <-label-
                    let rest = &s[i..];
                    if !rest.starts_with("<-") {
                        return Err(self.err("expected '<-label-'"));
                    }
                    let body = &rest[2..];
                    if let Some(dash) = body.find('-') {
                        let label = body[..dash].trim();
                        if label.is_empty() {
                            return Err(self.err("empty edge label in '<-label-'"));
                        }
                        self.toks.push(Tok::ArrowIn(label.to_string()));
                        i += 2 + dash + 1;
                    } else {
                        return Err(self.err("dangling '<-'; expected '<-label-'"));
                    }
                }
                _ if c.is_alphanumeric() || c == '_' || c == '*' || c == '?' => {
                    let start = i;
                    let mut j = i;
                    while j < b.len() {
                        let ch = b[j] as char;
                        if ch.is_alphanumeric() || ch == '_' || ch == '*' || ch == '?' || ch == '.'
                        {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    self.toks.push(Tok::Ident(s[start..j].to_string()));
                    i = j;
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            }
        }
        Ok(())
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next_tok(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse(mut self) -> Result<Pattern> {
        self.tokenize()?;
        if self.toks.is_empty() {
            return Err(self.err("empty pattern"));
        }
        let mut p = Pattern::new();
        let mut prev = self.parse_step(&mut p)?;
        loop {
            match self.peek().cloned() {
                None => break,
                Some(Tok::Colon) => {
                    self.pos += 1;
                    let next = self.parse_step(&mut p)?;
                    p.any_edge(prev, next);
                    prev = next;
                }
                Some(Tok::ArrowOut(label)) => {
                    self.pos += 1;
                    let next = self.parse_step(&mut p)?;
                    p.edge(prev, &label, next);
                    prev = next;
                }
                Some(Tok::ArrowIn(label)) => {
                    self.pos += 1;
                    let next = self.parse_step(&mut p)?;
                    p.edge(next, &label, prev);
                    prev = next;
                }
                Some(t) => return Err(self.err(format!("unexpected token {t:?}"))),
            }
        }
        p.validate()?;
        Ok(p)
    }

    /// step := [var ':'] label [ '(' args ')' ]  — `*` is the wildcard label.
    fn parse_step(&mut self, p: &mut Pattern) -> Result<usize> {
        let first = match self.next_tok() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected label, got {other:?}"))),
        };
        // Variable prefix inside argument lists is handled by parse_args;
        // at step level a bare ident is always a label.
        let idx = if first == "*" { p.any_node() } else { p.node(&first) };
        if let Some(Tok::Open(open)) = self.peek().cloned() {
            self.pos += 1;
            self.parse_args(p, idx, open)?;
        }
        Ok(idx)
    }

    /// args := arg (',' arg)* ; arg := [var ':'] label [nested args].
    /// Each argument is an `AttributeOf` edge into the head node.
    fn parse_args(&mut self, p: &mut Pattern, head: usize, open: char) -> Result<()> {
        let close = if open == '(' { ')' } else { '}' };
        loop {
            let name = match self.next_tok() {
                Some(Tok::Ident(s)) => s,
                other => return Err(self.err(format!("expected argument, got {other:?}"))),
            };
            // Lookahead: `X : label` inside args means variable binding
            // (the paper's `truck(O: owner, model)`).
            let (var, label) = if matches!(self.peek(), Some(Tok::Colon)) {
                self.pos += 1;
                match self.next_tok() {
                    Some(Tok::Ident(l)) => (Some(name), l),
                    other => {
                        return Err(
                            self.err(format!("expected label after variable, got {other:?}"))
                        )
                    }
                }
            } else {
                (None, name)
            };
            let arg_idx = match (var, label.as_str()) {
                (Some(v), "*") => p.any_var_node(&v),
                (Some(v), l) => p.var_node(&v, l),
                (None, "*") => p.any_node(),
                (None, l) => p.node(l),
            };
            p.edge(arg_idx, rel::ATTRIBUTE_OF, head);
            if let Some(Tok::Open(o2)) = self.peek().cloned() {
                self.pos += 1;
                self.parse_args(p, arg_idx, o2)?;
            }
            match self.next_tok() {
                Some(Tok::Comma) => continue,
                Some(Tok::Close(c)) if c == close => return Ok(()),
                other => return Err(self.err(format!("expected ',' or '{close}', got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_validate() {
        let mut p = Pattern::new();
        let a = p.node("Car");
        let b = p.node("Vehicle");
        p.edge(a, "SubclassOf", b);
        assert!(p.validate().is_ok());
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edge_count(), 1);
        assert!(p.is_connected());
    }

    #[test]
    fn validate_rejects_bad_edge_index() {
        let mut p = Pattern::new();
        p.node("A");
        p.edges.push(PatternEdge { src: 0, dst: 5, constraint: EdgeConstraint::Any });
        assert!(matches!(p.validate(), Err(GraphError::InvalidPattern(_))));
    }

    #[test]
    fn validate_rejects_duplicate_variable() {
        let mut p = Pattern::new();
        let a = p.var_node("X", "A");
        let b = p.var_node("X", "B");
        p.any_edge(a, b);
        assert!(matches!(p.validate(), Err(GraphError::InvalidPattern(_))));
    }

    #[test]
    fn validate_rejects_empty_pattern() {
        assert!(Pattern::new().validate().is_err());
    }

    #[test]
    fn parse_path_notation() {
        // the paper's carrier:car:driver (ontology prefix stripped upstream)
        let p = Pattern::parse("carrier:car:driver").unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert!(p.edges.iter().all(|e| e.constraint == EdgeConstraint::Any));
        assert_eq!(p.nodes[0].constraint, NodeConstraint::Label("carrier".into()));
        assert_eq!(p.edges[0].src, 0);
        assert_eq!(p.edges[0].dst, 1);
    }

    #[test]
    fn parse_attribute_notation_with_variable() {
        // the paper's truck(O: owner, model)
        let p = Pattern::parse("truck(O: owner, model)").unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
        assert_eq!(p.variables(), vec!["O"]);
        // owner node binds O and has AttributeOf edge into truck
        let owner = p.nodes.iter().position(|n| n.var.as_deref() == Some("O")).unwrap();
        assert_eq!(p.nodes[owner].constraint, NodeConstraint::Label("owner".into()));
        assert!(p.edges.iter().any(|e| e.src == owner
            && e.dst == 0
            && e.constraint == EdgeConstraint::Label(rel::ATTRIBUTE_OF.into())));
    }

    #[test]
    fn parse_curly_braces_hierarchical() {
        let p = Pattern::parse("truck{owner, model}").unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 2);
    }

    #[test]
    fn parse_nested_args() {
        let p = Pattern::parse("truck(owner(name), model)").unwrap();
        // truck, owner, name, model
        assert_eq!(p.node_count(), 4);
        // name -A-> owner -A-> truck, model -A-> truck
        assert_eq!(p.edge_count(), 3);
    }

    #[test]
    fn parse_explicit_edges_both_directions() {
        let p = Pattern::parse("car -SubclassOf-> vehicle").unwrap();
        assert_eq!(p.edge_count(), 1);
        assert_eq!(p.edges[0].constraint, EdgeConstraint::Label("SubclassOf".into()));
        assert_eq!((p.edges[0].src, p.edges[0].dst), (0, 1));

        let p = Pattern::parse("vehicle <-SubclassOf- car").unwrap();
        assert_eq!(p.edge_count(), 1);
        // reversed: car (node index 1) -> vehicle (node index 0)
        assert_eq!((p.edges[0].src, p.edges[0].dst), (1, 0));
    }

    #[test]
    fn parse_wildcard_nodes() {
        let p = Pattern::parse("* -SubclassOf-> vehicle").unwrap();
        assert_eq!(p.nodes[0].constraint, NodeConstraint::Any);
    }

    #[test]
    fn parse_quoted_labels() {
        let p = Pattern::parse("\"Cargo Carrier\" -SubclassOf-> transport").unwrap();
        assert_eq!(p.nodes[0].constraint, NodeConstraint::Label("Cargo Carrier".into()));
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for bad in ["", "a(", "a -", "a <- b", "a(x", "a)b", "\"unterminated"] {
            let e = Pattern::parse(bad);
            assert!(e.is_err(), "pattern {bad:?} should fail");
        }
    }

    #[test]
    fn disconnected_pattern_detected() {
        let mut p = Pattern::new();
        p.node("A");
        p.node("B");
        assert!(p.validate().is_ok());
        assert!(!p.is_connected());
    }

    #[test]
    fn variables_listed_in_node_order() {
        let p = Pattern::parse("truck(O: owner, M: model)").unwrap();
        assert_eq!(p.variables(), vec!["O", "M"]);
    }
}
