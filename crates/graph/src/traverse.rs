//! Traversals and reachability over ontology graphs.
//!
//! These underpin several parts of the paper: transitive `SubclassOf`
//! reasoning (§2.5), the articulation generator's structure inheritance
//! (§4.2 "the transitive closure of the edges"), and the Difference
//! operator's path condition (§5.3: a node survives only if "there exists
//! no path from n to any n′ in N2").

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::{NodeId, OntGraph};
use crate::hash::FxHashSet;
use crate::label::LabelId;

/// Which edge direction a traversal follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target.
    Forward,
    /// Follow edges from target to source.
    Backward,
    /// Treat edges as undirected.
    Both,
}

/// Edge-label filter for traversals.
#[derive(Debug, Clone)]
pub enum EdgeFilter {
    /// Follow every edge.
    All,
    /// Follow only edges whose label is in this set.
    Labels(Vec<String>),
}

impl EdgeFilter {
    /// Filter for a single label.
    pub fn label(l: &str) -> Self {
        EdgeFilter::Labels(vec![l.to_string()])
    }

    /// Resolves the filter's labels against `g`'s interner once, so the
    /// traversal itself never compares strings. Labels the graph has
    /// never interned cannot match any edge and are dropped here.
    pub fn resolve(&self, g: &OntGraph) -> ResolvedFilter {
        match self {
            EdgeFilter::All => ResolvedFilter::All,
            EdgeFilter::Labels(ls) => {
                ResolvedFilter::Ids(ls.iter().filter_map(|l| g.label_id(l)).collect())
            }
        }
    }
}

/// An [`EdgeFilter`] with its labels interned for one graph — the form
/// every traversal in this module (and `closure`) actually runs on.
#[derive(Debug, Clone)]
pub enum ResolvedFilter {
    /// Follow every edge.
    All,
    /// Follow only edges with one of these interned labels.
    Ids(Vec<LabelId>),
}

impl ResolvedFilter {
    /// Does the filter admit an edge with this label id?
    #[inline]
    pub fn admits(&self, label: LabelId) -> bool {
        match self {
            ResolvedFilter::All => true,
            ResolvedFilter::Ids(ids) => ids.contains(&label),
        }
    }
}

/// Visits each admitted neighbour of `n` (push style: the per-label
/// adjacency index is walked directly, so a `Labels` filter does no
/// per-edge work at all — not even an id comparison).
#[inline]
fn for_each_neighbor(
    g: &OntGraph,
    n: NodeId,
    dir: Direction,
    filter: &ResolvedFilter,
    mut f: impl FnMut(NodeId),
) {
    let fwd = matches!(dir, Direction::Forward | Direction::Both);
    let bwd = matches!(dir, Direction::Backward | Direction::Both);
    match filter {
        ResolvedFilter::All => {
            if fwd {
                for (_, _, dst) in g.out_edge_entries(n) {
                    f(dst);
                }
            }
            if bwd {
                for (_, _, src) in g.in_edge_entries(n) {
                    f(src);
                }
            }
        }
        // single label: jump straight to the one bucket
        ResolvedFilter::Ids(ids) if ids.len() == 1 => {
            let lid = ids[0];
            if fwd {
                for m in g.out_neighbors_by_id(n, lid) {
                    f(m);
                }
            }
            if bwd {
                for m in g.in_neighbors_by_id(n, lid) {
                    f(m);
                }
            }
        }
        // several labels: one pass over the incident list beats probing
        // a bucket per label
        ResolvedFilter::Ids(ids) => {
            if fwd {
                for (_, lid, dst) in g.out_edge_entries(n) {
                    if ids.contains(&lid) {
                        f(dst);
                    }
                }
            }
            if bwd {
                for (_, lid, src) in g.in_edge_entries(n) {
                    if ids.contains(&lid) {
                        f(src);
                    }
                }
            }
        }
    }
}

/// Breadth-first order from `start` (inclusive).
pub fn bfs(g: &OntGraph, start: NodeId, dir: Direction, filter: &EdgeFilter) -> Vec<NodeId> {
    let mut order = Vec::new();
    if !g.is_live_node(start) {
        return order;
    }
    let rf = filter.resolve(g);
    let mut visited = vec![false; g.node_capacity()];
    let mut q = VecDeque::new();
    visited[start.index()] = true;
    q.push_back(start);
    while let Some(n) = q.pop_front() {
        order.push(n);
        for_each_neighbor(g, n, dir, &rf, |m| {
            if !visited[m.index()] {
                visited[m.index()] = true;
                q.push_back(m);
            }
        });
    }
    order
}

/// Depth-first preorder from `start` (inclusive), deterministic by
/// insertion order of edges.
pub fn dfs(g: &OntGraph, start: NodeId, dir: Direction, filter: &EdgeFilter) -> Vec<NodeId> {
    let mut order = Vec::new();
    if !g.is_live_node(start) {
        return order;
    }
    let rf = filter.resolve(g);
    let mut visited = vec![false; g.node_capacity()];
    let mut stack = vec![start];
    let mut ns: Vec<NodeId> = Vec::new();
    while let Some(n) = stack.pop() {
        if visited[n.index()] {
            continue;
        }
        visited[n.index()] = true;
        order.push(n);
        // push in reverse so the first edge is visited first
        ns.clear();
        for_each_neighbor(g, n, dir, &rf, |m| ns.push(m));
        for &m in ns.iter().rev() {
            if !visited[m.index()] {
                stack.push(m);
            }
        }
    }
    order
}

/// The set of nodes reachable from `start` (inclusive).
pub fn reachable(
    g: &OntGraph,
    start: NodeId,
    dir: Direction,
    filter: &EdgeFilter,
) -> FxHashSet<NodeId> {
    bfs(g, start, dir, filter).into_iter().collect()
}

/// The set of nodes reachable from any node in `starts` (inclusive).
pub fn reachable_from_all(
    g: &OntGraph,
    starts: &[NodeId],
    dir: Direction,
    filter: &EdgeFilter,
) -> FxHashSet<NodeId> {
    let rf = filter.resolve(g);
    let mut visited = vec![false; g.node_capacity()];
    let mut order: Vec<NodeId> = Vec::new();
    let mut q: VecDeque<NodeId> = VecDeque::new();
    for &s in starts {
        if g.is_live_node(s) && !visited[s.index()] {
            visited[s.index()] = true;
            order.push(s);
            q.push_back(s);
        }
    }
    while let Some(n) = q.pop_front() {
        for_each_neighbor(g, n, dir, &rf, |m| {
            if !visited[m.index()] {
                visited[m.index()] = true;
                order.push(m);
                q.push_back(m);
            }
        });
    }
    order.into_iter().collect()
}

/// True if a (directed, filtered) path from `a` to `b` exists.
pub fn has_path(g: &OntGraph, a: NodeId, b: NodeId, filter: &EdgeFilter) -> bool {
    if a == b {
        return g.is_live_node(a);
    }
    let rf = filter.resolve(g);
    let mut visited = vec![false; g.node_capacity()];
    let mut q = VecDeque::new();
    visited[a.index()] = true;
    q.push_back(a);
    while let Some(n) = q.pop_front() {
        let mut found = false;
        for_each_neighbor(g, n, Direction::Forward, &rf, |m| {
            found |= m == b;
            if !visited[m.index()] {
                visited[m.index()] = true;
                q.push_back(m);
            }
        });
        if found {
            return true;
        }
    }
    false
}

/// Shortest directed path from `a` to `b` as a node sequence (inclusive),
/// or `None` when unreachable.
pub fn shortest_path(
    g: &OntGraph,
    a: NodeId,
    b: NodeId,
    filter: &EdgeFilter,
) -> Option<Vec<NodeId>> {
    if !g.is_live_node(a) || !g.is_live_node(b) {
        return None;
    }
    if a == b {
        return Some(vec![a]);
    }
    let rf = filter.resolve(g);
    let mut prev: Vec<Option<NodeId>> = vec![None; g.node_capacity()];
    let mut q = VecDeque::new();
    q.push_back(a);
    prev[a.index()] = Some(a);
    while let Some(n) = q.pop_front() {
        let mut reached = false;
        for_each_neighbor(g, n, Direction::Forward, &rf, |m| {
            if prev[m.index()].is_none() {
                prev[m.index()] = Some(n);
                reached |= m == b;
                q.push_back(m);
            }
        });
        if reached {
            let mut path = vec![b];
            let mut cur = b;
            while cur != a {
                cur = prev[cur.index()].expect("on discovered path");
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
    }
    None
}

/// Topological order of the subgraph induced by `filter`ed edges.
///
/// Returns `Err(cycle_nodes)` with one witness cycle's nodes when the
/// filtered subgraph is cyclic — used by consistency checking to reject
/// cyclic `SubclassOf` hierarchies.
pub fn topo_sort(
    g: &OntGraph,
    filter: &EdgeFilter,
) -> std::result::Result<Vec<NodeId>, Vec<NodeId>> {
    let rf = filter.resolve(g);
    let live = g.node_count();
    let mut indeg: Vec<usize> = vec![0; g.node_capacity()];
    for (_, _, lid, dst) in g.edge_entries() {
        if rf.admits(lid) {
            indeg[dst.index()] += 1;
        }
    }
    let mut q: VecDeque<NodeId> = g.node_ids().filter(|n| indeg[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(live);
    while let Some(n) = q.pop_front() {
        order.push(n);
        for_each_neighbor(g, n, Direction::Forward, &rf, |dst| {
            indeg[dst.index()] -= 1;
            if indeg[dst.index()] == 0 {
                q.push_back(dst);
            }
        });
    }
    if order.len() == live {
        Ok(order)
    } else {
        // find one witness cycle among remaining nodes
        let remaining: HashSet<NodeId> = g.node_ids().filter(|n| indeg[n.index()] > 0).collect();
        Err(find_cycle_within(g, &remaining, &rf))
    }
}

fn find_cycle_within(
    g: &OntGraph,
    within: &HashSet<NodeId>,
    filter: &ResolvedFilter,
) -> Vec<NodeId> {
    // walk forward from an arbitrary node until a repeat
    let start = *within.iter().min().expect("non-empty remainder");
    let mut path = vec![start];
    let mut on_path: HashMap<NodeId, usize> = HashMap::new();
    on_path.insert(start, 0);
    let mut cur = start;
    loop {
        let next = g
            .out_edge_entries(cur)
            .filter(|(_, lid, dst)| filter.admits(*lid) && within.contains(dst))
            .map(|(_, _, dst)| dst)
            .next()
            .expect("every remaining node has an admissible out-edge in the cyclic core");
        if let Some(&i) = on_path.get(&next) {
            return path[i..].to_vec();
        }
        on_path.insert(next, path.len());
        path.push(next);
        cur = next;
    }
}

/// Strongly connected components (Tarjan, iterative).
///
/// Components are returned in reverse topological order of the condensed
/// graph; singleton components without self-loops are included.
pub fn tarjan_scc(g: &OntGraph, filter: &EdgeFilter) -> Vec<Vec<NodeId>> {
    let rf = filter.resolve(g);
    #[derive(Clone, Copy)]
    struct Meta {
        index: u32,
        low: u32,
        on_stack: bool,
        visited: bool,
    }
    let cap = g.node_ids().map(|n| n.index() + 1).max().unwrap_or(0);
    let mut meta = vec![Meta { index: 0, low: 0, on_stack: false, visited: false }; cap];
    let mut counter: u32 = 0;
    let mut stack: Vec<NodeId> = Vec::new();
    let mut components = Vec::new();

    // Iterative Tarjan with an explicit call stack.
    enum Frame {
        Enter(NodeId),
        Resume(NodeId, Vec<NodeId>, usize),
    }

    for root in g.node_ids() {
        if meta[root.index()].visited {
            continue;
        }
        let mut call = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    let m = &mut meta[v.index()];
                    m.visited = true;
                    m.index = counter;
                    m.low = counter;
                    counter += 1;
                    m.on_stack = true;
                    stack.push(v);
                    let mut succ: Vec<NodeId> = Vec::new();
                    for_each_neighbor(g, v, Direction::Forward, &rf, |m| succ.push(m));
                    call.push(Frame::Resume(v, succ, 0));
                }
                Frame::Resume(v, succ, mut i) => {
                    let mut descended = false;
                    while i < succ.len() {
                        let w = succ[i];
                        i += 1;
                        if !meta[w.index()].visited {
                            call.push(Frame::Resume(v, succ.clone(), i));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if meta[w.index()].on_stack {
                            let wl = meta[w.index()].index;
                            let m = &mut meta[v.index()];
                            m.low = m.low.min(wl);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // all successors done
                    if meta[v.index()].low == meta[v.index()].index {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack non-empty");
                            meta[w.index()].on_stack = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                    // propagate lowlink to parent Resume frame
                    if let Some(Frame::Resume(p, _, _)) = call.last() {
                        let p = *p;
                        let vl = meta[v.index()].low;
                        let pm = &mut meta[p.index()];
                        pm.low = pm.low.min(vl);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> (OntGraph, Vec<NodeId>) {
        let mut g = OntGraph::new("t");
        let ids: Vec<NodeId> =
            ["A", "B", "C", "D"].iter().map(|l| g.add_node(l).unwrap()).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], "S", w[1]).unwrap();
        }
        (g, ids)
    }

    #[test]
    fn bfs_order_from_chain_head() {
        let (g, ids) = chain();
        let order = bfs(&g, ids[0], Direction::Forward, &EdgeFilter::All);
        assert_eq!(order, ids);
    }

    #[test]
    fn bfs_respects_direction() {
        let (g, ids) = chain();
        let fwd = bfs(&g, ids[3], Direction::Forward, &EdgeFilter::All);
        assert_eq!(fwd, vec![ids[3]]);
        let bwd = bfs(&g, ids[3], Direction::Backward, &EdgeFilter::All);
        assert_eq!(bwd.len(), 4);
        let both = bfs(&g, ids[1], Direction::Both, &EdgeFilter::All);
        assert_eq!(both.len(), 4);
    }

    #[test]
    fn bfs_respects_edge_filter() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        g.add_edge(a, "S", b).unwrap();
        g.add_edge(a, "A", c).unwrap();
        let only_s = bfs(&g, a, Direction::Forward, &EdgeFilter::label("S"));
        assert_eq!(only_s, vec![a, b]);
    }

    #[test]
    fn dfs_preorder() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        let d = g.add_node("D").unwrap();
        g.add_edge(a, "e", b).unwrap();
        g.add_edge(b, "e", d).unwrap();
        g.add_edge(a, "e", c).unwrap();
        let order = dfs(&g, a, Direction::Forward, &EdgeFilter::All);
        assert_eq!(order, vec![a, b, d, c], "first edge explored deeply first");
    }

    #[test]
    fn dead_start_yields_empty() {
        let (mut g, ids) = chain();
        g.delete_node(ids[0]).unwrap();
        assert!(bfs(&g, ids[0], Direction::Forward, &EdgeFilter::All).is_empty());
        assert!(dfs(&g, ids[0], Direction::Forward, &EdgeFilter::All).is_empty());
    }

    #[test]
    fn has_path_and_shortest_path() {
        let (g, ids) = chain();
        assert!(has_path(&g, ids[0], ids[3], &EdgeFilter::All));
        assert!(!has_path(&g, ids[3], ids[0], &EdgeFilter::All));
        let p = shortest_path(&g, ids[0], ids[3], &EdgeFilter::All).unwrap();
        assert_eq!(p, ids);
        assert!(shortest_path(&g, ids[3], ids[0], &EdgeFilter::All).is_none());
        assert_eq!(shortest_path(&g, ids[1], ids[1], &EdgeFilter::All).unwrap(), vec![ids[1]]);
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        g.add_edge(a, "e", b).unwrap();
        g.add_edge(b, "e", c).unwrap();
        g.add_edge(a, "short", c).unwrap();
        let p = shortest_path(&g, a, c, &EdgeFilter::All).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reachable_from_all_unions_sources() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        let d = g.add_node("D").unwrap();
        g.add_edge(a, "e", b).unwrap();
        g.add_edge(c, "e", d).unwrap();
        let r = reachable_from_all(&g, &[a, c], Direction::Forward, &EdgeFilter::All);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn topo_sort_on_dag() {
        let (g, ids) = chain();
        let order = topo_sort(&g, &EdgeFilter::All).unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for e in g.edges() {
            assert!(pos[&e.src] < pos[&e.dst]);
        }
        assert_eq!(order.len(), ids.len());
    }

    #[test]
    fn topo_sort_reports_cycle_witness() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        g.add_edge(a, "S", b).unwrap();
        g.add_edge(b, "S", c).unwrap();
        g.add_edge(c, "S", a).unwrap();
        let cycle = topo_sort(&g, &EdgeFilter::All).unwrap_err();
        assert_eq!(cycle.len(), 3);
        // witness is a real cycle: each consecutive pair has an edge
        for i in 0..cycle.len() {
            let u = cycle[i];
            let v = cycle[(i + 1) % cycle.len()];
            assert!(g.out_edges(u).any(|e| e.dst == v));
        }
    }

    #[test]
    fn topo_sort_cycle_limited_to_filtered_labels() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        g.add_edge(a, "S", b).unwrap();
        g.add_edge(b, "other", a).unwrap();
        // full graph is cyclic, S-subgraph is not
        assert!(topo_sort(&g, &EdgeFilter::All).is_err());
        assert!(topo_sort(&g, &EdgeFilter::label("S")).is_ok());
    }

    #[test]
    fn scc_finds_cycle_component() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        let d = g.add_node("D").unwrap();
        g.add_edge(a, "e", b).unwrap();
        g.add_edge(b, "e", a).unwrap();
        g.add_edge(b, "e", c).unwrap();
        g.add_edge(c, "e", d).unwrap();
        let mut comps = tarjan_scc(&g, &EdgeFilter::All);
        comps.iter_mut().for_each(|c| c.sort_unstable());
        comps.sort_by_key(|c| c.len());
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[2], {
            let mut v = vec![a, b];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn scc_on_dag_is_all_singletons() {
        let (g, _) = chain();
        let comps = tarjan_scc(&g, &EdgeFilter::All);
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn scc_respects_filter() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        g.add_edge(a, "S", b).unwrap();
        g.add_edge(b, "other", a).unwrap();
        let comps = tarjan_scc(&g, &EdgeFilter::label("S"));
        assert_eq!(comps.len(), 2);
        let comps = tarjan_scc(&g, &EdgeFilter::All);
        assert_eq!(comps.len(), 1);
    }
}
