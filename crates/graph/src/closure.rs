//! Per-label transitive closure.
//!
//! The paper's ontologies carry rules such as "the transitive nature of
//! the `SubclassOf` relationship" (§2.5), and the articulation generator
//! materialises "the transitive closure of the edges" in expert-selected
//! portions (§4.2). This module computes closures as pair sets or writes
//! them back into a graph as new edges.

use std::collections::{HashSet, VecDeque};

use crate::graph::{NodeId, OntGraph};
use crate::hash::FxHashSet;
use crate::label::LabelId;
use crate::traverse::EdgeFilter;
use crate::Result;

/// All pairs `(a, b)` with a non-empty directed path from `a` to `b`
/// using only `filter`-admitted edges. Self-pairs appear only for nodes
/// on cycles.
///
/// The filter is resolved to label ids once and the BFS runs on a dense
/// arena-indexed adjacency with an epoch-stamped visited vector — no
/// per-edge string work, no hashing in the inner loop.
pub fn transitive_pairs(g: &OntGraph, filter: &EdgeFilter) -> FxHashSet<(NodeId, NodeId)> {
    let rf = filter.resolve(g);
    let cap = g.node_capacity();
    // CSR adjacency restricted to the filter: two passes over the edge
    // arena, no per-node allocation
    let mut deg = vec![0usize; cap];
    for (_, src, lid, _) in g.edge_entries() {
        if rf.admits(lid) {
            deg[src.index()] += 1;
        }
    }
    let mut start_of = vec![0usize; cap + 1];
    for i in 0..cap {
        start_of[i + 1] = start_of[i] + deg[i];
    }
    let mut flat = vec![NodeId(0); start_of[cap]];
    let mut fill = start_of.clone();
    for (_, src, lid, dst) in g.edge_entries() {
        if rf.admits(lid) {
            flat[fill[src.index()]] = dst;
            fill[src.index()] += 1;
        }
    }
    let adj = |n: NodeId| &flat[start_of[n.index()]..start_of[n.index() + 1]];

    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    let mut stamp: Vec<u32> = vec![0; cap];
    let mut epoch: u32 = 0;
    let mut q: VecDeque<NodeId> = VecDeque::new();
    for start in g.node_ids() {
        if adj(start).is_empty() {
            continue;
        }
        epoch += 1;
        q.push_back(start);
        // note: `start` not pre-stamped, so a path back to start is
        // found; the stamp guarantees each (start, m) is pushed once
        while let Some(n) = q.pop_front() {
            for &m in adj(n) {
                if stamp[m.index()] != epoch {
                    stamp[m.index()] = epoch;
                    pairs.push((start, m));
                    q.push_back(m);
                }
            }
        }
    }
    let mut set = FxHashSet::with_capacity_and_hasher(pairs.len(), Default::default());
    set.extend(pairs);
    set
}

/// Materialises the transitive closure of `label` edges: for every path
/// `a →* b` adds the edge `(a, label, b)` unless present. Returns the
/// number of edges added.
///
/// Self-loops discovered through cycles are **not** added (a term being
/// its own subclass carries no information and consistency checking
/// rejects subclass cycles separately).
pub fn materialize_closure(g: &mut OntGraph, label: &str) -> Result<usize> {
    let pairs = transitive_pairs(g, &EdgeFilter::label(label));
    let lid = g.intern(label);
    let mut added = 0;
    for (a, b) in pairs {
        if a == b {
            continue;
        }
        if g.find_edge_by_ids(a, lid, b).is_none() {
            g.add_edge(a, label, b)?;
            added += 1;
        }
    }
    Ok(added)
}

/// The closure *reduction*: removes `label` edges implied by transitivity
/// through other `label` edges (the inverse of
/// [`materialize_closure`]; the viewer uses the reduced form since "all
/// transitive semantic implications are not displayed … unless requested"
/// §4.2). Returns the number of edges removed.
pub fn transitive_reduce(g: &mut OntGraph, label: &str) -> Result<usize> {
    let Some(lid) = g.label_id(label) else { return Ok(0) };
    // Collect candidate edges first.
    let edges: Vec<(NodeId, NodeId)> = g
        .edge_entries()
        .filter(|&(_, _, l, _)| l == lid)
        .map(|(_, src, _, dst)| (src, dst))
        .collect();
    let mut removed = 0;
    for (a, b) in edges {
        // Is there an alternative path a -> b of length >= 2 avoiding the
        // direct edge?
        if indirect_path_exists(g, a, b, lid) {
            let e =
                g.find_edge_by_ids(a, lid, b).expect("edge collected above and not yet deleted");
            g.delete_edge(e)?;
            removed += 1;
        }
    }
    Ok(removed)
}

fn indirect_path_exists(g: &OntGraph, a: NodeId, b: NodeId, label: LabelId) -> bool {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut q: VecDeque<NodeId> = VecDeque::new();
    // start from a's label-successors other than the direct hop to b
    for m in g.out_neighbors_by_id(a, label) {
        if m != b && seen.insert(m) {
            q.push_back(m);
        }
    }
    while let Some(n) = q.pop_front() {
        if n == b {
            return true;
        }
        for m in g.out_neighbors_by_id(n, label) {
            // never traverse the direct edge under test — a cycle can
            // lead back to `a`, and a "path" finishing with (a, b)
            // itself must not justify deleting (a, b)
            if n == a && m == b {
                continue;
            }
            if m == b {
                return true;
            }
            if seen.insert(m) {
                q.push_back(m);
            }
        }
    }
    false
}

/// All ancestors of `n` along `label` edges (excluding `n` unless cyclic):
/// e.g. all superclasses under `SubclassOf`.
pub fn ancestors(g: &OntGraph, n: NodeId, label: &str) -> FxHashSet<NodeId> {
    follow(g, n, label, true)
}

/// All descendants of `n` along `label` edges: e.g. all subclasses.
pub fn descendants(g: &OntGraph, n: NodeId, label: &str) -> FxHashSet<NodeId> {
    follow(g, n, label, false)
}

fn follow(g: &OntGraph, n: NodeId, label: &str, up: bool) -> FxHashSet<NodeId> {
    let Some(lid) = g.label_id(label) else { return FxHashSet::default() };
    // dense visited vector + stack frontier (the result is a set, so
    // visit order is free); the hash set is built once at the end
    let mut visited = vec![false; g.node_capacity()];
    let mut reached: Vec<NodeId> = Vec::new();
    let mut frontier: Vec<NodeId> = vec![n];
    let mut scan = 0;
    while scan < frontier.len() {
        let cur = frontier[scan];
        scan += 1;
        if up {
            for m in g.out_neighbors_by_id(cur, lid) {
                if !visited[m.index()] {
                    visited[m.index()] = true;
                    reached.push(m);
                    frontier.push(m);
                }
            }
        } else {
            for m in g.in_neighbors_by_id(cur, lid) {
                if !visited[m.index()] {
                    visited[m.index()] = true;
                    reached.push(m);
                    frontier.push(m);
                }
            }
        }
    }
    let mut set = FxHashSet::with_capacity_and_hasher(reached.len(), Default::default());
    set.extend(reached);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    fn hierarchy() -> OntGraph {
        // SUV -S-> Car -S-> Vehicle, Truck -S-> Vehicle
        let mut g = OntGraph::new("t");
        for (a, b) in [("SUV", "Car"), ("Car", "Vehicle"), ("Truck", "Vehicle")] {
            g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
        }
        g
    }

    #[test]
    fn transitive_pairs_of_chain() {
        let g = hierarchy();
        let pairs = transitive_pairs(&g, &EdgeFilter::label(rel::SUBCLASS_OF));
        let lbl = |n: NodeId| g.node_label(n).unwrap().to_string();
        let set: HashSet<(String, String)> =
            pairs.into_iter().map(|(a, b)| (lbl(a), lbl(b))).collect();
        assert!(set.contains(&("SUV".into(), "Vehicle".into())));
        assert!(set.contains(&("SUV".into(), "Car".into())));
        assert!(set.contains(&("Car".into(), "Vehicle".into())));
        assert!(!set.contains(&("Vehicle".into(), "SUV".into())));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn pairs_include_cycle_self_pairs() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("B", "S", "A").unwrap();
        let pairs = transitive_pairs(&g, &EdgeFilter::All);
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        assert!(pairs.contains(&(a, a)));
        assert!(pairs.contains(&(b, b)));
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn materialize_adds_only_missing() {
        let mut g = hierarchy();
        let added = materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        assert_eq!(added, 1); // SUV -> Vehicle
        assert!(g.has_edge("SUV", rel::SUBCLASS_OF, "Vehicle"));
        // idempotent
        assert_eq!(materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap(), 0);
    }

    #[test]
    fn materialize_skips_cycle_self_loops() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("B", "S", "A").unwrap();
        materialize_closure(&mut g, "S").unwrap();
        assert!(!g.has_edge("A", "S", "A"));
        assert!(!g.has_edge("B", "S", "B"));
    }

    #[test]
    fn materialize_ignores_other_labels() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("B", "other", "C").unwrap();
        materialize_closure(&mut g, "S").unwrap();
        assert!(!g.has_edge("A", "S", "C"));
    }

    #[test]
    fn reduce_inverts_materialize() {
        let mut g = hierarchy();
        materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        let removed = transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        assert_eq!(removed, 1);
        assert!(g.same_shape(&hierarchy()));
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = hierarchy();
        let suv = g.node_by_label("SUV").unwrap();
        let vehicle = g.node_by_label("Vehicle").unwrap();
        let anc = ancestors(&g, suv, rel::SUBCLASS_OF);
        assert_eq!(anc.len(), 2); // Car, Vehicle
        let desc = descendants(&g, vehicle, rel::SUBCLASS_OF);
        assert_eq!(desc.len(), 3); // Car, SUV, Truck
        assert!(desc.contains(&suv));
    }

    #[test]
    fn ancestors_of_root_is_empty() {
        let g = hierarchy();
        let vehicle = g.node_by_label("Vehicle").unwrap();
        assert!(ancestors(&g, vehicle, rel::SUBCLASS_OF).is_empty());
    }
}
