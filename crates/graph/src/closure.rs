//! Per-label transitive closure.
//!
//! The paper's ontologies carry rules such as "the transitive nature of
//! the `SubclassOf` relationship" (§2.5), and the articulation generator
//! materialises "the transitive closure of the edges" in expert-selected
//! portions (§4.2). This module computes closures as pair sets or writes
//! them back into a graph as new edges.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::{NodeId, OntGraph};
use crate::traverse::EdgeFilter;
use crate::Result;

/// All pairs `(a, b)` with a non-empty directed path from `a` to `b`
/// using only `filter`-admitted edges. Self-pairs appear only for nodes
/// on cycles.
pub fn transitive_pairs(g: &OntGraph, filter: &EdgeFilter) -> HashSet<(NodeId, NodeId)> {
    let mut pairs = HashSet::new();
    // adjacency restricted to the filter
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for e in g.edges() {
        if admits(filter, e.label) {
            adj.entry(e.src).or_default().push(e.dst);
        }
    }
    for start in g.node_ids() {
        if !adj.contains_key(&start) {
            continue;
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut q: VecDeque<NodeId> = VecDeque::new();
        q.push_back(start);
        // note: `start` not pre-inserted, so a path back to start is found
        while let Some(n) = q.pop_front() {
            if let Some(next) = adj.get(&n) {
                for &m in next {
                    if seen.insert(m) {
                        pairs.insert((start, m));
                        q.push_back(m);
                    }
                }
            }
        }
    }
    pairs
}

fn admits(filter: &EdgeFilter, label: &str) -> bool {
    match filter {
        EdgeFilter::All => true,
        EdgeFilter::Labels(ls) => ls.iter().any(|x| x == label),
    }
}

/// Materialises the transitive closure of `label` edges: for every path
/// `a →* b` adds the edge `(a, label, b)` unless present. Returns the
/// number of edges added.
///
/// Self-loops discovered through cycles are **not** added (a term being
/// its own subclass carries no information and consistency checking
/// rejects subclass cycles separately).
pub fn materialize_closure(g: &mut OntGraph, label: &str) -> Result<usize> {
    let pairs = transitive_pairs(g, &EdgeFilter::label(label));
    let mut added = 0;
    for (a, b) in pairs {
        if a == b {
            continue;
        }
        if g.find_edge(a, label, b).is_none() {
            g.add_edge(a, label, b)?;
            added += 1;
        }
    }
    Ok(added)
}

/// The closure *reduction*: removes `label` edges implied by transitivity
/// through other `label` edges (the inverse of
/// [`materialize_closure`]; the viewer uses the reduced form since "all
/// transitive semantic implications are not displayed … unless requested"
/// §4.2). Returns the number of edges removed.
pub fn transitive_reduce(g: &mut OntGraph, label: &str) -> Result<usize> {
    // Collect candidate edges first.
    let edges: Vec<(NodeId, NodeId)> =
        g.edges().filter(|e| e.label == label).map(|e| (e.src, e.dst)).collect();
    let mut removed = 0;
    for (a, b) in edges {
        // Is there an alternative path a -> b of length >= 2 avoiding the
        // direct edge?
        if indirect_path_exists(g, a, b, label) {
            let e = g.find_edge(a, label, b).expect("edge collected above and not yet deleted");
            g.delete_edge(e)?;
            removed += 1;
        }
    }
    Ok(removed)
}

fn indirect_path_exists(g: &OntGraph, a: NodeId, b: NodeId, label: &str) -> bool {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut q: VecDeque<NodeId> = VecDeque::new();
    // start from a's label-successors other than the direct hop to b
    for e in g.out_edges(a) {
        if e.label == label && e.dst != b && seen.insert(e.dst) {
            q.push_back(e.dst);
        }
    }
    while let Some(n) = q.pop_front() {
        if n == b {
            return true;
        }
        for e in g.out_edges(n) {
            if e.label == label {
                // never traverse the direct edge under test — a cycle can
                // lead back to `a`, and a "path" finishing with (a, b)
                // itself must not justify deleting (a, b)
                if n == a && e.dst == b {
                    continue;
                }
                if e.dst == b {
                    return true;
                }
                if seen.insert(e.dst) {
                    q.push_back(e.dst);
                }
            }
        }
    }
    false
}

/// All ancestors of `n` along `label` edges (excluding `n` unless cyclic):
/// e.g. all superclasses under `SubclassOf`.
pub fn ancestors(g: &OntGraph, n: NodeId, label: &str) -> HashSet<NodeId> {
    follow(g, n, label, true)
}

/// All descendants of `n` along `label` edges: e.g. all subclasses.
pub fn descendants(g: &OntGraph, n: NodeId, label: &str) -> HashSet<NodeId> {
    follow(g, n, label, false)
}

fn follow(g: &OntGraph, n: NodeId, label: &str, up: bool) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut q: VecDeque<NodeId> = VecDeque::new();
    q.push_back(n);
    while let Some(cur) = q.pop_front() {
        let next: Vec<NodeId> = if up {
            g.out_neighbors(cur, label).collect()
        } else {
            g.in_neighbors(cur, label).collect()
        };
        for m in next {
            if seen.insert(m) {
                q.push_back(m);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    fn hierarchy() -> OntGraph {
        // SUV -S-> Car -S-> Vehicle, Truck -S-> Vehicle
        let mut g = OntGraph::new("t");
        for (a, b) in [("SUV", "Car"), ("Car", "Vehicle"), ("Truck", "Vehicle")] {
            g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
        }
        g
    }

    #[test]
    fn transitive_pairs_of_chain() {
        let g = hierarchy();
        let pairs = transitive_pairs(&g, &EdgeFilter::label(rel::SUBCLASS_OF));
        let lbl = |n: NodeId| g.node_label(n).unwrap().to_string();
        let set: HashSet<(String, String)> =
            pairs.into_iter().map(|(a, b)| (lbl(a), lbl(b))).collect();
        assert!(set.contains(&("SUV".into(), "Vehicle".into())));
        assert!(set.contains(&("SUV".into(), "Car".into())));
        assert!(set.contains(&("Car".into(), "Vehicle".into())));
        assert!(!set.contains(&("Vehicle".into(), "SUV".into())));
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn pairs_include_cycle_self_pairs() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("B", "S", "A").unwrap();
        let pairs = transitive_pairs(&g, &EdgeFilter::All);
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        assert!(pairs.contains(&(a, a)));
        assert!(pairs.contains(&(b, b)));
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn materialize_adds_only_missing() {
        let mut g = hierarchy();
        let added = materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        assert_eq!(added, 1); // SUV -> Vehicle
        assert!(g.has_edge("SUV", rel::SUBCLASS_OF, "Vehicle"));
        // idempotent
        assert_eq!(materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap(), 0);
    }

    #[test]
    fn materialize_skips_cycle_self_loops() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("B", "S", "A").unwrap();
        materialize_closure(&mut g, "S").unwrap();
        assert!(!g.has_edge("A", "S", "A"));
        assert!(!g.has_edge("B", "S", "B"));
    }

    #[test]
    fn materialize_ignores_other_labels() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("B", "other", "C").unwrap();
        materialize_closure(&mut g, "S").unwrap();
        assert!(!g.has_edge("A", "S", "C"));
    }

    #[test]
    fn reduce_inverts_materialize() {
        let mut g = hierarchy();
        materialize_closure(&mut g, rel::SUBCLASS_OF).unwrap();
        let removed = transitive_reduce(&mut g, rel::SUBCLASS_OF).unwrap();
        assert_eq!(removed, 1);
        assert!(g.same_shape(&hierarchy()));
    }

    #[test]
    fn ancestors_and_descendants() {
        let g = hierarchy();
        let suv = g.node_by_label("SUV").unwrap();
        let vehicle = g.node_by_label("Vehicle").unwrap();
        let anc = ancestors(&g, suv, rel::SUBCLASS_OF);
        assert_eq!(anc.len(), 2); // Car, Vehicle
        let desc = descendants(&g, vehicle, rel::SUBCLASS_OF);
        assert_eq!(desc.len(), 3); // Car, SUV, Truck
        assert!(desc.contains(&suv));
    }

    #[test]
    fn ancestors_of_root_is_empty() {
        let g = hierarchy();
        let vehicle = g.node_by_label("Vehicle").unwrap();
        assert!(ancestors(&g, vehicle, rel::SUBCLASS_OF).is_empty());
    }
}
