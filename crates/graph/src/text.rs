//! Line-oriented text interchange format.
//!
//! The paper's data layer accepts "simple adjacency list representations"
//! (§2.1); this is ours. The format is line-based and diff-friendly:
//!
//! ```text
//! # comment
//! ontology carrier
//! node Car
//! node "Cargo Carrier"
//! edge Car SubclassOf Vehicle
//! ```
//!
//! * `ontology NAME` (optional, first non-comment line) names the graph;
//! * `node LABEL` declares a node;
//! * `edge SRC LABEL DST` declares an edge, creating endpoints on demand;
//! * labels containing whitespace are double-quoted; `\"` and `\\` are the
//!   only escapes;
//! * `#` starts a comment; blank lines are ignored.

use std::fmt::Write as _;

use crate::error::GraphError;
use crate::graph::OntGraph;
use crate::Result;

/// Serialises `g` in the text format (nodes first, then edges, both in
/// insertion order).
pub fn to_text(g: &OntGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ontology {}", quote(g.name()));
    for n in g.nodes() {
        let _ = writeln!(out, "node {}", quote(n.label));
    }
    for e in g.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            quote(g.node_label(e.src).expect("live")),
            quote(e.label),
            quote(g.node_label(e.dst).expect("live")),
        );
    }
    out
}

/// Parses the text format into a consistent-mode graph.
pub fn from_text(input: &str) -> Result<OntGraph> {
    let mut g = OntGraph::new("unnamed");
    let mut named = false;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = split_tokens(line, lineno + 1)?;
        match toks.first().map(String::as_str) {
            Some("ontology") => {
                if toks.len() != 2 {
                    return parse_err(lineno + 1, "ontology expects exactly one name");
                }
                if named {
                    return parse_err(lineno + 1, "duplicate ontology declaration");
                }
                g.set_name(&toks[1]);
                named = true;
            }
            Some("node") => {
                if toks.len() != 2 {
                    return parse_err(lineno + 1, "node expects exactly one label");
                }
                g.ensure_node(&toks[1]).map_err(|e| at(lineno + 1, e))?;
            }
            Some("edge") => {
                if toks.len() != 4 {
                    return parse_err(lineno + 1, "edge expects SRC LABEL DST");
                }
                g.ensure_edge_by_labels(&toks[1], &toks[2], &toks[3])
                    .map_err(|e| at(lineno + 1, e))?;
            }
            Some(other) => {
                return parse_err(lineno + 1, format!("unknown directive {other:?}"));
            }
            None => unreachable!("empty lines filtered"),
        }
    }
    Ok(g)
}

fn parse_err<T>(line: usize, msg: impl Into<String>) -> Result<T> {
    Err(GraphError::Parse { line, msg: msg.into() })
}

fn at(line: usize, e: GraphError) -> GraphError {
    GraphError::Parse { line, msg: e.to_string() }
}

fn quote(s: &str) -> String {
    if !s.is_empty() && s.chars().all(|c| !c.is_whitespace() && c != '"' && c != '#' && c != '\\') {
        s.to_string()
    } else {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            if c == '"' || c == '\\' {
                out.push('\\');
            }
            out.push(c);
        }
        out.push('"');
        out
    }
}

fn split_tokens(line: &str, lineno: usize) -> Result<Vec<String>> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '#' {
            break; // trailing comment
        } else if c == '"' {
            chars.next();
            let mut tok = String::new();
            let mut closed = false;
            while let Some(ch) = chars.next() {
                match ch {
                    '\\' => match chars.next() {
                        Some(esc @ ('"' | '\\')) => tok.push(esc),
                        _ => {
                            return parse_err(lineno, "bad escape in quoted label");
                        }
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    other => tok.push(other),
                }
            }
            if !closed {
                return parse_err(lineno, "unterminated quoted label");
            }
            toks.push(tok);
        } else {
            let mut tok = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '#' {
                    break;
                }
                tok.push(ch);
                chars.next();
            }
            toks.push(tok);
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    #[test]
    fn roundtrip_simple() {
        let mut g = OntGraph::new("carrier");
        g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Vehicle").unwrap();
        g.add_node("Lonely").unwrap();
        let text = to_text(&g);
        let g2 = from_text(&text).unwrap();
        assert_eq!(g2.name(), "carrier");
        assert!(g.same_shape(&g2));
    }

    #[test]
    fn roundtrip_quoted_labels() {
        let mut g = OntGraph::new("my ontology");
        g.ensure_edge_by_labels("Cargo Carrier", "Subclass Of", "Goods \"Vehicle\"").unwrap();
        let text = to_text(&g);
        let g2 = from_text(&text).unwrap();
        assert!(g.same_shape(&g2));
        assert_eq!(g2.name(), "my ontology");
        assert!(g2.contains_label("Goods \"Vehicle\""));
    }

    #[test]
    fn parse_with_comments_and_blanks() {
        let input = r#"
# a carrier fragment
ontology carrier

node Car          # trailing comment
edge Car SubclassOf Vehicle
"#;
        let g = from_text(input).unwrap();
        assert_eq!(g.name(), "carrier");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edge_creates_endpoints() {
        let g = from_text("edge A S B").unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn duplicate_node_lines_are_idempotent() {
        let g = from_text("node A\nnode A\n").unwrap();
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_text("node A\nbogus X\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        for bad in [
            "node",
            "node A B",
            "edge A B",
            "ontology",
            "ontology a\nontology b",
            "node \"unterminated",
            "node \"bad\\escape\"",
        ] {
            assert!(from_text(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = from_text("").unwrap();
        assert!(g.is_empty());
        assert_eq!(g.name(), "unnamed");
    }
}
