//! Summary statistics for ontology graphs — used by the viewer, the
//! bench harness and EXPERIMENTS.md reporting.

use std::collections::HashMap;

use crate::graph::OntGraph;

/// Structural summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Live node count.
    pub nodes: usize,
    /// Live edge count.
    pub edges: usize,
    /// Edge-label histogram, sorted by label.
    pub edge_label_counts: Vec<(String, usize)>,
    /// Maximum out-degree over live nodes.
    pub max_out_degree: usize,
    /// Maximum in-degree over live nodes.
    pub max_in_degree: usize,
    /// Mean degree (in+out) per node; 0.0 for the empty graph.
    pub mean_degree: f64,
    /// Count of isolated nodes (no live incident edges).
    pub isolated_nodes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &OntGraph) -> GraphStats {
        let mut label_counts: HashMap<&str, usize> = HashMap::new();
        for e in g.edges() {
            *label_counts.entry(e.label).or_insert(0) += 1;
        }
        let mut edge_label_counts: Vec<(String, usize)> =
            label_counts.into_iter().map(|(l, c)| (l.to_string(), c)).collect();
        edge_label_counts.sort();

        let mut max_out = 0;
        let mut max_in = 0;
        let mut isolated = 0;
        for n in g.node_ids() {
            let o = g.out_degree(n);
            let i = g.in_degree(n);
            max_out = max_out.max(o);
            max_in = max_in.max(i);
            if o + i == 0 {
                isolated += 1;
            }
        }
        let nodes = g.node_count();
        let edges = g.edge_count();
        GraphStats {
            nodes,
            edges,
            edge_label_counts,
            max_out_degree: max_out,
            max_in_degree: max_in,
            mean_degree: if nodes == 0 { 0.0 } else { 2.0 * edges as f64 / nodes as f64 },
            isolated_nodes: isolated,
        }
    }

    /// One-line human-readable rendering.
    pub fn summary(&self) -> String {
        format!(
            "{} nodes, {} edges, {} edge labels, mean degree {:.2}, {} isolated",
            self.nodes,
            self.edges,
            self.edge_label_counts.len(),
            self.mean_degree,
            self.isolated_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_graph() {
        let g = OntGraph::new("t");
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.isolated_nodes, 0);
    }

    #[test]
    fn stats_counts_and_histogram() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.ensure_edge_by_labels("C", "S", "B").unwrap();
        g.ensure_edge_by_labels("P", "A", "A").unwrap();
        g.add_node("Lonely").unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 3);
        assert_eq!(s.edge_label_counts, vec![("A".into(), 1), ("S".into(), 2)]);
        assert_eq!(s.max_in_degree, 2); // B
        assert_eq!(s.isolated_nodes, 1);
        assert!((s.mean_degree - 6.0 / 5.0).abs() < 1e-9);
        assert!(s.summary().contains("5 nodes"));
    }

    #[test]
    fn stats_ignore_tombstones() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("A", "S", "B").unwrap();
        g.delete_node_by_label("A").unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.edges, 0);
        assert_eq!(s.isolated_nodes, 1);
    }
}
