//! Minimal XML interchange for ontology graphs.
//!
//! §2.1 of the paper: "We accept ontologies based on IDL specifications
//! and XML-based documents, as well as simple adjacency list
//! representations." This module implements the XML leg with a small,
//! self-contained parser covering the subset we emit:
//!
//! ```xml
//! <?xml version="1.0"?>
//! <ontology name="carrier">
//!   <node label="Car"/>
//!   <node label="Vehicle">
//!     <node label="SUV" rel="SubclassOf"/>   <!-- nested ⇒ edge child→parent -->
//!   </node>
//!   <edge from="Car" label="SubclassOf" to="Vehicle"/>
//! </ontology>
//! ```
//!
//! Supported XML features: elements, attributes (single or double
//! quoted), self-closing tags, comments, an optional XML declaration, and
//! the five predefined entities. Nested `<node>` elements express an edge
//! from the child to the enclosing parent, labeled by the child's `rel`
//! attribute (default `SubclassOf`) — the natural rendering of a
//! hierarchical XML document as a specialisation tree.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::error::GraphError;
use crate::graph::OntGraph;
use crate::rel;
use crate::Result;

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Serialises `g` as flat XML (`<node>` then `<edge>` elements).
pub fn to_xml(g: &OntGraph) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n");
    let _ = writeln!(out, "<ontology name=\"{}\">", xml_escape(g.name()));
    for n in g.nodes() {
        let _ = writeln!(out, "  <node label=\"{}\"/>", xml_escape(n.label));
    }
    for e in g.edges() {
        let _ = writeln!(
            out,
            "  <edge from=\"{}\" label=\"{}\" to=\"{}\"/>",
            xml_escape(g.node_label(e.src).expect("live")),
            xml_escape(e.label),
            xml_escape(g.node_label(e.dst).expect("live")),
        );
    }
    out.push_str("</ontology>\n");
    out
}

// ----------------------------------------------------------------------
// Tokenizer / parser
// ----------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum XmlEvent {
    Open { name: String, attrs: HashMap<String, String>, self_closing: bool },
    Close { name: String },
}

struct XmlScanner<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> XmlScanner<'a> {
    fn new(src: &'a str) -> Self {
        XmlScanner { src, pos: 0, line: 1 }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(GraphError::Parse { line: self.line, msg: msg.into() })
    }

    fn bump_lines(&mut self, upto: usize) {
        self.line += self.src[self.pos..upto].matches('\n').count();
        self.pos = upto;
    }

    fn skip_ws_and_text(&mut self) {
        // we ignore character data between elements
        while self.pos < self.src.len() && !self.src[self.pos..].starts_with('<') {
            let next =
                self.src[self.pos..].find('<').map(|i| self.pos + i).unwrap_or(self.src.len());
            self.bump_lines(next);
        }
    }

    fn next_event(&mut self) -> Result<Option<XmlEvent>> {
        loop {
            self.skip_ws_and_text();
            if self.pos >= self.src.len() {
                return Ok(None);
            }
            let rest = &self.src[self.pos..];
            if rest.starts_with("<?") {
                match rest.find("?>") {
                    Some(end) => {
                        self.bump_lines(self.pos + end + 2);
                        continue;
                    }
                    None => return self.err("unterminated XML declaration"),
                }
            }
            if rest.starts_with("<!--") {
                match rest.find("-->") {
                    Some(end) => {
                        self.bump_lines(self.pos + end + 3);
                        continue;
                    }
                    None => return self.err("unterminated comment"),
                }
            }
            if rest.starts_with("</") {
                let end = match rest.find('>') {
                    Some(e) => e,
                    None => return self.err("unterminated close tag"),
                };
                let name = rest[2..end].trim().to_string();
                self.bump_lines(self.pos + end + 1);
                return Ok(Some(XmlEvent::Close { name }));
            }
            // open tag
            let end = match rest.find('>') {
                Some(e) => e,
                None => return self.err("unterminated tag"),
            };
            let inner = &rest[1..end];
            let (inner, self_closing) = match inner.strip_suffix('/') {
                Some(trimmed) => (trimmed, true),
                None => (inner, false),
            };
            let mut parts = inner.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("").trim().to_string();
            if name.is_empty() {
                return self.err("empty tag name");
            }
            let attrs = match parts.next() {
                Some(a) => self.parse_attrs(a)?,
                None => HashMap::new(),
            };
            self.bump_lines(self.pos + end + 1);
            return Ok(Some(XmlEvent::Open { name, attrs, self_closing }));
        }
    }

    fn parse_attrs(&self, s: &str) -> Result<HashMap<String, String>> {
        let mut attrs = HashMap::new();
        let b = s.as_bytes();
        let mut i = 0;
        while i < b.len() {
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            if i >= b.len() {
                break;
            }
            let key_start = i;
            while i < b.len() && b[i] as char != '=' && !(b[i] as char).is_whitespace() {
                i += 1;
            }
            let key = s[key_start..i].to_string();
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            if i >= b.len() || b[i] as char != '=' {
                return self.err(format!("attribute {key:?} missing '='"));
            }
            i += 1;
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            if i >= b.len() || (b[i] as char != '"' && b[i] as char != '\'') {
                return self.err(format!("attribute {key:?} value must be quoted"));
            }
            let quote = b[i] as char;
            i += 1;
            let val_start = i;
            while i < b.len() && b[i] as char != quote {
                i += 1;
            }
            if i >= b.len() {
                return self.err(format!("unterminated value for attribute {key:?}"));
            }
            let value = unescape_entities(&s[val_start..i], self.line)?;
            i += 1;
            if attrs.insert(key.clone(), value).is_some() {
                return self.err(format!("duplicate attribute {key:?}"));
            }
        }
        Ok(attrs)
    }
}

fn unescape_entities(s: &str, line: usize) -> Result<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi =
            rest.find(';').ok_or(GraphError::Parse { line, msg: "unterminated entity".into() })?;
        match &rest[..=semi] {
            "&amp;" => out.push('&'),
            "&lt;" => out.push('<'),
            "&gt;" => out.push('>'),
            "&quot;" => out.push('"'),
            "&apos;" => out.push('\''),
            other => {
                return Err(GraphError::Parse { line, msg: format!("unknown entity {other}") })
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parses the XML ontology format into a consistent-mode graph.
pub fn from_xml(input: &str) -> Result<OntGraph> {
    let mut scanner = XmlScanner::new(input);
    let mut g = OntGraph::new("unnamed");
    // Stack of open elements: (element name, node label if it's a <node>).
    let mut stack: Vec<(String, Option<String>)> = Vec::new();
    let mut saw_root = false;

    while let Some(ev) = scanner.next_event()? {
        match ev {
            XmlEvent::Open { name, attrs, self_closing } => match name.as_str() {
                "ontology" => {
                    if saw_root {
                        return Err(GraphError::Parse {
                            line: scanner.line,
                            msg: "multiple <ontology> roots".into(),
                        });
                    }
                    saw_root = true;
                    if let Some(n) = attrs.get("name") {
                        g.set_name(n);
                    }
                    if !self_closing {
                        stack.push(("ontology".into(), None));
                    }
                }
                "node" => {
                    if !saw_root {
                        return Err(GraphError::Parse {
                            line: scanner.line,
                            msg: "<node> outside <ontology>".into(),
                        });
                    }
                    let label = attrs.get("label").cloned().ok_or(GraphError::Parse {
                        line: scanner.line,
                        msg: "<node> missing label attribute".into(),
                    })?;
                    g.ensure_node(&label).map_err(|e| GraphError::Parse {
                        line: scanner.line,
                        msg: e.to_string(),
                    })?;
                    // nested node ⇒ edge child -> parent
                    if let Some((_, Some(parent))) = stack.iter().rev().find(|(n, _)| n == "node") {
                        let relation = attrs
                            .get("rel")
                            .cloned()
                            .unwrap_or_else(|| rel::SUBCLASS_OF.to_string());
                        let parent = parent.clone();
                        g.ensure_edge_by_labels(&label, &relation, &parent).map_err(|e| {
                            GraphError::Parse { line: scanner.line, msg: e.to_string() }
                        })?;
                    }
                    if !self_closing {
                        stack.push(("node".into(), Some(label)));
                    }
                }
                "edge" => {
                    if !saw_root {
                        return Err(GraphError::Parse {
                            line: scanner.line,
                            msg: "<edge> outside <ontology>".into(),
                        });
                    }
                    let get = |k: &str| {
                        attrs.get(k).cloned().ok_or(GraphError::Parse {
                            line: scanner.line,
                            msg: format!("<edge> missing {k} attribute"),
                        })
                    };
                    let from = get("from")?;
                    let label = get("label")?;
                    let to = get("to")?;
                    g.ensure_edge_by_labels(&from, &label, &to).map_err(|e| GraphError::Parse {
                        line: scanner.line,
                        msg: e.to_string(),
                    })?;
                    if !self_closing {
                        stack.push(("edge".into(), None));
                    }
                }
                other => {
                    return Err(GraphError::Parse {
                        line: scanner.line,
                        msg: format!("unexpected element <{other}>"),
                    })
                }
            },
            XmlEvent::Close { name } => match stack.pop() {
                Some((open, _)) if open == name => {}
                Some((open, _)) => {
                    return Err(GraphError::Parse {
                        line: scanner.line,
                        msg: format!("mismatched </{name}>, expected </{open}>"),
                    })
                }
                None => {
                    return Err(GraphError::Parse {
                        line: scanner.line,
                        msg: format!("stray </{name}>"),
                    })
                }
            },
        }
    }
    if !stack.is_empty() {
        return Err(GraphError::Parse {
            line: scanner.line,
            msg: format!("unclosed <{}>", stack.last().expect("non-empty").0),
        });
    }
    if !saw_root {
        return Err(GraphError::Parse { line: scanner.line, msg: "no <ontology> root".into() });
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut g = OntGraph::new("carrier");
        g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Vehicle").unwrap();
        g.add_node("Lonely").unwrap();
        let xml = to_xml(&g);
        let g2 = from_xml(&xml).unwrap();
        assert_eq!(g2.name(), "carrier");
        assert!(g.same_shape(&g2));
    }

    #[test]
    fn roundtrip_special_characters() {
        let mut g = OntGraph::new("a&b");
        g.ensure_edge_by_labels("R&D <dept>", "uses \"things\"", "Bob's lab").unwrap();
        let xml = to_xml(&g);
        let g2 = from_xml(&xml).unwrap();
        assert!(g.same_shape(&g2));
        assert_eq!(g2.name(), "a&b");
    }

    #[test]
    fn nested_nodes_create_edges() {
        let xml = r#"<?xml version="1.0"?>
<!-- a hierarchy -->
<ontology name="factory">
  <node label="Vehicle">
    <node label="Car">
      <node label="SUV"/>
    </node>
    <node label="Truck" rel="SubclassOf"/>
    <node label="Price" rel="AttributeOf"/>
  </node>
</ontology>"#;
        let g = from_xml(xml).unwrap();
        assert_eq!(g.node_count(), 5);
        assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
        assert!(g.has_edge("SUV", "SubclassOf", "Car"));
        assert!(g.has_edge("Truck", "SubclassOf", "Vehicle"));
        assert!(g.has_edge("Price", "AttributeOf", "Vehicle"));
    }

    #[test]
    fn single_quoted_attributes() {
        let g = from_xml("<ontology name='x'><node label='A'/></ontology>").unwrap();
        assert_eq!(g.name(), "x");
        assert!(g.contains_label("A"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "<node label=\"A\"/>",                              // outside root
            "<ontology><weird/></ontology>",                    // unknown element
            "<ontology><node/></ontology>",                     // missing label
            "<ontology><edge from=\"a\" to=\"b\"/></ontology>", // missing label
            "<ontology>",                                       // unclosed
            "<ontology></wrong>",                               // mismatch
            "<ontology name=\"x\" name=\"y\"/>",                // duplicate attribute
            "<ontology name=unquoted/>",                        // unquoted value
            "<ontology name=\"&bogus;\"/>",                     // unknown entity
            "<ontology/><ontology/>",                           // two roots
        ] {
            assert!(from_xml(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn declaration_and_comments_ignored() {
        let xml = "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n<!-- hi -->\n<ontology name=\"g\"/>";
        let g = from_xml(xml).unwrap();
        assert_eq!(g.name(), "g");
        assert!(g.is_empty());
    }

    #[test]
    fn error_line_numbers_advance() {
        let xml = "<ontology name=\"g\">\n  <node label=\"A\"/>\n  <bogus/>\n</ontology>";
        match from_xml(xml).unwrap_err() {
            GraphError::Parse { line, .. } => assert!(line >= 3, "line was {line}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
