//! Immutable, share-everywhere frozen views of a graph.
//!
//! ONION's read traffic (query reformulation, closure, traversal) vastly
//! outweighs its write traffic (articulation maintenance), so the
//! concurrency model is snapshot isolation: writers mutate the live
//! [`OntGraph`] single-threaded as before, and readers run against a
//! [`GraphSnapshot`] — an immutable CSR-packed copy that is `Send +
//! Sync` and can be traversed from any number of threads with zero
//! locking. A [`SnapshotStore`] holds the *current* snapshot behind an
//! epoch counter and swaps it atomically on [`SnapshotStore::publish`],
//! so in-flight traversals keep the `Arc` of the epoch they started on
//! and are never torn by a concurrent mutation.
//!
//! Node and edge-label ids are **preserved** from the source graph
//! ([`NodeId`]s index the same arena slots, [`LabelId`]s the same
//! interner entries), so results computed on a snapshot are directly
//! comparable with — and identical to — results computed on the live
//! graph it was taken from.
//!
//! Adjacency is stored twice (out- and in-) in compressed-sparse-row
//! form with each node's incident list sorted by `(label, neighbour)`:
//! label-filtered neighbour iteration is a binary-searched slice, full
//! iteration is a cache-friendly linear scan, and the sort makes every
//! traversal order deterministic regardless of the mutation history of
//! the source graph.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::graph::{NodeId, OntGraph};
use crate::hash::FxHashMap;
use crate::label::{Interner, LabelId};
use crate::traverse::{Direction, EdgeFilter, ResolvedFilter};

/// One CSR half (out- or in-edges): `start[n]..start[n + 1]` indexes the
/// `(label, neighbour)` entries of node `n`, sorted by label then
/// neighbour id.
#[derive(Debug, Clone, Default)]
struct Csr {
    start: Vec<u32>,
    adj: Vec<(LabelId, NodeId)>,
}

impl Csr {
    fn entries(&self, n: NodeId) -> &[(LabelId, NodeId)] {
        match self.start.get(n.index()..n.index() + 2) {
            Some(w) => &self.adj[w[0] as usize..w[1] as usize],
            None => &[],
        }
    }

    /// The contiguous `label` run within `n`'s sorted entries.
    fn labeled(&self, n: NodeId, label: LabelId) -> &[(LabelId, NodeId)] {
        let all = self.entries(n);
        let lo = all.partition_point(|&(l, _)| l < label);
        let hi = lo + all[lo..].partition_point(|&(l, _)| l == label);
        &all[lo..hi]
    }
}

/// An immutable frozen view of an [`OntGraph`] at one epoch.
///
/// Cheap to share (`Arc`), safe to traverse from any thread, and
/// guaranteed not to change under a reader: mutations go to the live
/// graph and become visible only through the *next* snapshot.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    name: String,
    epoch: u64,
    interner: Interner,
    /// Per arena slot: the node's label, or `None` for tombstones.
    labels: Vec<Option<LabelId>>,
    out: Csr,
    inc: Csr,
    by_label: FxHashMap<LabelId, Vec<NodeId>>,
    live_nodes: usize,
    live_edges: usize,
}

impl GraphSnapshot {
    /// Freezes `g`. Prefer [`OntGraph::snapshot`].
    pub fn of(g: &OntGraph) -> Self {
        let cap = g.node_capacity();
        let mut labels: Vec<Option<LabelId>> = vec![None; cap];
        let mut by_label: FxHashMap<LabelId, Vec<NodeId>> = FxHashMap::default();
        for n in g.node_ids() {
            let lid = g.node_label_id(n).expect("live node has a label");
            labels[n.index()] = Some(lid);
            by_label.entry(lid).or_default().push(n);
        }
        let out = Self::build_csr(g, cap, true);
        let inc = Self::build_csr(g, cap, false);
        GraphSnapshot {
            name: g.name().to_string(),
            epoch: 0,
            interner: g.interner().clone(),
            labels,
            out,
            inc,
            by_label,
            live_nodes: g.node_count(),
            live_edges: g.edge_count(),
        }
    }

    fn build_csr(g: &OntGraph, cap: usize, out: bool) -> Csr {
        let degree = |n: NodeId| if out { g.out_degree(n) } else { g.in_degree(n) };
        let mut start = vec![0u32; cap + 1];
        for n in g.node_ids() {
            start[n.index() + 1] = degree(n) as u32;
        }
        for i in 0..cap {
            start[i + 1] += start[i];
        }
        let mut adj = vec![(LabelId(0), NodeId(0)); start[cap] as usize];
        for n in g.node_ids() {
            let range = start[n.index()] as usize..start[n.index() + 1] as usize;
            let slot = &mut adj[range];
            if out {
                for (dst, (_, lid, other)) in slot.iter_mut().zip(g.out_edge_entries(n)) {
                    *dst = (lid, other);
                }
            } else {
                for (dst, (_, lid, other)) in slot.iter_mut().zip(g.in_edge_entries(n)) {
                    *dst = (lid, other);
                }
            }
            slot.sort_unstable();
        }
        Csr { start, adj }
    }

    fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// The source graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The store epoch this snapshot was published at (0 for snapshots
    /// taken directly via [`OntGraph::snapshot`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live nodes at freeze time.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges at freeze time.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound (exclusive) for [`NodeId::index`], matching the
    /// source graph's [`OntGraph::node_capacity`] at freeze time.
    pub fn node_capacity(&self) -> usize {
        self.labels.len()
    }

    /// Read access to the frozen interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Looks up a label id without interning.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.interner.get(label)
    }

    /// Resolves an interned label id to its string.
    pub fn resolve(&self, id: LabelId) -> &str {
        self.interner.resolve(id)
    }

    /// True if `id` was a live node at freeze time.
    pub fn is_live_node(&self, id: NodeId) -> bool {
        self.labels.get(id.index()).map(|l| l.is_some()).unwrap_or(false)
    }

    /// The label of a (frozen-live) node.
    pub fn node_label(&self, id: NodeId) -> Option<&str> {
        self.node_label_id(id).map(|l| self.interner.resolve(l))
    }

    /// The interned label id of a (frozen-live) node.
    pub fn node_label_id(&self, id: NodeId) -> Option<LabelId> {
        self.labels.get(id.index()).copied().flatten()
    }

    /// The first live node carrying `label` (lowest id), if any.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let lid = self.interner.get(label)?;
        self.by_label.get(&lid).and_then(|v| v.first().copied())
    }

    /// All live nodes carrying `label`, ascending by id.
    pub fn nodes_by_label(&self, label: &str) -> &[NodeId] {
        self.interner
            .get(label)
            .and_then(|lid| self.by_label.get(&lid))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates all frozen-live node ids, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.labels.iter().enumerate().filter(|(_, l)| l.is_some()).map(|(i, _)| NodeId(i as u32))
    }

    /// The out-edges of `n` as sorted `(label, dst)` entries.
    pub fn out_entries(&self, n: NodeId) -> &[(LabelId, NodeId)] {
        self.out.entries(n)
    }

    /// The in-edges of `n` as sorted `(label, src)` entries.
    pub fn in_entries(&self, n: NodeId) -> &[(LabelId, NodeId)] {
        self.inc.entries(n)
    }

    /// Out-neighbours of `n` via `label` edges (binary-searched run).
    pub fn out_neighbors_by_id(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.out.labeled(n, label).iter().map(|&(_, m)| m)
    }

    /// In-neighbours of `n` via `label` edges (binary-searched run).
    pub fn in_neighbors_by_id(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.inc.labeled(n, label).iter().map(|&(_, m)| m)
    }

    /// Resolves an [`EdgeFilter`] against the frozen interner.
    pub fn resolve_filter(&self, filter: &EdgeFilter) -> ResolvedFilter {
        match filter {
            EdgeFilter::All => ResolvedFilter::All,
            EdgeFilter::Labels(ls) => {
                ResolvedFilter::Ids(ls.iter().filter_map(|l| self.interner.get(l)).collect())
            }
        }
    }

    /// Visits each admitted neighbour of `n` (the snapshot counterpart
    /// of the traversal kernel in [`crate::traverse`]).
    #[inline]
    pub fn for_each_neighbor(
        &self,
        n: NodeId,
        dir: Direction,
        filter: &ResolvedFilter,
        mut f: impl FnMut(NodeId),
    ) {
        let fwd = matches!(dir, Direction::Forward | Direction::Both);
        let bwd = matches!(dir, Direction::Backward | Direction::Both);
        match filter {
            ResolvedFilter::All => {
                if fwd {
                    for &(_, m) in self.out.entries(n) {
                        f(m);
                    }
                }
                if bwd {
                    for &(_, m) in self.inc.entries(n) {
                        f(m);
                    }
                }
            }
            ResolvedFilter::Ids(ids) if ids.len() == 1 => {
                if fwd {
                    for &(_, m) in self.out.labeled(n, ids[0]) {
                        f(m);
                    }
                }
                if bwd {
                    for &(_, m) in self.inc.labeled(n, ids[0]) {
                        f(m);
                    }
                }
            }
            ResolvedFilter::Ids(ids) => {
                if fwd {
                    for &(lid, m) in self.out.entries(n) {
                        if ids.contains(&lid) {
                            f(m);
                        }
                    }
                }
                if bwd {
                    for &(lid, m) in self.inc.entries(n) {
                        if ids.contains(&lid) {
                            f(m);
                        }
                    }
                }
            }
        }
    }

    /// Breadth-first order from `start` (inclusive) — deterministic:
    /// neighbours are visited in sorted `(label, id)` order.
    pub fn bfs(&self, start: NodeId, dir: Direction, filter: &ResolvedFilter) -> Vec<NodeId> {
        let mut order = Vec::new();
        if !self.is_live_node(start) {
            return order;
        }
        let mut visited = vec![false; self.node_capacity()];
        visited[start.index()] = true;
        order.push(start);
        let mut scan = 0;
        while scan < order.len() {
            let n = order[scan];
            scan += 1;
            self.for_each_neighbor(n, dir, filter, |m| {
                if !visited[m.index()] {
                    visited[m.index()] = true;
                    order.push(m);
                }
            });
        }
        order
    }

    /// All pairs `(s, m)` with a non-empty admitted path `s →* m`, for
    /// every start in `starts`, in `(starts order, discovery order)` —
    /// the unit of work the parallel executor partitions over. The
    /// caller provides the per-thread scratch implicitly: each call owns
    /// its stamp vector.
    pub fn closure_pairs_from(
        &self,
        starts: &[NodeId],
        filter: &ResolvedFilter,
    ) -> Vec<(NodeId, NodeId)> {
        let cap = self.node_capacity();
        let mut pairs = Vec::new();
        let mut stamp: Vec<u32> = vec![0; cap];
        let mut epoch: u32 = 0;
        let mut frontier: Vec<NodeId> = Vec::new();
        for &start in starts {
            if !self.is_live_node(start) {
                continue;
            }
            epoch += 1;
            frontier.clear();
            frontier.push(start);
            let mut scan = 0;
            // `start` is deliberately not pre-stamped so cycles back to
            // it are reported, matching `closure::transitive_pairs`
            while scan < frontier.len() {
                let n = frontier[scan];
                scan += 1;
                self.for_each_neighbor(n, Direction::Forward, filter, |m| {
                    if stamp[m.index()] != epoch {
                        stamp[m.index()] = epoch;
                        pairs.push((start, m));
                        frontier.push(m);
                    }
                });
            }
        }
        pairs
    }
}

impl OntGraph {
    /// Freezes the current state into an immutable, thread-shareable
    /// [`GraphSnapshot`] (epoch 0; use a [`SnapshotStore`] for epoch
    /// management).
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot::of(self)
    }
}

/// Epoch-swapped holder of the current [`GraphSnapshot`].
///
/// Readers call [`SnapshotStore::load`] — a brief lock to clone an
/// `Arc` — and then traverse entirely lock-free; they keep their epoch
/// for as long as they hold the `Arc`. Writers mutate the live graph
/// (which the store does **not** own) and make the result visible with
/// [`SnapshotStore::publish`]; the snapshot is built *before* the swap
/// lock is taken, so readers are never blocked by a rebuild.
#[derive(Debug)]
pub struct SnapshotStore {
    current: Mutex<Arc<GraphSnapshot>>,
    epoch: AtomicU64,
}

impl SnapshotStore {
    /// A store whose epoch-0 snapshot freezes `g`'s current state.
    pub fn new(g: &OntGraph) -> Self {
        SnapshotStore { current: Mutex::new(Arc::new(g.snapshot())), epoch: AtomicU64::new(0) }
    }

    /// The current snapshot. The returned `Arc` stays valid (and
    /// unchanged) for as long as the caller holds it, regardless of
    /// later publishes.
    pub fn load(&self) -> Arc<GraphSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot store lock"))
    }

    /// The epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Freezes `g` and swaps it in as the new current snapshot,
    /// returning it. Bumps the epoch. The (expensive) freeze happens
    /// before the lock; the epoch assignment and the swap happen
    /// together under it, so concurrent publishers are fully serialised
    /// — the stored epoch sequence is strictly increasing and
    /// `load().epoch()` always matches the latest publish. Readers only
    /// ever observe a fully built snapshot.
    pub fn publish(&self, g: &OntGraph) -> Arc<GraphSnapshot> {
        let frozen = g.snapshot();
        let mut current = self.current.lock().expect("snapshot store lock");
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = Arc::new(frozen.with_epoch(epoch));
        *current = Arc::clone(&snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    fn hierarchy() -> OntGraph {
        let mut g = OntGraph::new("t");
        for (a, b) in [("SUV", "Car"), ("Car", "Vehicle"), ("Truck", "Vehicle")] {
            g.ensure_edge_by_labels(a, rel::SUBCLASS_OF, b).unwrap();
        }
        g.ensure_edge_by_labels("Price", rel::ATTRIBUTE_OF, "Car").unwrap();
        g
    }

    #[test]
    fn snapshot_mirrors_counts_ids_and_labels() {
        let g = hierarchy();
        let s = g.snapshot();
        assert_eq!(s.node_count(), g.node_count());
        assert_eq!(s.edge_count(), g.edge_count());
        assert_eq!(s.node_capacity(), g.node_capacity());
        for n in g.node_ids() {
            assert_eq!(s.node_label(n), g.node_label(n));
            assert_eq!(s.node_label_id(n), g.node_label_id(n));
        }
        assert_eq!(s.node_by_label("Car"), g.node_by_label("Car"));
        assert_eq!(s.nodes_by_label("Car"), g.nodes_by_label("Car"));
    }

    #[test]
    fn snapshot_adjacency_agrees_with_graph() {
        let g = hierarchy();
        let s = g.snapshot();
        let sub = g.label_id(rel::SUBCLASS_OF).unwrap();
        for n in g.node_ids() {
            let mut from_g: Vec<NodeId> = g.out_neighbors_by_id(n, sub).collect();
            from_g.sort_unstable();
            let from_s: Vec<NodeId> = s.out_neighbors_by_id(n, sub).collect();
            assert_eq!(from_s, from_g);
            let mut in_g: Vec<NodeId> = g.in_neighbors_by_id(n, sub).collect();
            in_g.sort_unstable();
            let in_s: Vec<NodeId> = s.in_neighbors_by_id(n, sub).collect();
            assert_eq!(in_s, in_g);
            assert_eq!(s.out_entries(n).len(), g.out_degree(n));
            assert_eq!(s.in_entries(n).len(), g.in_degree(n));
        }
    }

    #[test]
    fn snapshot_excludes_tombstones() {
        let mut g = hierarchy();
        g.delete_node_by_label("Car").unwrap();
        let s = g.snapshot();
        assert_eq!(s.node_count(), g.node_count());
        assert_eq!(s.edge_count(), g.edge_count());
        assert!(s.node_by_label("Car").is_none());
        let dead = g.node_capacity(); // capacity spans tombstones too
        assert_eq!(s.node_capacity(), dead);
        assert_eq!(s.node_ids().count(), g.node_count());
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let mut g = hierarchy();
        let s = g.snapshot();
        g.delete_node_by_label("Vehicle").unwrap();
        g.ensure_edge_by_labels("Bike", rel::SUBCLASS_OF, "Car").unwrap();
        // the frozen view still sees the original graph
        assert!(s.node_by_label("Vehicle").is_some());
        assert!(s.node_by_label("Bike").is_none());
        let car = s.node_by_label("Car").unwrap();
        let sub = s.label_id(rel::SUBCLASS_OF).unwrap();
        let parents: Vec<_> = s.out_neighbors_by_id(car, sub).collect();
        assert_eq!(parents, vec![s.node_by_label("Vehicle").unwrap()]);
    }

    #[test]
    fn bfs_on_snapshot_matches_graph_bfs_as_set() {
        let g = hierarchy();
        let s = g.snapshot();
        let root = g.node_by_label("Vehicle").unwrap();
        let rf = s.resolve_filter(&EdgeFilter::label(rel::SUBCLASS_OF));
        let from_s = s.bfs(root, Direction::Backward, &rf);
        let from_g = crate::traverse::bfs(
            &g,
            root,
            Direction::Backward,
            &EdgeFilter::label(rel::SUBCLASS_OF),
        );
        let mut a = from_s.clone();
        let mut b = from_g.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(from_s.len(), 4, "Vehicle, Car, Truck, SUV");
    }

    #[test]
    fn closure_pairs_match_transitive_pairs() {
        let g = hierarchy();
        let s = g.snapshot();
        let filter = EdgeFilter::label(rel::SUBCLASS_OF);
        let starts: Vec<NodeId> = s.node_ids().collect();
        let mut from_s = s.closure_pairs_from(&starts, &s.resolve_filter(&filter));
        from_s.sort_unstable();
        let mut from_g: Vec<(NodeId, NodeId)> =
            crate::closure::transitive_pairs(&g, &filter).into_iter().collect();
        from_g.sort_unstable();
        assert_eq!(from_s, from_g);
    }

    #[test]
    fn store_epochs_advance_and_old_readers_keep_their_view() {
        let mut g = hierarchy();
        let store = SnapshotStore::new(&g);
        assert_eq!(store.epoch(), 0);
        let before = store.load();
        g.ensure_edge_by_labels("Bike", rel::SUBCLASS_OF, "Vehicle").unwrap();
        let after = store.publish(&g);
        assert_eq!(store.epoch(), 1);
        assert_eq!(after.epoch(), 1);
        assert_eq!(before.epoch(), 0);
        assert!(before.node_by_label("Bike").is_none(), "old epoch untouched");
        assert!(after.node_by_label("Bike").is_some());
        assert_eq!(store.load().epoch(), 1);
    }

    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphSnapshot>();
        assert_send_sync::<SnapshotStore>();
    }
}
