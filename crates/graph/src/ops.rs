//! The four graph transformation primitives as replayable values.
//!
//! §3 of the paper defines node addition (`NA`), node deletion (`ND`),
//! edge addition (`EA`) and edge deletion (`ED`). [`GraphOp`] reifies them
//! in *label-addressed* form — the paper's own convention for consistent
//! ontologies, where a term's label identifies its node — so that an op
//! stream recorded against one graph can be replayed against another
//! (incremental articulation maintenance, §5.3) or logged for audit.

use crate::graph::OntGraph;
use crate::{GraphError, Result};

/// A single label-addressed transformation primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphOp {
    /// `NA`: add a node, optionally with adjacent edges
    /// `{(N, αᵢ, mⱼ)}` as in the paper's definition.
    NodeAdd {
        /// Label of the new node.
        label: String,
        /// Outgoing adjacent edges `(edge-label, target-node-label)`.
        out_edges: Vec<(String, String)>,
        /// Incoming adjacent edges `(source-node-label, edge-label)`.
        in_edges: Vec<(String, String)>,
    },
    /// `ND`: delete the node carrying `label` (and incident edges).
    ///
    /// The op carries the node's neighbourhood *captured at delete time*
    /// so it is lossless: [`GraphOp::inverse`] can rebuild the node and
    /// every incident edge from the op alone. Blind construction via
    /// [`GraphOp::node_delete`] leaves the capture empty (the inverse
    /// then restores a bare node); the journal always records the
    /// captured form (see [`GraphOp::capture_node_delete`]).
    NodeDelete {
        /// Label of the node to delete.
        label: String,
        /// Outgoing edges `(edge-label, target-node-label)` the node had
        /// when it was deleted.
        out_edges: Vec<(String, String)>,
        /// Incoming edges `(source-node-label, edge-label)` the node had
        /// when it was deleted.
        in_edges: Vec<(String, String)>,
    },
    /// `EA`: add the edge set `{(mᵢ, αⱼ, mₖ)}`.
    EdgeAdd {
        /// `(src-label, edge-label, dst-label)` triples to add.
        edges: Vec<(String, String, String)>,
    },
    /// `ED`: delete the edge set `{(mᵢ, αⱼ, mₖ)}`.
    EdgeDelete {
        /// `(src-label, edge-label, dst-label)` triples to remove.
        edges: Vec<(String, String, String)>,
    },
}

impl GraphOp {
    /// Shorthand for a bare node addition.
    pub fn node_add(label: impl Into<String>) -> Self {
        GraphOp::NodeAdd { label: label.into(), out_edges: Vec::new(), in_edges: Vec::new() }
    }

    /// Shorthand for a node addition with adjacent out-edges.
    pub fn node_add_with(
        label: impl Into<String>,
        out_edges: Vec<(String, String)>,
        in_edges: Vec<(String, String)>,
    ) -> Self {
        GraphOp::NodeAdd { label: label.into(), out_edges, in_edges }
    }

    /// Shorthand for a blind node deletion (no captured neighbourhood).
    pub fn node_delete(label: impl Into<String>) -> Self {
        GraphOp::NodeDelete { label: label.into(), out_edges: Vec::new(), in_edges: Vec::new() }
    }

    /// Shorthand for a single edge addition.
    pub fn edge_add(
        src: impl Into<String>,
        label: impl Into<String>,
        dst: impl Into<String>,
    ) -> Self {
        GraphOp::EdgeAdd { edges: vec![(src.into(), label.into(), dst.into())] }
    }

    /// Shorthand for a single edge deletion.
    pub fn edge_delete(
        src: impl Into<String>,
        label: impl Into<String>,
        dst: impl Into<String>,
    ) -> Self {
        GraphOp::EdgeDelete { edges: vec![(src.into(), label.into(), dst.into())] }
    }

    /// Applies the primitive to `g`.
    ///
    /// Application is **idempotent-friendly**: adding an already-present
    /// node or edge is a no-op rather than an error, because replayed
    /// journals routinely overlap with state the articulation generator
    /// has already produced. Deleting a missing element *is* an error —
    /// a delta that removes something unknown signals divergence.
    pub fn apply(&self, g: &mut OntGraph) -> Result<()> {
        match self {
            GraphOp::NodeAdd { label, out_edges, in_edges } => {
                let n = g.ensure_node(label)?;
                for (el, dst) in out_edges {
                    let d = g.ensure_node(dst)?;
                    g.ensure_edge(n, el, d)?;
                }
                for (src, el) in in_edges {
                    let s = g.ensure_node(src)?;
                    g.ensure_edge(s, el, n)?;
                }
                Ok(())
            }
            // The captured neighbourhood is for `inverse`; application
            // only needs the label (deletion cascades incident edges).
            GraphOp::NodeDelete { label, .. } => g.delete_node_by_label(label),
            GraphOp::EdgeAdd { edges } => {
                for (s, l, d) in edges {
                    g.ensure_edge_by_labels(s, l, d)?;
                }
                Ok(())
            }
            GraphOp::EdgeDelete { edges } => {
                for (s, l, d) in edges {
                    g.delete_edge_by_labels(s, l, d)?;
                }
                Ok(())
            }
        }
    }

    /// The inverse primitive. Every op is invertible: a `NodeDelete`
    /// inverts into the `NodeAdd` that restores the node plus its
    /// captured neighbourhood (empty for blind-constructed deletes,
    /// which then restore a bare node).
    pub fn inverse(&self) -> Option<GraphOp> {
        match self {
            // Deleting the node also removes the adjacent edges, so the
            // bare delete undoes the add in both cases.
            GraphOp::NodeAdd { label, .. } => Some(GraphOp::node_delete(label.clone())),
            GraphOp::NodeDelete { label, out_edges, in_edges } => Some(GraphOp::NodeAdd {
                label: label.clone(),
                out_edges: out_edges.clone(),
                in_edges: in_edges.clone(),
            }),
            GraphOp::EdgeAdd { edges } => Some(GraphOp::EdgeDelete { edges: edges.clone() }),
            GraphOp::EdgeDelete { edges } => Some(GraphOp::EdgeAdd { edges: edges.clone() }),
        }
    }

    /// Builds the **captured** `NodeDelete` op for `label`'s node: the
    /// full op `delete_node` journals, carrying the node's current
    /// neighbourhood so replay is lossless and `inverse` restores it.
    pub fn capture_node_delete(g: &OntGraph, label: &str) -> Result<GraphOp> {
        let n =
            g.node_by_label(label).ok_or_else(|| GraphError::NodeNotFound(label.to_string()))?;
        Ok(Self::capture_node_delete_at(g, n, label))
    }

    /// Id-addressed [`GraphOp::capture_node_delete`], for callers that
    /// already resolved the node (in multi-label mode the label alone is
    /// ambiguous).
    pub(crate) fn capture_node_delete_at(g: &OntGraph, n: crate::NodeId, label: &str) -> GraphOp {
        let out_edges = g
            .out_edges(n)
            .map(|e| (e.label.to_string(), g.node_label(e.dst).expect("live").to_string()))
            .collect();
        let in_edges = g
            .in_edges(n)
            .map(|e| (g.node_label(e.src).expect("live").to_string(), e.label.to_string()))
            .collect();
        GraphOp::NodeDelete { label: label.to_string(), out_edges, in_edges }
    }

    /// Labels this op touches (used by the maintenance engine to decide
    /// whether a source delta intersects the articulation, §5.3).
    pub fn touched_labels(&self) -> Vec<&str> {
        match self {
            GraphOp::NodeAdd { label, out_edges, in_edges } => {
                let mut v = vec![label.as_str()];
                v.extend(out_edges.iter().map(|(_, d)| d.as_str()));
                v.extend(in_edges.iter().map(|(s, _)| s.as_str()));
                v
            }
            GraphOp::NodeDelete { label, out_edges, in_edges } => {
                let mut v = vec![label.as_str()];
                v.extend(out_edges.iter().map(|(_, d)| d.as_str()));
                v.extend(in_edges.iter().map(|(s, _)| s.as_str()));
                v
            }
            GraphOp::EdgeAdd { edges } | GraphOp::EdgeDelete { edges } => {
                edges.iter().flat_map(|(s, _, d)| [s.as_str(), d.as_str()]).collect()
            }
        }
    }

    /// True if this op only adds (never removes) structure.
    pub fn is_additive(&self) -> bool {
        matches!(self, GraphOp::NodeAdd { .. } | GraphOp::EdgeAdd { .. })
    }
}

/// Applies a sequence of ops, stopping at the first error.
pub fn apply_all(g: &mut OntGraph, ops: &[GraphOp]) -> Result<usize> {
    for (i, op) in ops.iter().enumerate() {
        op.apply(g).map_err(|e| match e {
            GraphError::Parse { .. } => e,
            other => GraphError::Parse { line: i, msg: format!("op {i}: {other}") },
        })?;
    }
    Ok(ops.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_add_with_adjacent_edges() {
        let mut g = OntGraph::new("t");
        g.add_node("Vehicle").unwrap();
        let op = GraphOp::node_add_with(
            "Car",
            vec![("SubclassOf".into(), "Vehicle".into())],
            vec![("Price".into(), "AttributeOf".into())],
        );
        op.apply(&mut g).unwrap();
        assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
        assert!(g.has_edge("Price", "AttributeOf", "Car"));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn apply_is_idempotent_for_additions() {
        let mut g = OntGraph::new("t");
        let op = GraphOp::edge_add("A", "S", "B");
        op.apply(&mut g).unwrap();
        op.apply(&mut g).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn deletes_of_missing_elements_error() {
        let mut g = OntGraph::new("t");
        assert!(GraphOp::node_delete("ghost").apply(&mut g).is_err());
        assert!(GraphOp::edge_delete("a", "s", "b").apply(&mut g).is_err());
    }

    #[test]
    fn edge_ops_roundtrip_through_inverse() {
        let mut g = OntGraph::new("t");
        let add = GraphOp::edge_add("A", "S", "B");
        add.apply(&mut g).unwrap();
        let del = add.inverse().unwrap();
        del.apply(&mut g).unwrap();
        assert_eq!(g.edge_count(), 0);
        let re_add = del.inverse().unwrap();
        re_add.apply(&mut g).unwrap();
        assert!(g.has_edge("A", "S", "B"));
    }

    #[test]
    fn blind_node_delete_inverts_to_bare_node_add() {
        let inv = GraphOp::node_delete("X").inverse().unwrap();
        assert_eq!(inv, GraphOp::node_add("X"));
    }

    #[test]
    fn capture_node_delete_restores_neighbourhood() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("Car", "SubclassOf", "Vehicle").unwrap();
        g.ensure_edge_by_labels("Price", "AttributeOf", "Car").unwrap();
        let del = GraphOp::capture_node_delete(&g, "Car").unwrap();
        del.apply(&mut g).unwrap();
        assert_eq!(g.edge_count(), 0);
        del.inverse().unwrap().apply(&mut g).unwrap();
        assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
        assert!(g.has_edge("Price", "AttributeOf", "Car"));
    }

    #[test]
    fn journaled_node_delete_carries_capture() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("Car", "SubclassOf", "Vehicle").unwrap();
        g.enable_journal();
        g.delete_node_by_label("Car").unwrap();
        let journal = g.take_journal();
        let nd = journal.last().unwrap();
        match nd {
            GraphOp::NodeDelete { label, out_edges, .. } => {
                assert_eq!(label, "Car");
                assert_eq!(out_edges, &[("SubclassOf".to_string(), "Vehicle".to_string())]);
            }
            other => panic!("expected captured NodeDelete, got {other:?}"),
        }
        // The journaled op alone undoes the delete, edges included.
        nd.inverse().unwrap().apply(&mut g).unwrap();
        assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
    }

    #[test]
    fn touched_labels_cover_endpoints() {
        let op = GraphOp::edge_add("A", "S", "B");
        let mut t = op.touched_labels();
        t.sort_unstable();
        assert_eq!(t, vec!["A", "B"]);
        let op = GraphOp::node_add_with("N", vec![("e".into(), "X".into())], vec![]);
        assert!(op.touched_labels().contains(&"X"));
    }

    #[test]
    fn journal_replay_reproduces_graph() {
        let mut g = OntGraph::new("src");
        g.enable_journal();
        g.ensure_edge_by_labels("Car", "SubclassOf", "Vehicle").unwrap();
        g.ensure_edge_by_labels("Truck", "SubclassOf", "Vehicle").unwrap();
        g.delete_node_by_label("Truck").unwrap();
        let journal = g.take_journal();

        let mut replay = OntGraph::new("replay");
        apply_all(&mut replay, &journal).unwrap();
        assert!(replay.same_shape(&g));
    }

    #[test]
    fn apply_all_reports_failing_index() {
        let mut g = OntGraph::new("t");
        let ops = vec![GraphOp::edge_add("A", "S", "B"), GraphOp::node_delete("ghost")];
        let err = apply_all(&mut g, &ops).unwrap_err();
        assert!(err.to_string().contains("op 1"));
    }

    #[test]
    fn is_additive_classification() {
        assert!(GraphOp::node_add("x").is_additive());
        assert!(GraphOp::edge_add("a", "l", "b").is_additive());
        assert!(!GraphOp::node_delete("x").is_additive());
        assert!(!GraphOp::edge_delete("a", "l", "b").is_additive());
    }
}
