//! The four graph transformation primitives as replayable values.
//!
//! §3 of the paper defines node addition (`NA`), node deletion (`ND`),
//! edge addition (`EA`) and edge deletion (`ED`). [`GraphOp`] reifies them
//! in *label-addressed* form — the paper's own convention for consistent
//! ontologies, where a term's label identifies its node — so that an op
//! stream recorded against one graph can be replayed against another
//! (incremental articulation maintenance, §5.3) or logged for audit.

use crate::graph::OntGraph;
use crate::{GraphError, Result};

/// A single label-addressed transformation primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphOp {
    /// `NA`: add a node, optionally with adjacent edges
    /// `{(N, αᵢ, mⱼ)}` as in the paper's definition.
    NodeAdd {
        /// Label of the new node.
        label: String,
        /// Outgoing adjacent edges `(edge-label, target-node-label)`.
        out_edges: Vec<(String, String)>,
        /// Incoming adjacent edges `(source-node-label, edge-label)`.
        in_edges: Vec<(String, String)>,
    },
    /// `ND`: delete the node carrying `label` (and incident edges).
    NodeDelete {
        /// Label of the node to delete.
        label: String,
    },
    /// `EA`: add the edge set `{(mᵢ, αⱼ, mₖ)}`.
    EdgeAdd {
        /// `(src-label, edge-label, dst-label)` triples to add.
        edges: Vec<(String, String, String)>,
    },
    /// `ED`: delete the edge set `{(mᵢ, αⱼ, mₖ)}`.
    EdgeDelete {
        /// `(src-label, edge-label, dst-label)` triples to remove.
        edges: Vec<(String, String, String)>,
    },
}

impl GraphOp {
    /// Shorthand for a bare node addition.
    pub fn node_add(label: impl Into<String>) -> Self {
        GraphOp::NodeAdd { label: label.into(), out_edges: Vec::new(), in_edges: Vec::new() }
    }

    /// Shorthand for a node addition with adjacent out-edges.
    pub fn node_add_with(
        label: impl Into<String>,
        out_edges: Vec<(String, String)>,
        in_edges: Vec<(String, String)>,
    ) -> Self {
        GraphOp::NodeAdd { label: label.into(), out_edges, in_edges }
    }

    /// Shorthand for a node deletion.
    pub fn node_delete(label: impl Into<String>) -> Self {
        GraphOp::NodeDelete { label: label.into() }
    }

    /// Shorthand for a single edge addition.
    pub fn edge_add(
        src: impl Into<String>,
        label: impl Into<String>,
        dst: impl Into<String>,
    ) -> Self {
        GraphOp::EdgeAdd { edges: vec![(src.into(), label.into(), dst.into())] }
    }

    /// Shorthand for a single edge deletion.
    pub fn edge_delete(
        src: impl Into<String>,
        label: impl Into<String>,
        dst: impl Into<String>,
    ) -> Self {
        GraphOp::EdgeDelete { edges: vec![(src.into(), label.into(), dst.into())] }
    }

    /// Applies the primitive to `g`.
    ///
    /// Application is **idempotent-friendly**: adding an already-present
    /// node or edge is a no-op rather than an error, because replayed
    /// journals routinely overlap with state the articulation generator
    /// has already produced. Deleting a missing element *is* an error —
    /// a delta that removes something unknown signals divergence.
    pub fn apply(&self, g: &mut OntGraph) -> Result<()> {
        match self {
            GraphOp::NodeAdd { label, out_edges, in_edges } => {
                let n = g.ensure_node(label)?;
                for (el, dst) in out_edges {
                    let d = g.ensure_node(dst)?;
                    g.ensure_edge(n, el, d)?;
                }
                for (src, el) in in_edges {
                    let s = g.ensure_node(src)?;
                    g.ensure_edge(s, el, n)?;
                }
                Ok(())
            }
            GraphOp::NodeDelete { label } => g.delete_node_by_label(label),
            GraphOp::EdgeAdd { edges } => {
                for (s, l, d) in edges {
                    g.ensure_edge_by_labels(s, l, d)?;
                }
                Ok(())
            }
            GraphOp::EdgeDelete { edges } => {
                for (s, l, d) in edges {
                    g.delete_edge_by_labels(s, l, d)?;
                }
                Ok(())
            }
        }
    }

    /// The inverse primitive, where derivable.
    ///
    /// `NodeDelete` is not invertible from the op alone (the incident
    /// edges are lost), so it returns `None`; callers needing undo must
    /// capture the node's neighbourhood first (see
    /// [`GraphOp::capture_node_delete`]).
    pub fn inverse(&self) -> Option<GraphOp> {
        match self {
            GraphOp::NodeAdd { label, out_edges, in_edges } => {
                if out_edges.is_empty() && in_edges.is_empty() {
                    Some(GraphOp::node_delete(label.clone()))
                } else {
                    // Deleting the node also removes the adjacent edges.
                    Some(GraphOp::node_delete(label.clone()))
                }
            }
            GraphOp::NodeDelete { .. } => None,
            GraphOp::EdgeAdd { edges } => Some(GraphOp::EdgeDelete { edges: edges.clone() }),
            GraphOp::EdgeDelete { edges } => Some(GraphOp::EdgeAdd { edges: edges.clone() }),
        }
    }

    /// Builds a `NodeAdd` op that would restore `label`'s node and its
    /// current neighbourhood in `g`; the undo record for a `NodeDelete`.
    pub fn capture_node_delete(g: &OntGraph, label: &str) -> Result<GraphOp> {
        let n =
            g.node_by_label(label).ok_or_else(|| GraphError::NodeNotFound(label.to_string()))?;
        let out_edges = g
            .out_edges(n)
            .map(|e| (e.label.to_string(), g.node_label(e.dst).expect("live").to_string()))
            .collect();
        let in_edges = g
            .in_edges(n)
            .map(|e| (g.node_label(e.src).expect("live").to_string(), e.label.to_string()))
            .collect();
        Ok(GraphOp::NodeAdd { label: label.to_string(), out_edges, in_edges })
    }

    /// Labels this op touches (used by the maintenance engine to decide
    /// whether a source delta intersects the articulation, §5.3).
    pub fn touched_labels(&self) -> Vec<&str> {
        match self {
            GraphOp::NodeAdd { label, out_edges, in_edges } => {
                let mut v = vec![label.as_str()];
                v.extend(out_edges.iter().map(|(_, d)| d.as_str()));
                v.extend(in_edges.iter().map(|(s, _)| s.as_str()));
                v
            }
            GraphOp::NodeDelete { label } => vec![label.as_str()],
            GraphOp::EdgeAdd { edges } | GraphOp::EdgeDelete { edges } => {
                edges.iter().flat_map(|(s, _, d)| [s.as_str(), d.as_str()]).collect()
            }
        }
    }

    /// True if this op only adds (never removes) structure.
    pub fn is_additive(&self) -> bool {
        matches!(self, GraphOp::NodeAdd { .. } | GraphOp::EdgeAdd { .. })
    }
}

/// Applies a sequence of ops, stopping at the first error.
pub fn apply_all(g: &mut OntGraph, ops: &[GraphOp]) -> Result<usize> {
    for (i, op) in ops.iter().enumerate() {
        op.apply(g).map_err(|e| match e {
            GraphError::Parse { .. } => e,
            other => GraphError::Parse { line: i, msg: format!("op {i}: {other}") },
        })?;
    }
    Ok(ops.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_add_with_adjacent_edges() {
        let mut g = OntGraph::new("t");
        g.add_node("Vehicle").unwrap();
        let op = GraphOp::node_add_with(
            "Car",
            vec![("SubclassOf".into(), "Vehicle".into())],
            vec![("Price".into(), "AttributeOf".into())],
        );
        op.apply(&mut g).unwrap();
        assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
        assert!(g.has_edge("Price", "AttributeOf", "Car"));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn apply_is_idempotent_for_additions() {
        let mut g = OntGraph::new("t");
        let op = GraphOp::edge_add("A", "S", "B");
        op.apply(&mut g).unwrap();
        op.apply(&mut g).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn deletes_of_missing_elements_error() {
        let mut g = OntGraph::new("t");
        assert!(GraphOp::node_delete("ghost").apply(&mut g).is_err());
        assert!(GraphOp::edge_delete("a", "s", "b").apply(&mut g).is_err());
    }

    #[test]
    fn edge_ops_roundtrip_through_inverse() {
        let mut g = OntGraph::new("t");
        let add = GraphOp::edge_add("A", "S", "B");
        add.apply(&mut g).unwrap();
        let del = add.inverse().unwrap();
        del.apply(&mut g).unwrap();
        assert_eq!(g.edge_count(), 0);
        let re_add = del.inverse().unwrap();
        re_add.apply(&mut g).unwrap();
        assert!(g.has_edge("A", "S", "B"));
    }

    #[test]
    fn node_delete_has_no_blind_inverse() {
        assert!(GraphOp::node_delete("X").inverse().is_none());
    }

    #[test]
    fn capture_node_delete_restores_neighbourhood() {
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("Car", "SubclassOf", "Vehicle").unwrap();
        g.ensure_edge_by_labels("Price", "AttributeOf", "Car").unwrap();
        let undo = GraphOp::capture_node_delete(&g, "Car").unwrap();
        g.delete_node_by_label("Car").unwrap();
        assert_eq!(g.edge_count(), 0);
        undo.apply(&mut g).unwrap();
        assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
        assert!(g.has_edge("Price", "AttributeOf", "Car"));
    }

    #[test]
    fn touched_labels_cover_endpoints() {
        let op = GraphOp::edge_add("A", "S", "B");
        let mut t = op.touched_labels();
        t.sort_unstable();
        assert_eq!(t, vec!["A", "B"]);
        let op = GraphOp::node_add_with("N", vec![("e".into(), "X".into())], vec![]);
        assert!(op.touched_labels().contains(&"X"));
    }

    #[test]
    fn journal_replay_reproduces_graph() {
        let mut g = OntGraph::new("src");
        g.enable_journal();
        g.ensure_edge_by_labels("Car", "SubclassOf", "Vehicle").unwrap();
        g.ensure_edge_by_labels("Truck", "SubclassOf", "Vehicle").unwrap();
        g.delete_node_by_label("Truck").unwrap();
        let journal = g.take_journal();

        let mut replay = OntGraph::new("replay");
        apply_all(&mut replay, &journal).unwrap();
        assert!(replay.same_shape(&g));
    }

    #[test]
    fn apply_all_reports_failing_index() {
        let mut g = OntGraph::new("t");
        let ops = vec![GraphOp::edge_add("A", "S", "B"), GraphOp::node_delete("ghost")];
        let err = apply_all(&mut g, &ops).unwrap_err();
        assert!(err.to_string().contains("op 1"));
    }

    #[test]
    fn is_additive_classification() {
        assert!(GraphOp::node_add("x").is_additive());
        assert!(GraphOp::edge_add("a", "l", "b").is_additive());
        assert!(!GraphOp::node_delete("x").is_additive());
        assert!(!GraphOp::edge_delete("a", "l", "b").is_additive());
    }
}
