//! Path enumeration and distance metrics.
//!
//! Supporting machinery for the §5.3 Difference semantics ("there exists
//! no path from n to any n′") and for articulation diagnostics: when the
//! expert asks *why* two terms are semantically connected, the viewer
//! shows the bridge paths between them.

use std::collections::{HashMap, VecDeque};

use crate::graph::{NodeId, OntGraph};
use crate::traverse::{Direction, EdgeFilter};

/// Enumerates simple (node-repetition-free) directed paths from `a` to
/// `b`, up to `max_len` edges and at most `max_paths` results. Paths are
/// node sequences including both endpoints.
pub fn all_simple_paths(
    g: &OntGraph,
    a: NodeId,
    b: NodeId,
    filter: &EdgeFilter,
    max_len: usize,
    max_paths: usize,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    if !g.is_live_node(a) || !g.is_live_node(b) || max_paths == 0 {
        return out;
    }
    let mut path = vec![a];
    let mut on_path = std::collections::HashSet::from([a]);
    dfs_paths(g, a, b, filter, max_len, max_paths, &mut path, &mut on_path, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs_paths(
    g: &OntGraph,
    cur: NodeId,
    b: NodeId,
    filter: &EdgeFilter,
    max_len: usize,
    max_paths: usize,
    path: &mut Vec<NodeId>,
    on_path: &mut std::collections::HashSet<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if out.len() >= max_paths {
        return;
    }
    if cur == b && path.len() > 1 {
        out.push(path.clone());
        return;
    }
    if path.len() > max_len {
        return;
    }
    // single-node query a == b: count the trivial path once
    if cur == b && path.len() == 1 {
        out.push(path.clone());
        return;
    }
    let nexts: Vec<NodeId> =
        g.out_edges(cur).filter(|e| admits(filter, e.label)).map(|e| e.dst).collect();
    for n in nexts {
        if on_path.contains(&n) {
            continue;
        }
        path.push(n);
        on_path.insert(n);
        dfs_paths(g, n, b, filter, max_len, max_paths, path, on_path, out);
        path.pop();
        on_path.remove(&n);
    }
}

fn admits(filter: &EdgeFilter, label: &str) -> bool {
    match filter {
        EdgeFilter::All => true,
        EdgeFilter::Labels(ls) => ls.iter().any(|x| x == label),
    }
}

/// BFS distances (in edges) from `start` to every reachable node.
pub fn distances(
    g: &OntGraph,
    start: NodeId,
    dir: Direction,
    filter: &EdgeFilter,
) -> HashMap<NodeId, usize> {
    let mut dist = HashMap::new();
    if !g.is_live_node(start) {
        return dist;
    }
    dist.insert(start, 0);
    let mut q = VecDeque::from([start]);
    while let Some(n) = q.pop_front() {
        let d = dist[&n];
        let fwd = matches!(dir, Direction::Forward | Direction::Both);
        let bwd = matches!(dir, Direction::Backward | Direction::Both);
        let push = |m: NodeId, dist: &mut HashMap<NodeId, usize>, q: &mut VecDeque<NodeId>| {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(m) {
                e.insert(d + 1);
                q.push_back(m);
            }
        };
        if fwd {
            let outs: Vec<NodeId> =
                g.out_edges(n).filter(|e| admits(filter, e.label)).map(|e| e.dst).collect();
            for m in outs {
                push(m, &mut dist, &mut q);
            }
        }
        if bwd {
            let ins: Vec<NodeId> =
                g.in_edges(n).filter(|e| admits(filter, e.label)).map(|e| e.src).collect();
            for m in ins {
                push(m, &mut dist, &mut q);
            }
        }
    }
    dist
}

/// The longest shortest path (diameter) of the graph treated as
/// undirected, per connected component; `None` for an empty graph.
pub fn diameter(g: &OntGraph, filter: &EdgeFilter) -> Option<usize> {
    let mut best = None;
    for n in g.node_ids() {
        let d = distances(g, n, Direction::Both, filter);
        if let Some(&m) = d.values().max() {
            best = Some(best.map_or(m, |b: usize| b.max(m)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (OntGraph, Vec<NodeId>) {
        // a -> b -> d, a -> c -> d, a -> d (direct)
        let mut g = OntGraph::new("t");
        let ids: Vec<NodeId> =
            ["a", "b", "c", "d"].iter().map(|l| g.add_node(l).unwrap()).collect();
        g.add_edge(ids[0], "e", ids[1]).unwrap();
        g.add_edge(ids[1], "e", ids[3]).unwrap();
        g.add_edge(ids[0], "e", ids[2]).unwrap();
        g.add_edge(ids[2], "e", ids[3]).unwrap();
        g.add_edge(ids[0], "e", ids[3]).unwrap();
        (g, ids)
    }

    #[test]
    fn finds_all_three_paths() {
        let (g, ids) = diamond();
        let paths = all_simple_paths(&g, ids[0], ids[3], &EdgeFilter::All, 10, 100);
        assert_eq!(paths.len(), 3);
        let lens: Vec<usize> = {
            let mut v: Vec<usize> = paths.iter().map(Vec::len).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(lens, vec![2, 3, 3]);
    }

    #[test]
    fn respects_max_len_and_max_paths() {
        let (g, ids) = diamond();
        let short = all_simple_paths(&g, ids[0], ids[3], &EdgeFilter::All, 1, 100);
        assert_eq!(short.len(), 1, "only the direct edge fits");
        let capped = all_simple_paths(&g, ids[0], ids[3], &EdgeFilter::All, 10, 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn no_path_means_empty() {
        let (g, ids) = diamond();
        assert!(all_simple_paths(&g, ids[3], ids[0], &EdgeFilter::All, 10, 10).is_empty());
    }

    #[test]
    fn cycle_does_not_loop_forever() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        g.add_edge(a, "e", b).unwrap();
        g.add_edge(b, "e", a).unwrap();
        let paths = all_simple_paths(&g, a, b, &EdgeFilter::All, 10, 100);
        assert_eq!(paths.len(), 1, "simple paths only");
    }

    #[test]
    fn self_path_is_trivial() {
        let (g, ids) = diamond();
        let p = all_simple_paths(&g, ids[0], ids[0], &EdgeFilter::All, 10, 10);
        assert_eq!(p, vec![vec![ids[0]]]);
    }

    #[test]
    fn distances_and_diameter() {
        let (g, ids) = diamond();
        let d = distances(&g, ids[0], Direction::Forward, &EdgeFilter::All);
        assert_eq!(d[&ids[0]], 0);
        assert_eq!(d[&ids[1]], 1);
        assert_eq!(d[&ids[3]], 1, "direct edge wins");
        assert_eq!(diameter(&g, &EdgeFilter::All), Some(2));
        assert_eq!(diameter(&OntGraph::new("empty"), &EdgeFilter::All), None);
    }

    #[test]
    fn filter_restricts_paths() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        g.add_edge(a, "S", b).unwrap();
        g.add_edge(a, "other", b).unwrap();
        let paths = all_simple_paths(&g, a, b, &EdgeFilter::label("S"), 10, 10);
        assert_eq!(paths.len(), 1);
    }
}
