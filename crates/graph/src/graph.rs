//! The directed labeled graph `G = (N, E)` of the paper's §3.
//!
//! Nodes and edges are stored in append-only arenas with tombstone
//! deletion, so [`NodeId`]s and [`EdgeId`]s remain stable across deletions
//! (the articulation maintains long-lived references into source
//! ontologies). A per-label index supports the paper's convention of
//! addressing nodes by their label in *consistent* ontologies, where every
//! term is depicted by exactly one node (§1, §3 end).
//!
//! # The label-indexed adjacency layer
//!
//! Traversal and maintenance are the hot paths of the whole system
//! (§5.3, §6), so the graph maintains three indexes with the following
//! invariants, upheld by the four transformation primitives:
//!
//! * **edge index** — `(src, LabelId, dst) → EdgeId` for every *live*
//!   edge; [`OntGraph::find_edge`]/[`OntGraph::ensure_edge`] are a
//!   single hash probe;
//! * **per-`(node, label)` adjacency** — each live node keeps its live
//!   out-/in-edges bucketed by `LabelId`; label-filtered traversal
//!   ([`OntGraph::out_neighbors_by_id`] and friends) touches only the
//!   matching bucket and never resolves a string;
//! * **pruned incident lists** — `ED`/`ND` remove dead [`EdgeId`]s from
//!   the incident lists and drop empty label buckets (and empty
//!   `by_label` entries), so iteration and degree cost is proportional
//!   to the *live* neighbourhood, not historical churn.
//!
//! String-typed APIs remain available and are thin wrappers that resolve
//! the label once at the boundary, then run on the id layer.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::edge_index::EdgeIndex;
use crate::error::GraphError;
use crate::hash::FxHashMap;
use crate::label::{Interner, LabelId};
use crate::ops::GraphOp;
use crate::Result;

/// Default number of snapshot shards a fresh graph is configured with
/// (see [`OntGraph::set_shard_count`] and [`crate::snapshot`]).
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// Largest shard count the adaptive policy will pick. Past this,
/// per-shard version bookkeeping and publish fan-out cost more than
/// finer dirty tracking saves.
pub const MAX_ADAPTIVE_SHARDS: usize = 64;

/// The adaptive shard count for a graph with `edges` live edges:
/// `round(√E)` clamped to `[1, MAX_ADAPTIVE_SHARDS]`.
///
/// Rationale: an incremental publish rebuilds dirty shards at ~`E/S`
/// edges each while stamping/compare work grows with `S`; `S ≈ √E`
/// equalises the two, so publish latency stays ∝ the dirty fraction
/// across graph sizes (ROADMAP "Adaptive shard count").
pub fn adaptive_shard_count(edges: usize) -> usize {
    ((edges as f64).sqrt().round() as usize).clamp(1, MAX_ADAPTIVE_SHARDS)
}

/// Source of unique graph identities ([`OntGraph::graph_id`]): shard
/// versions are only comparable within one identity, so every
/// constructed (or cloned) graph gets a fresh id.
static NEXT_GRAPH_ID: AtomicU64 = AtomicU64::new(1);

/// Stable identifier of a node within one [`OntGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw arena index (includes tombstoned slots).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Stable identifier of an edge within one [`OntGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Raw arena index (includes tombstoned slots).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: LabelId,
    /// Live out-edges as `(id, label, dst)` — the neighbour is stored
    /// inline so traversal never dereferences the edge arena.
    out: Vec<(EdgeId, LabelId, NodeId)>,
    /// Live in-edges as `(id, label, src)`.
    inc: Vec<(EdgeId, LabelId, NodeId)>,
    /// Live out-edges bucketed by edge label; no empty buckets.
    out_by_label: LabelBuckets,
    /// Live in-edges bucketed by edge label; no empty buckets.
    inc_by_label: LabelBuckets,
    alive: bool,
}

/// Per-node `label → live incident (edge, neighbour)` buckets.
///
/// A node touches few distinct edge labels (single digits in every
/// workload the paper describes), so a linear-scan vector beats a hash
/// map on both lookup latency and memory; buckets keep edge-insertion
/// order, store the neighbour inline for sequential iteration, and are
/// dropped as soon as they empty.
#[derive(Debug, Clone, Default)]
struct LabelBuckets(Vec<(LabelId, Vec<(EdgeId, NodeId)>)>);

impl LabelBuckets {
    #[inline]
    fn get(&self, label: LabelId) -> &[(EdgeId, NodeId)] {
        self.0.iter().find(|(l, _)| *l == label).map(|(_, v)| v.as_slice()).unwrap_or(&[])
    }

    fn push(&mut self, label: LabelId, e: EdgeId, neighbor: NodeId) {
        match self.0.iter_mut().find(|(l, _)| *l == label) {
            Some((_, v)) => v.push((e, neighbor)),
            None => self.0.push((label, vec![(e, neighbor)])),
        }
    }

    fn remove(&mut self, label: LabelId, e: EdgeId) {
        if let Some(i) = self.0.iter().position(|(l, _)| *l == label) {
            self.0[i].1.retain(|&(x, _)| x != e);
            if self.0[i].1.is_empty() {
                self.0.swap_remove(i);
            }
        }
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    #[cfg(test)]
    fn total(&self) -> usize {
        self.0.iter().map(|(_, v)| v.len()).sum()
    }
}

#[derive(Debug, Clone)]
struct EdgeData {
    src: NodeId,
    label: LabelId,
    dst: NodeId,
    alive: bool,
}

/// A borrowed view of a live node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef<'g> {
    /// The node's id.
    pub id: NodeId,
    /// The node's label `λ(n)`.
    pub label: &'g str,
}

/// A borrowed view of a live edge `(n1, α, n2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'g> {
    /// The edge's id.
    pub id: EdgeId,
    /// Source node id `n1`.
    pub src: NodeId,
    /// Edge label `α = δ(e)`.
    pub label: &'g str,
    /// Target node id `n2`.
    pub dst: NodeId,
}

/// A directed labeled graph with interned labels.
///
/// `OntGraph` implements the data layer of the paper's §2.1 / §3: a finite
/// set of labeled nodes `N`, a finite set of labeled edges `E`, the label
/// functions `λ` and `δ`, and the four transformation primitives `NA`,
/// `ND`, `EA`, `ED`.
///
/// ```
/// use onion_graph::{rel, OntGraph};
///
/// let mut g = OntGraph::new("carrier");
/// g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Vehicle").unwrap();
/// g.ensure_edge_by_labels("Price", rel::ATTRIBUTE_OF, "Car").unwrap();
/// assert_eq!(g.node_count(), 3); // Car, Vehicle, Price
/// assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
///
/// // ND removes the node and its incident edges
/// g.delete_node_by_label("Car").unwrap();
/// assert_eq!(g.edge_count(), 0);
/// ```
///
/// Two label regimes are supported:
///
/// * **consistent** (`unique_labels = true`, the paper's default for
///   ontologies, §1): a term may label at most one node, so nodes are
///   addressable by label;
/// * **free** (`unique_labels = false`): duplicate node labels are
///   allowed; useful for instance-level graphs where several individuals
///   share a display label.
///
/// Edges are *set*-semantics: at most one edge per `(src, label, dst)`
/// triple, matching the paper's definition of `E` as a set.
#[derive(Debug)]
pub struct OntGraph {
    name: String,
    interner: Interner,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    by_label: FxHashMap<LabelId, Vec<NodeId>>,
    /// `(src, label, dst) → id` for every live edge (`E` is a set, so
    /// the mapping is injective). Open-addressed with inline keys so a
    /// point probe touches one cache line (see [`crate::edge_index`]).
    edge_index: EdgeIndex,
    unique_labels: bool,
    live_nodes: usize,
    live_edges: usize,
    journal: Option<Vec<GraphOp>>,
    /// Unique identity for shard-version comparison (fresh per
    /// construction *and* per clone — clones diverge independently).
    graph_id: u64,
    /// Snapshot shard count; node `n` belongs to shard `n.index() %
    /// shard_count` (stable under arena growth).
    shard_count: usize,
    /// Per-shard modification stamps, drawn from `version_clock` so a
    /// stamp value never repeats within one graph identity.
    shard_versions: Vec<u64>,
    version_clock: u64,
}

impl Clone for OntGraph {
    /// Clones content and journal state, but under a **fresh graph
    /// identity**: the clone's shard versions are not comparable with
    /// snapshots of the original (the two graphs mutate independently
    /// from the moment of the clone), so an incremental publish against
    /// a store fed by the other graph falls back to a full rebuild.
    fn clone(&self) -> Self {
        OntGraph {
            name: self.name.clone(),
            interner: self.interner.clone(),
            nodes: self.nodes.clone(),
            edges: self.edges.clone(),
            by_label: self.by_label.clone(),
            edge_index: self.edge_index.clone(),
            unique_labels: self.unique_labels,
            live_nodes: self.live_nodes,
            live_edges: self.live_edges,
            journal: self.journal.clone(),
            graph_id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            shard_count: self.shard_count,
            shard_versions: self.shard_versions.clone(),
            version_clock: self.version_clock,
        }
    }
}

impl OntGraph {
    /// Creates an empty *consistent* graph (unique node labels), the mode
    /// used for ontologies throughout the paper.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_mode(name, true)
    }

    /// Creates an empty graph allowing duplicate node labels.
    pub fn new_multi(name: impl Into<String>) -> Self {
        Self::with_mode(name, false)
    }

    fn with_mode(name: impl Into<String>, unique_labels: bool) -> Self {
        OntGraph {
            name: name.into(),
            interner: Interner::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
            by_label: FxHashMap::default(),
            edge_index: EdgeIndex::default(),
            unique_labels,
            live_nodes: 0,
            live_edges: 0,
            journal: None,
            graph_id: NEXT_GRAPH_ID.fetch_add(1, Ordering::Relaxed),
            shard_count: DEFAULT_SHARD_COUNT,
            shard_versions: vec![0; DEFAULT_SHARD_COUNT],
            version_clock: 0,
        }
    }

    // ------------------------------------------------------------------
    // Snapshot sharding configuration and dirty-shard tracking
    // ------------------------------------------------------------------

    /// The graph's unique identity. Shard versions are comparable only
    /// between a graph and snapshots taken from the *same* identity;
    /// clones and compacted graphs get fresh ids.
    pub fn graph_id(&self) -> u64 {
        self.graph_id
    }

    /// Number of snapshot shards (see [`crate::snapshot`]).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard owning node `n`: `n.index() % shard_count`. Stable
    /// under arena growth — allocating new nodes never moves existing
    /// nodes between shards.
    #[inline]
    pub fn shard_of(&self, n: NodeId) -> usize {
        n.index() % self.shard_count
    }

    /// The modification stamp of shard `s` (monotone per graph
    /// identity; bumped by every primitive touching a node the shard
    /// owns). [`crate::SnapshotStore::publish`] rebuilds exactly the
    /// shards whose stamp differs from the previous snapshot's.
    pub fn shard_version(&self, s: usize) -> u64 {
        self.shard_versions.get(s).copied().unwrap_or(0)
    }

    /// Reconfigures the shard count. `0` means **adaptive**: the count
    /// is derived from the current live edge count via
    /// [`adaptive_shard_count`] (≈√E, clamped to `[1, 64]`), which
    /// balances per-shard rebuild cost against publish bookkeeping
    /// without manual tuning. All shards are freshly stamped, so the
    /// next publish is a full rebuild.
    pub fn set_shard_count(&mut self, count: usize) {
        let count = if count == 0 { adaptive_shard_count(self.live_edges) } else { count };
        self.shard_count = count;
        self.shard_versions = (0..count)
            .map(|_| {
                self.version_clock += 1;
                self.version_clock
            })
            .collect();
    }

    /// Marks the shard owning `n` as modified.
    #[inline]
    fn touch_shard(&mut self, n: NodeId) {
        self.version_clock += 1;
        let s = n.index() % self.shard_count;
        self.shard_versions[s] = self.version_clock;
    }

    /// The graph's name (the ontology name, e.g. `"carrier"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Whether node labels are enforced unique (consistent-ontology mode).
    pub fn unique_labels(&self) -> bool {
        self.unique_labels
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// True if the graph has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 0
    }

    /// Upper bound (exclusive) for [`NodeId::index`] over every node
    /// ever allocated, tombstones included — the length to size dense
    /// per-node scratch arrays (visited stamps, adjacency) with.
    pub fn node_capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) for [`EdgeId::index`], tombstones
    /// included.
    pub fn edge_capacity(&self) -> usize {
        self.edges.len()
    }

    /// Access to the label interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interns a label in this graph's namespace.
    pub fn intern(&mut self, label: &str) -> LabelId {
        self.interner.intern(label)
    }

    /// Resolves an interned label id to its string.
    pub fn resolve(&self, id: LabelId) -> &str {
        self.interner.resolve(id)
    }

    /// Looks up a label id without interning.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.interner.get(label)
    }

    // ------------------------------------------------------------------
    // Journal
    // ------------------------------------------------------------------

    /// Starts recording transformation primitives into an op journal.
    ///
    /// The journal is the mechanism behind incremental articulation
    /// maintenance: source-ontology deltas are replayed against the
    /// articulation instead of rebuilding it (§5.3, DESIGN.md B1).
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Stops journaling and returns the recorded ops.
    pub fn take_journal(&mut self) -> Vec<GraphOp> {
        self.journal.take().unwrap_or_default()
    }

    /// Drains the recorded ops while **keeping the journal enabled**.
    ///
    /// This is the durability seam: the WAL layer drains the journal at
    /// every flush point, so the in-memory `Vec<GraphOp>` is only ever
    /// the unflushed tail of the log — it no longer grows for the
    /// lifetime of the graph.
    pub fn drain_journal(&mut self) -> Vec<GraphOp> {
        match self.journal.as_mut() {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    /// Returns the ops recorded so far without stopping the journal.
    pub fn journal(&self) -> &[GraphOp] {
        self.journal.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, op: impl FnOnce(&Self) -> GraphOp) {
        if self.journal.is_none() {
            return;
        }
        let entry = op(self);
        if let Some(journal) = self.journal.as_mut() {
            journal.push(entry);
        }
    }

    // ------------------------------------------------------------------
    // Node primitives (NA / ND)
    // ------------------------------------------------------------------

    /// `NA` — node addition (§3). Adds a node labeled `label`.
    ///
    /// Errors with [`GraphError::DuplicateLabel`] in consistent mode if a
    /// live node already carries the label, and with
    /// [`GraphError::EmptyLabel`] if the label is empty (`λ` must map to a
    /// non-null string).
    pub fn add_node(&mut self, label: &str) -> Result<NodeId> {
        if label.is_empty() {
            return Err(GraphError::EmptyLabel);
        }
        let lid = self.interner.intern(label);
        if self.unique_labels {
            if let Some(v) = self.by_label.get(&lid) {
                if !v.is_empty() {
                    return Err(GraphError::DuplicateLabel(label.to_string()));
                }
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            label: lid,
            out: Vec::new(),
            inc: Vec::new(),
            out_by_label: LabelBuckets::default(),
            inc_by_label: LabelBuckets::default(),
            alive: true,
        });
        self.by_label.entry(lid).or_default().push(id);
        self.live_nodes += 1;
        self.touch_shard(id);
        self.record(|_| GraphOp::node_add(label));
        Ok(id)
    }

    /// Returns the node labeled `label`, creating it if absent.
    ///
    /// In multi-label mode this returns the *first* live node with the
    /// label, creating one only when none exists.
    pub fn ensure_node(&mut self, label: &str) -> Result<NodeId> {
        if let Some(id) = self.node_by_label(label) {
            return Ok(id);
        }
        self.add_node(label)
    }

    /// `ND` — node deletion (§3). Removes the node and all incident edges.
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        if !self.is_live_node(id) {
            return Err(GraphError::NodeNotFound(format!("{id:?}")));
        }
        // Capture the node's neighbourhood *before* the cascade empties
        // it, so the journaled ND op is lossless (its inverse restores
        // the node and every incident edge from the op alone).
        let captured = if self.journal.is_some() {
            let label = self.interner.resolve(self.nodes[id.index()].label).to_string();
            Some(GraphOp::capture_node_delete_at(self, id, &label))
        } else {
            None
        };
        // Collect incident edges first (both directions), then kill them.
        // Incident lists hold only live edges; a self-loop appears in
        // both, so dedup through the liveness check in the loop.
        let incident: Vec<EdgeId> = self.nodes[id.index()]
            .out
            .iter()
            .chain(self.nodes[id.index()].inc.iter())
            .map(|&(e, _, _)| e)
            .collect();
        for e in incident {
            if self.edges[e.index()].alive {
                self.delete_edge(e)?;
            }
        }
        let lid = self.nodes[id.index()].label;
        let node = &mut self.nodes[id.index()];
        node.alive = false;
        // cascaded edge deletion already emptied these; release the
        // allocations too
        node.out = Vec::new();
        node.inc = Vec::new();
        node.out_by_label = LabelBuckets::default();
        node.inc_by_label = LabelBuckets::default();
        if let Some(v) = self.by_label.get_mut(&lid) {
            v.retain(|&n| n != id);
            if v.is_empty() {
                self.by_label.remove(&lid);
            }
        }
        self.live_nodes -= 1;
        self.touch_shard(id);
        if let Some(op) = captured {
            self.record(|_| op);
        }
        Ok(())
    }

    /// Deletes the node addressed by `label` (consistent-ontology
    /// convenience, §3 end).
    pub fn delete_node_by_label(&mut self, label: &str) -> Result<()> {
        let id =
            self.node_by_label(label).ok_or_else(|| GraphError::NodeNotFound(label.to_string()))?;
        self.delete_node(id)
    }

    // ------------------------------------------------------------------
    // Edge primitives (EA / ED)
    // ------------------------------------------------------------------

    /// `EA` — edge addition (§3). Adds the edge `(src, label, dst)`.
    ///
    /// Errors if either endpoint is dead or if the identical triple is
    /// already present (`E` is a set).
    pub fn add_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> Result<EdgeId> {
        if label.is_empty() {
            return Err(GraphError::EmptyLabel);
        }
        if !self.is_live_node(src) {
            return Err(GraphError::NodeNotFound(format!("{src:?}")));
        }
        if !self.is_live_node(dst) {
            return Err(GraphError::NodeNotFound(format!("{dst:?}")));
        }
        let lid = self.interner.intern(label);
        if self.edge_index.contains(src, lid, dst) {
            return Err(GraphError::DuplicateEdge(format!(
                "({}, {label}, {})",
                self.node_label(src).unwrap_or("?"),
                self.node_label(dst).unwrap_or("?"),
            )));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, label: lid, dst, alive: true });
        self.nodes[src.index()].out.push((id, lid, dst));
        self.nodes[src.index()].out_by_label.push(lid, id, dst);
        self.nodes[dst.index()].inc.push((id, lid, src));
        self.nodes[dst.index()].inc_by_label.push(lid, id, src);
        self.edge_index.insert(src, lid, dst, id);
        self.live_edges += 1;
        debug_assert_eq!(self.edge_index.len(), self.live_edges);
        self.touch_shard(src);
        self.touch_shard(dst);
        self.record(|g| {
            GraphOp::edge_add(
                g.node_label(src).expect("live src"),
                label,
                g.node_label(dst).expect("live dst"),
            )
        });
        Ok(id)
    }

    /// Adds the edge if absent, returning the existing id otherwise.
    pub fn ensure_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> Result<EdgeId> {
        if let Some(lid) = self.interner.get(label) {
            if let Some(id) = self.edge_index.get(src, lid, dst) {
                return Ok(id);
            }
        }
        self.add_edge(src, label, dst)
    }

    /// Label-addressed [`OntGraph::ensure_edge`], creating missing endpoint
    /// nodes; this is the workhorse used by format importers and the
    /// articulation generator.
    pub fn ensure_edge_by_labels(&mut self, src: &str, label: &str, dst: &str) -> Result<EdgeId> {
        let s = self.ensure_node(src)?;
        let d = self.ensure_node(dst)?;
        self.ensure_edge(s, label, d)
    }

    /// `ED` — edge deletion (§3).
    pub fn delete_edge(&mut self, id: EdgeId) -> Result<()> {
        if !self.is_live_edge(id) {
            return Err(GraphError::EdgeNotFound(format!("{id:?}")));
        }
        let EdgeData { src, label, dst, .. } = self.edges[id.index()];
        self.edges[id.index()].alive = false;
        self.edge_index.remove(src, label, dst);
        // prune the incident lists and label buckets so historical churn
        // never degrades degree queries or iteration
        let s = &mut self.nodes[src.index()];
        s.out.retain(|&(e, _, _)| e != id);
        s.out_by_label.remove(label, id);
        let d = &mut self.nodes[dst.index()];
        d.inc.retain(|&(e, _, _)| e != id);
        d.inc_by_label.remove(label, id);
        self.live_edges -= 1;
        self.touch_shard(src);
        self.touch_shard(dst);
        let (s, l, d) = (
            self.node_label(src).unwrap_or("?").to_string(),
            self.interner.resolve(label).to_string(),
            self.node_label(dst).unwrap_or("?").to_string(),
        );
        self.record(|_| GraphOp::edge_delete(s.clone(), l.clone(), d.clone()));
        Ok(())
    }

    /// Deletes the edge addressed by its `(src, label, dst)` labels.
    pub fn delete_edge_by_labels(&mut self, src: &str, label: &str, dst: &str) -> Result<()> {
        let id = self
            .find_edge_by_labels(src, label, dst)
            .ok_or_else(|| GraphError::EdgeNotFound(format!("({src}, {label}, {dst})")))?;
        self.delete_edge(id)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// True if `id` refers to a live node.
    pub fn is_live_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|n| n.alive).unwrap_or(false)
    }

    /// True if `id` refers to a live edge.
    pub fn is_live_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).map(|e| e.alive).unwrap_or(false)
    }

    /// The label `λ(n)` of a live node.
    pub fn node_label(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(id.index()).filter(|n| n.alive).map(|n| self.interner.resolve(n.label))
    }

    /// The interned label id of a live node.
    pub fn node_label_id(&self, id: NodeId) -> Option<LabelId> {
        self.nodes.get(id.index()).filter(|n| n.alive).map(|n| n.label)
    }

    /// The first live node carrying `label`, if any.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let lid = self.interner.get(label)?;
        self.by_label.get(&lid).and_then(|v| v.first().copied())
    }

    /// All live nodes carrying `label` (singleton in consistent mode).
    pub fn nodes_by_label(&self, label: &str) -> &[NodeId] {
        self.interner
            .get(label)
            .and_then(|lid| self.by_label.get(&lid))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True if some live node carries `label`.
    pub fn contains_label(&self, label: &str) -> bool {
        !self.nodes_by_label(label).is_empty()
    }

    /// Looks up a live edge by endpoints and label — one interner lookup
    /// plus one [`OntGraph::find_edge_by_ids`] probe.
    pub fn find_edge(&self, src: NodeId, label: &str, dst: NodeId) -> Option<EdgeId> {
        let lid = self.interner.get(label)?;
        self.find_edge_by_ids(src, lid, dst)
    }

    /// Looks up a live edge by endpoint ids and interned label: a single
    /// `O(1)` hash probe, no string comparison.
    #[inline]
    pub fn find_edge_by_ids(&self, src: NodeId, label: LabelId, dst: NodeId) -> Option<EdgeId> {
        self.edge_index.get(src, label, dst)
    }

    /// Label-addressed [`OntGraph::find_edge`].
    pub fn find_edge_by_labels(&self, src: &str, label: &str, dst: &str) -> Option<EdgeId> {
        let s = self.node_by_label(src)?;
        let d = self.node_by_label(dst)?;
        self.find_edge(s, label, d)
    }

    /// True if the edge `(src, label, dst)` exists (by labels).
    pub fn has_edge(&self, src: &str, label: &str, dst: &str) -> bool {
        self.find_edge_by_labels(src, label, dst).is_some()
    }

    /// The `(src, label, dst)` view of a live edge.
    pub fn edge(&self, id: EdgeId) -> Option<EdgeRef<'_>> {
        let e = self.edges.get(id.index()).filter(|e| e.alive)?;
        Some(EdgeRef { id, src: e.src, label: self.interner.resolve(e.label), dst: e.dst })
    }

    /// The interned label id of a live edge.
    pub fn edge_label_id(&self, id: EdgeId) -> Option<LabelId> {
        self.edges.get(id.index()).filter(|e| e.alive).map(|e| e.label)
    }

    // ------------------------------------------------------------------
    // Id-based adjacency layer
    //
    // Everything in this section works purely on NodeId/LabelId/EdgeId:
    // no `EdgeRef` is constructed and the interner is never touched, so
    // these are the primitives traversal, closure and the algebra build
    // on. Incident lists contain exactly the live edges (pruned on ED /
    // ND), so no liveness filtering is needed here either.
    // ------------------------------------------------------------------

    /// Live out-edges of `n` carrying the interned label `label`.
    #[inline]
    pub fn out_edges_labeled(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = EdgeId> + '_ {
        self.label_bucket(n, label, true).iter().map(|&(e, _)| e)
    }

    /// Live in-edges of `n` carrying the interned label `label`.
    #[inline]
    pub fn in_edges_labeled(&self, n: NodeId, label: LabelId) -> impl Iterator<Item = EdgeId> + '_ {
        self.label_bucket(n, label, false).iter().map(|&(e, _)| e)
    }

    fn label_bucket(&self, n: NodeId, label: LabelId, out: bool) -> &[(EdgeId, NodeId)] {
        self.nodes
            .get(n.index())
            .filter(|d| d.alive)
            .map(|d| if out { d.out_by_label.get(label) } else { d.inc_by_label.get(label) })
            .unwrap_or(&[])
    }

    /// Out-neighbors of `n` via edges with the interned label `label`.
    #[inline]
    pub fn out_neighbors_by_id(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.label_bucket(n, label, true).iter().map(|&(_, dst)| dst)
    }

    /// In-neighbors of `n` via edges with the interned label `label`.
    #[inline]
    pub fn in_neighbors_by_id(
        &self,
        n: NodeId,
        label: LabelId,
    ) -> impl Iterator<Item = NodeId> + '_ {
        self.label_bucket(n, label, false).iter().map(|&(_, src)| src)
    }

    /// Out-degree of `n` counting only `label` edges. `O(1)`.
    #[inline]
    pub fn out_degree_labeled(&self, n: NodeId, label: LabelId) -> usize {
        self.label_bucket(n, label, true).len()
    }

    /// In-degree of `n` counting only `label` edges. `O(1)`.
    #[inline]
    pub fn in_degree_labeled(&self, n: NodeId, label: LabelId) -> usize {
        self.label_bucket(n, label, false).len()
    }

    /// Total degree of `n` counting only `label` edges (self-loops count
    /// twice, once per direction). `O(1)`.
    #[inline]
    pub fn degree_labeled(&self, n: NodeId, label: LabelId) -> usize {
        self.out_degree_labeled(n, label) + self.in_degree_labeled(n, label)
    }

    /// The `(src, label-id, dst)` triple of a live edge.
    #[inline]
    pub fn edge_entry(&self, id: EdgeId) -> Option<(NodeId, LabelId, NodeId)> {
        self.edges.get(id.index()).filter(|e| e.alive).map(|e| (e.src, e.label, e.dst))
    }

    /// Iterates every live edge as `(id, src, label-id, dst)` without
    /// resolving labels.
    pub fn edge_entries(&self) -> impl Iterator<Item = (EdgeId, NodeId, LabelId, NodeId)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, e)| (EdgeId(i as u32), e.src, e.label, e.dst))
    }

    /// Iterates the live out-edges of `n` as `(id, label-id, dst)` —
    /// a sequential read of the node's incident list, no arena access.
    pub fn out_edge_entries(
        &self,
        n: NodeId,
    ) -> impl Iterator<Item = (EdgeId, LabelId, NodeId)> + '_ {
        self.incident_entries(n, true).iter().copied()
    }

    /// Iterates the live in-edges of `n` as `(id, label-id, src)`.
    pub fn in_edge_entries(
        &self,
        n: NodeId,
    ) -> impl Iterator<Item = (EdgeId, LabelId, NodeId)> + '_ {
        self.incident_entries(n, false).iter().copied()
    }

    fn incident_entries(&self, n: NodeId, out: bool) -> &[(EdgeId, LabelId, NodeId)] {
        self.nodes
            .get(n.index())
            .filter(|d| d.alive)
            .map(|d| if out { d.out.as_slice() } else { d.inc.as_slice() })
            .unwrap_or(&[])
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Iterates all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'_>> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| NodeRef { id: NodeId(i as u32), label: self.interner.resolve(n.label) })
    }

    /// Iterates all live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.alive).map(|(i, _)| NodeId(i as u32))
    }

    /// Iterates all live edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.edges.iter().enumerate().filter(|(_, e)| e.alive).map(|(i, e)| EdgeRef {
            id: EdgeId(i as u32),
            src: e.src,
            label: self.interner.resolve(e.label),
            dst: e.dst,
        })
    }

    /// Iterates the live out-edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.incident(n, true)
    }

    /// Iterates the live in-edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.incident(n, false)
    }

    fn incident(&self, n: NodeId, out: bool) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.incident_entries(n, out).iter().map(move |&(e, lid, other)| {
            let (src, dst) = if out { (n, other) } else { (other, n) };
            EdgeRef { id: e, src, label: self.interner.resolve(lid), dst }
        })
    }

    /// Out-neighbors of `n` reachable via edges labeled `label`.
    ///
    /// Thin wrapper over [`OntGraph::out_neighbors_by_id`]: the label is
    /// resolved once, then the per-`(node, label)` index is walked with
    /// zero per-edge string work.
    pub fn out_neighbors<'g>(
        &'g self,
        n: NodeId,
        label: &str,
    ) -> impl Iterator<Item = NodeId> + 'g {
        let bucket = match self.interner.get(label) {
            Some(lid) => self.label_bucket(n, lid, true),
            None => &[],
        };
        bucket.iter().map(|&(_, dst)| dst)
    }

    /// In-neighbors of `n` via edges labeled `label` (wrapper over
    /// [`OntGraph::in_neighbors_by_id`]).
    pub fn in_neighbors<'g>(&'g self, n: NodeId, label: &str) -> impl Iterator<Item = NodeId> + 'g {
        let bucket = match self.interner.get(label) {
            Some(lid) => self.label_bucket(n, lid, false),
            None => &[],
        };
        bucket.iter().map(|&(_, src)| src)
    }

    /// Out-degree. `O(1)`: incident lists hold exactly the live edges.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.incident_entries(n, true).len()
    }

    /// In-degree. `O(1)`: incident lists hold exactly the live edges.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.incident_entries(n, false).len()
    }

    /// All distinct edge labels in use on live edges.
    pub fn edge_labels(&self) -> Vec<&str> {
        let mut seen: HashSet<LabelId> = HashSet::new();
        for e in self.edges.iter().filter(|e| e.alive) {
            seen.insert(e.label);
        }
        let mut v: Vec<&str> = seen.into_iter().map(|l| self.interner.resolve(l)).collect();
        v.sort_unstable();
        v
    }

    // ------------------------------------------------------------------
    // Whole-graph operations
    // ------------------------------------------------------------------

    /// Copies all live nodes and edges of `other` into `self`.
    ///
    /// Nodes are merged **by label**: a node of `other` whose label already
    /// exists in `self` maps onto the existing node. Returns the
    /// node-id mapping from `other` into `self`. This is the primitive
    /// behind both ontology union (§5.1) and the global-merge baseline.
    pub fn merge_from(&mut self, other: &OntGraph) -> Result<HashMap<NodeId, NodeId>> {
        let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(other.node_count());
        for n in other.nodes() {
            let here = self.ensure_node(n.label)?;
            map.insert(n.id, here);
        }
        for e in other.edges() {
            let s = map[&e.src];
            let d = map[&e.dst];
            self.ensure_edge(s, e.label, d)?;
        }
        Ok(map)
    }

    /// Builds a compacted copy with tombstones removed and dense ids.
    ///
    /// Returns the new graph and the old-to-new node-id mapping.
    pub fn compacted(&self) -> (OntGraph, HashMap<NodeId, NodeId>) {
        let mut g = OntGraph::with_mode(self.name.clone(), self.unique_labels);
        let mut map = HashMap::with_capacity(self.live_nodes);
        for n in self.nodes() {
            let id = g.add_node(n.label).expect("labels unique in source graph");
            map.insert(n.id, id);
        }
        for e in self.edges() {
            g.add_edge(map[&e.src], e.label, map[&e.dst]).expect("edges unique in source graph");
        }
        (g, map)
    }

    /// In-place arena compaction: drops every tombstoned node and edge
    /// slot, re-densifying ids. Returns the old-to-new node-id mapping
    /// for the surviving nodes.
    ///
    /// The append-only arenas otherwise grow monotonically under churn
    /// (`node_capacity`/`edge_capacity` track every slot ever
    /// allocated, and dense traversal scratch is sized by them), so
    /// long-lived servers should compact when the tombstone fraction
    /// gets large — the natural point is right before a
    /// [`OntGraph::snapshot`] publish, since snapshots inherit the
    /// capacity. Compaction invalidates outstanding [`NodeId`]s,
    /// [`EdgeId`]s and [`LabelId`]s (the interner is rebuilt too):
    /// callers holding ids across a compact must remap through the
    /// returned table. The label-level shape is unchanged, so an active
    /// journal records nothing for a compact.
    pub fn compact(&mut self) -> HashMap<NodeId, NodeId> {
        let (mut dense, map) = self.compacted();
        // keep journaling state (compaction itself is a label-level
        // no-op, so no ops are recorded for it) and the shard
        // configuration; the dense graph carries a fresh graph_id, so
        // the next publish against any store is a full rebuild — ids
        // were remapped, every shard's content may have moved.
        dense.journal = self.journal.take();
        dense.set_shard_count(self.shard_count);
        *self = dense;
        map
    }

    /// Structural equality on the `(label, edge-label, label)` level,
    /// ignoring ids, tombstones, names and insertion order.
    ///
    /// Only meaningful for consistent graphs (unique labels), which is how
    /// the paper compares ontologies.
    pub fn same_shape(&self, other: &OntGraph) -> bool {
        if self.node_count() != other.node_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        for n in self.nodes() {
            if !other.contains_label(n.label) {
                return false;
            }
        }
        for e in self.edges() {
            let s = self.node_label(e.src).expect("live");
            let d = self.node_label(e.dst).expect("live");
            if !other.has_edge(s, e.label, d) {
                return false;
            }
        }
        true
    }

    /// Sorted list of node labels (test/diagnostic helper).
    pub fn node_labels_sorted(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.nodes().map(|n| n.label).collect();
        v.sort_unstable();
        v
    }

    /// Sorted `(src, label, dst)` triples (test/diagnostic helper).
    pub fn edge_triples_sorted(&self) -> Vec<(String, String, String)> {
        let mut v: Vec<(String, String, String)> = self
            .edges()
            .map(|e| {
                (
                    self.node_label(e.src).expect("live").to_string(),
                    e.label.to_string(),
                    self.node_label(e.dst).expect("live").to_string(),
                )
            })
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> OntGraph {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        g.add_edge(a, "SubclassOf", b).unwrap();
        g.add_edge(b, "SubclassOf", c).unwrap();
        g
    }

    #[test]
    fn add_and_count() {
        let g = abc();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_label_rejected() {
        let mut g = OntGraph::new("t");
        assert_eq!(g.add_node(""), Err(GraphError::EmptyLabel));
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        assert_eq!(g.add_edge(a, "", b), Err(GraphError::EmptyLabel));
    }

    #[test]
    fn duplicate_label_rejected_in_consistent_mode() {
        let mut g = OntGraph::new("t");
        g.add_node("Car").unwrap();
        assert!(matches!(g.add_node("Car"), Err(GraphError::DuplicateLabel(_))));
    }

    #[test]
    fn duplicate_label_allowed_in_multi_mode() {
        let mut g = OntGraph::new_multi("t");
        let a = g.add_node("Car").unwrap();
        let b = g.add_node("Car").unwrap();
        assert_ne!(a, b);
        assert_eq!(g.nodes_by_label("Car").len(), 2);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        assert!(matches!(g.add_edge(a, "SubclassOf", b), Err(GraphError::DuplicateEdge(_))));
        // but a different label between the same nodes is fine
        g.add_edge(a, "related", b).unwrap();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn ensure_node_returns_existing() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        assert_eq!(g.ensure_node("A").unwrap(), a);
        assert_eq!(g.node_count(), 3);
        let d = g.ensure_node("D").unwrap();
        assert_eq!(g.node_label(d), Some("D"));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn ensure_edge_is_idempotent() {
        let mut g = OntGraph::new("t");
        let e1 = g.ensure_edge_by_labels("A", "S", "B").unwrap();
        let e2 = g.ensure_edge_by_labels("A", "S", "B").unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn delete_node_removes_incident_edges() {
        let mut g = abc();
        let b = g.node_by_label("B").unwrap();
        g.delete_node(b).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.contains_label("B"));
        assert!(g.contains_label("A"));
        // ids of survivors still valid
        let a = g.node_by_label("A").unwrap();
        assert_eq!(g.node_label(a), Some("A"));
    }

    #[test]
    fn delete_node_with_self_loop() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        g.add_edge(a, "self", a).unwrap();
        g.delete_node(a).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn delete_edge_then_readd() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        let e = g.find_edge(a, "SubclassOf", b).unwrap();
        g.delete_edge(e).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.find_edge(a, "SubclassOf", b).is_none());
        // set-semantics allow re-adding after delete
        g.add_edge(a, "SubclassOf", b).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn deleting_dead_entities_errors() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        g.delete_node(a).unwrap();
        assert!(g.delete_node(a).is_err());
        assert!(g.delete_node_by_label("A").is_err());
        assert!(g.delete_edge_by_labels("A", "SubclassOf", "B").is_err());
    }

    #[test]
    fn label_reusable_after_delete() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        g.delete_node(a).unwrap();
        let a2 = g.add_node("A").unwrap();
        assert_ne!(a, a2);
        assert_eq!(g.node_by_label("A"), Some(a2));
    }

    #[test]
    fn neighbors_filtered_by_label() {
        let mut g = OntGraph::new("t");
        let car = g.add_node("Car").unwrap();
        let veh = g.add_node("Vehicle").unwrap();
        let price = g.add_node("Price").unwrap();
        g.add_edge(car, "SubclassOf", veh).unwrap();
        g.add_edge(price, "AttributeOf", car).unwrap();
        let subs: Vec<NodeId> = g.out_neighbors(car, "SubclassOf").collect();
        assert_eq!(subs, vec![veh]);
        let attrs: Vec<NodeId> = g.in_neighbors(car, "AttributeOf").collect();
        assert_eq!(attrs, vec![price]);
        assert_eq!(g.out_neighbors(car, "NoSuch").count(), 0);
    }

    #[test]
    fn degrees() {
        let g = abc();
        let b = g.node_by_label("B").unwrap();
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.in_degree(b), 1);
    }

    #[test]
    fn edge_labels_sorted_unique() {
        let mut g = abc();
        g.ensure_edge_by_labels("A", "AttributeOf", "C").unwrap();
        assert_eq!(g.edge_labels(), vec!["AttributeOf", "SubclassOf"]);
    }

    #[test]
    fn merge_from_unions_by_label() {
        let mut g1 = abc();
        let mut g2 = OntGraph::new("u");
        g2.ensure_edge_by_labels("B", "SubclassOf", "D").unwrap();
        let map = g1.merge_from(&g2).unwrap();
        assert_eq!(g1.node_count(), 4); // A B C D — B merged
        assert_eq!(g1.edge_count(), 3);
        let b2 = g2.node_by_label("B").unwrap();
        assert_eq!(g1.node_label(map[&b2]), Some("B"));
    }

    #[test]
    fn compacted_drops_tombstones() {
        let mut g = abc();
        g.delete_node_by_label("B").unwrap();
        let (c, map) = g.compacted();
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(map.len(), 2);
        assert!(c.contains_label("A") && c.contains_label("C"));
    }

    #[test]
    fn compact_bounds_arena_growth_under_churn() {
        // regression (ROADMAP "Churn compaction"): the arenas grow
        // monotonically under add/delete cycles; periodic compaction
        // must keep capacity proportional to the live set.
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("Hub", "S", "Root").unwrap();
        for round in 0..50 {
            for i in 0..20 {
                g.ensure_edge_by_labels(&format!("T{round}_{i}"), "S", "Hub").unwrap();
            }
            for i in 0..20 {
                g.delete_node_by_label(&format!("T{round}_{i}")).unwrap();
            }
            if round % 10 == 9 {
                g.compact();
            }
        }
        g.compact();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.node_capacity(), 2, "no tombstone slots survive compact");
        assert_eq!(g.edge_capacity(), 1);
        assert!(g.has_edge("Hub", "S", "Root"));
    }

    #[test]
    fn compact_returns_remap_and_preserves_shape() {
        let mut g = abc();
        g.ensure_edge_by_labels("A", "related", "C").unwrap();
        g.delete_node_by_label("B").unwrap();
        let a_old = g.node_by_label("A").unwrap();
        let map = g.compact();
        let a_new = g.node_by_label("A").unwrap();
        assert_eq!(map[&a_old], a_new);
        assert_eq!(map.len(), 2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.node_capacity(), 2);
        assert!(g.has_edge("A", "related", "C"));
    }

    #[test]
    fn compact_keeps_journal_running() {
        let mut g = OntGraph::new("t");
        g.enable_journal();
        g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        g.delete_node(b).unwrap();
        g.compact();
        g.add_node("C").unwrap();
        let j = g.take_journal();
        // NA(A), NA(B), ND(B), NA(C) — compaction records nothing
        assert_eq!(j.len(), 4);
        assert!(matches!(j[3], GraphOp::NodeAdd { .. }));
    }

    #[test]
    fn same_shape_ignores_ids_and_order() {
        let g1 = abc();
        let mut g2 = OntGraph::new("other-name");
        // build in a different order
        g2.ensure_edge_by_labels("B", "SubclassOf", "C").unwrap();
        g2.ensure_edge_by_labels("A", "SubclassOf", "B").unwrap();
        assert!(g1.same_shape(&g2));
        g2.ensure_edge_by_labels("A", "SubclassOf", "C").unwrap();
        assert!(!g1.same_shape(&g2));
    }

    #[test]
    fn journal_records_all_four_primitives() {
        let mut g = OntGraph::new("t");
        g.enable_journal();
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let e = g.add_edge(a, "S", b).unwrap();
        g.delete_edge(e).unwrap();
        g.delete_node(b).unwrap();
        let j = g.take_journal();
        assert_eq!(j.len(), 5);
        assert!(matches!(j[0], GraphOp::NodeAdd { .. }));
        assert!(matches!(j[2], GraphOp::EdgeAdd { .. }));
        assert!(matches!(j[3], GraphOp::EdgeDelete { .. }));
        assert!(matches!(j[4], GraphOp::NodeDelete { .. }));
    }

    #[test]
    fn journal_records_cascaded_edge_deletes_before_node_delete() {
        let mut g = abc();
        g.enable_journal();
        g.delete_node_by_label("B").unwrap();
        let j = g.take_journal();
        // two incident edges then the node itself
        assert_eq!(j.len(), 3);
        assert!(matches!(j[0], GraphOp::EdgeDelete { .. }));
        assert!(matches!(j[1], GraphOp::EdgeDelete { .. }));
        assert!(matches!(j[2], GraphOp::NodeDelete { .. }));
    }

    #[test]
    fn churn_keeps_incident_lists_bounded() {
        // regression: dead EdgeIds used to accumulate in out/inc forever,
        // degrading degree queries linearly with historical churn
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        for _ in 0..1000 {
            let e = g.add_edge(a, "S", b).unwrap();
            g.delete_edge(e).unwrap();
        }
        g.add_edge(a, "S", b).unwrap();
        assert_eq!(g.nodes[a.index()].out.len(), 1, "out list pruned on delete");
        assert_eq!(g.nodes[b.index()].inc.len(), 1, "inc list pruned on delete");
        assert_eq!(g.nodes[a.index()].out_by_label.total(), 1);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 1);
    }

    #[test]
    fn delete_prunes_empty_label_buckets() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let e = g.add_edge(a, "S", b).unwrap();
        let lid = g.label_id("S").unwrap();
        assert_eq!(g.out_degree_labeled(a, lid), 1);
        g.delete_edge(e).unwrap();
        assert!(g.nodes[a.index()].out_by_label.is_empty(), "empty bucket dropped");
        assert!(g.nodes[b.index()].inc_by_label.is_empty());
        assert_eq!(g.out_degree_labeled(a, lid), 0);
    }

    #[test]
    fn delete_node_prunes_empty_by_label_entry() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let lid = g.label_id("A").unwrap();
        g.delete_node(a).unwrap();
        assert!(!g.by_label.contains_key(&lid), "empty by_label entry dropped");
        // the label is reusable afterwards
        g.add_node("A").unwrap();
        assert!(g.contains_label("A"));
    }

    #[test]
    fn id_layer_agrees_with_string_layer() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        g.add_edge(a, "related", b).unwrap();
        let s = g.label_id("SubclassOf").unwrap();
        let by_id: Vec<NodeId> = g.out_neighbors_by_id(a, s).collect();
        let by_str: Vec<NodeId> = g.out_neighbors(a, "SubclassOf").collect();
        assert_eq!(by_id, by_str);
        assert_eq!(g.find_edge_by_ids(a, s, b), g.find_edge(a, "SubclassOf", b));
        assert_eq!(g.out_degree_labeled(a, s), 1);
        assert_eq!(g.degree_labeled(b, s), 2, "B has one S in-edge and one S out-edge");
        let entries: Vec<_> = g.out_edge_entries(a).collect();
        assert_eq!(entries.len(), g.out_degree(a));
        assert!(entries.iter().all(|&(e, lid, dst)| g.edge_entry(e) == Some((a, lid, dst))));
    }

    #[test]
    fn self_loop_counts_once_per_direction_in_labeled_degree() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        g.add_edge(a, "loop", a).unwrap();
        let lid = g.label_id("loop").unwrap();
        assert_eq!(g.out_degree_labeled(a, lid), 1);
        assert_eq!(g.in_degree_labeled(a, lid), 1);
        assert_eq!(g.degree_labeled(a, lid), 2);
        g.delete_node(a).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn shard_versions_track_exactly_the_touched_shards() {
        let mut g = OntGraph::new("t");
        g.set_shard_count(4);
        let before: Vec<u64> = (0..4).map(|s| g.shard_version(s)).collect();
        let a = g.add_node("A").unwrap(); // index 0 → shard 0
        let b = g.add_node("B").unwrap(); // index 1 → shard 1
        assert_ne!(g.shard_version(0), before[0]);
        assert_ne!(g.shard_version(1), before[1]);
        assert_eq!(g.shard_version(2), before[2]);
        assert_eq!(g.shard_version(3), before[3]);
        let mid: Vec<u64> = (0..4).map(|s| g.shard_version(s)).collect();
        g.add_edge(a, "S", b).unwrap(); // touches shards 0 and 1
        assert_ne!(g.shard_version(0), mid[0]);
        assert_ne!(g.shard_version(1), mid[1]);
        assert_eq!(g.shard_version(2), mid[2]);
        // deleting B cascades the edge delete (shards 0, 1) and the node
        let e_mid = g.shard_version(0);
        g.delete_node(b).unwrap();
        assert_ne!(g.shard_version(0), e_mid);
        assert_eq!(g.shard_version(3), mid[3], "shard 3 never touched");
    }

    #[test]
    fn adaptive_shard_count_derivation_is_pinned() {
        // round(√E) clamped to [1, 64] — the exact policy ROADMAP names
        assert_eq!(adaptive_shard_count(0), 1);
        assert_eq!(adaptive_shard_count(1), 1);
        assert_eq!(adaptive_shard_count(2), 1, "√2 ≈ 1.41 rounds down");
        assert_eq!(adaptive_shard_count(3), 2, "√3 ≈ 1.73 rounds up");
        assert_eq!(adaptive_shard_count(64), 8, "matches DEFAULT_SHARD_COUNT at 64 edges");
        assert_eq!(adaptive_shard_count(100), 10);
        assert_eq!(adaptive_shard_count(2500), 50);
        assert_eq!(adaptive_shard_count(4096), 64);
        assert_eq!(adaptive_shard_count(10_000), 64, "√10000 = 100 clamps to 64");
        assert_eq!(adaptive_shard_count(usize::MAX), MAX_ADAPTIVE_SHARDS);
    }

    #[test]
    fn set_shard_count_zero_is_adaptive() {
        let mut g = OntGraph::new("t");
        for i in 0..40 {
            let a = g.ensure_node(&format!("n{i}")).unwrap();
            let b = g.ensure_node(&format!("n{}", i + 1)).unwrap();
            g.add_edge(a, "S", b).unwrap();
        }
        assert_eq!(g.edge_count(), 40);
        g.set_shard_count(0);
        assert_eq!(g.shard_count(), adaptive_shard_count(40));
        assert_eq!(g.shard_count(), 6, "√40 ≈ 6.32 rounds to 6");
        // explicit counts still win
        g.set_shard_count(3);
        assert_eq!(g.shard_count(), 3);
    }

    #[test]
    fn clone_and_compact_get_fresh_graph_ids() {
        let mut g = abc();
        let id = g.graph_id();
        let c = g.clone();
        assert_ne!(c.graph_id(), id, "clones diverge under a fresh identity");
        assert_eq!(c.shard_count(), g.shard_count());
        g.compact();
        assert_ne!(g.graph_id(), id, "compaction remaps ids: fresh identity");
    }

    #[test]
    fn edge_triples_sorted_roundtrip() {
        let g = abc();
        let t = g.edge_triples_sorted();
        assert_eq!(
            t,
            vec![
                ("A".to_string(), "SubclassOf".to_string(), "B".to_string()),
                ("B".to_string(), "SubclassOf".to_string(), "C".to_string()),
            ]
        );
    }
}
