//! The directed labeled graph `G = (N, E)` of the paper's §3.
//!
//! Nodes and edges are stored in append-only arenas with tombstone
//! deletion, so [`NodeId`]s and [`EdgeId`]s remain stable across deletions
//! (the articulation maintains long-lived references into source
//! ontologies). A per-label index supports the paper's convention of
//! addressing nodes by their label in *consistent* ontologies, where every
//! term is depicted by exactly one node (§1, §3 end).

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::GraphError;
use crate::label::{Interner, LabelId};
use crate::ops::GraphOp;
use crate::Result;

/// Stable identifier of a node within one [`OntGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw arena index (includes tombstoned slots).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Stable identifier of an edge within one [`OntGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Raw arena index (includes tombstoned slots).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    label: LabelId,
    out: Vec<EdgeId>,
    inc: Vec<EdgeId>,
    alive: bool,
}

#[derive(Debug, Clone)]
struct EdgeData {
    src: NodeId,
    label: LabelId,
    dst: NodeId,
    alive: bool,
}

/// A borrowed view of a live node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef<'g> {
    /// The node's id.
    pub id: NodeId,
    /// The node's label `λ(n)`.
    pub label: &'g str,
}

/// A borrowed view of a live edge `(n1, α, n2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'g> {
    /// The edge's id.
    pub id: EdgeId,
    /// Source node id `n1`.
    pub src: NodeId,
    /// Edge label `α = δ(e)`.
    pub label: &'g str,
    /// Target node id `n2`.
    pub dst: NodeId,
}

/// A directed labeled graph with interned labels.
///
/// `OntGraph` implements the data layer of the paper's §2.1 / §3: a finite
/// set of labeled nodes `N`, a finite set of labeled edges `E`, the label
/// functions `λ` and `δ`, and the four transformation primitives `NA`,
/// `ND`, `EA`, `ED`.
///
/// ```
/// use onion_graph::{rel, OntGraph};
///
/// let mut g = OntGraph::new("carrier");
/// g.ensure_edge_by_labels("Car", rel::SUBCLASS_OF, "Vehicle").unwrap();
/// g.ensure_edge_by_labels("Price", rel::ATTRIBUTE_OF, "Car").unwrap();
/// assert_eq!(g.node_count(), 3); // Car, Vehicle, Price
/// assert!(g.has_edge("Car", "SubclassOf", "Vehicle"));
///
/// // ND removes the node and its incident edges
/// g.delete_node_by_label("Car").unwrap();
/// assert_eq!(g.edge_count(), 0);
/// ```
///
/// Two label regimes are supported:
///
/// * **consistent** (`unique_labels = true`, the paper's default for
///   ontologies, §1): a term may label at most one node, so nodes are
///   addressable by label;
/// * **free** (`unique_labels = false`): duplicate node labels are
///   allowed; useful for instance-level graphs where several individuals
///   share a display label.
///
/// Edges are *set*-semantics: at most one edge per `(src, label, dst)`
/// triple, matching the paper's definition of `E` as a set.
#[derive(Debug, Clone)]
pub struct OntGraph {
    name: String,
    interner: Interner,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    by_label: HashMap<LabelId, Vec<NodeId>>,
    edge_set: HashSet<(NodeId, LabelId, NodeId)>,
    unique_labels: bool,
    live_nodes: usize,
    live_edges: usize,
    journal: Option<Vec<GraphOp>>,
}

impl OntGraph {
    /// Creates an empty *consistent* graph (unique node labels), the mode
    /// used for ontologies throughout the paper.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_mode(name, true)
    }

    /// Creates an empty graph allowing duplicate node labels.
    pub fn new_multi(name: impl Into<String>) -> Self {
        Self::with_mode(name, false)
    }

    fn with_mode(name: impl Into<String>, unique_labels: bool) -> Self {
        OntGraph {
            name: name.into(),
            interner: Interner::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
            by_label: HashMap::new(),
            edge_set: HashSet::new(),
            unique_labels,
            live_nodes: 0,
            live_edges: 0,
            journal: None,
        }
    }

    /// The graph's name (the ontology name, e.g. `"carrier"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Whether node labels are enforced unique (consistent-ontology mode).
    pub fn unique_labels(&self) -> bool {
        self.unique_labels
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// True if the graph has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 0
    }

    /// Access to the label interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interns a label in this graph's namespace.
    pub fn intern(&mut self, label: &str) -> LabelId {
        self.interner.intern(label)
    }

    /// Resolves an interned label id to its string.
    pub fn resolve(&self, id: LabelId) -> &str {
        self.interner.resolve(id)
    }

    /// Looks up a label id without interning.
    pub fn label_id(&self, label: &str) -> Option<LabelId> {
        self.interner.get(label)
    }

    // ------------------------------------------------------------------
    // Journal
    // ------------------------------------------------------------------

    /// Starts recording transformation primitives into an op journal.
    ///
    /// The journal is the mechanism behind incremental articulation
    /// maintenance: source-ontology deltas are replayed against the
    /// articulation instead of rebuilding it (§5.3, DESIGN.md B1).
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Stops journaling and returns the recorded ops.
    pub fn take_journal(&mut self) -> Vec<GraphOp> {
        self.journal.take().unwrap_or_default()
    }

    /// Returns the ops recorded so far without stopping the journal.
    pub fn journal(&self) -> &[GraphOp] {
        self.journal.as_deref().unwrap_or(&[])
    }

    fn record(&mut self, op: impl FnOnce(&Self) -> GraphOp) {
        if self.journal.is_none() {
            return;
        }
        let entry = op(self);
        if let Some(journal) = self.journal.as_mut() {
            journal.push(entry);
        }
    }

    // ------------------------------------------------------------------
    // Node primitives (NA / ND)
    // ------------------------------------------------------------------

    /// `NA` — node addition (§3). Adds a node labeled `label`.
    ///
    /// Errors with [`GraphError::DuplicateLabel`] in consistent mode if a
    /// live node already carries the label, and with
    /// [`GraphError::EmptyLabel`] if the label is empty (`λ` must map to a
    /// non-null string).
    pub fn add_node(&mut self, label: &str) -> Result<NodeId> {
        if label.is_empty() {
            return Err(GraphError::EmptyLabel);
        }
        let lid = self.interner.intern(label);
        if self.unique_labels {
            if let Some(v) = self.by_label.get(&lid) {
                if !v.is_empty() {
                    return Err(GraphError::DuplicateLabel(label.to_string()));
                }
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData { label: lid, out: Vec::new(), inc: Vec::new(), alive: true });
        self.by_label.entry(lid).or_default().push(id);
        self.live_nodes += 1;
        self.record(|_| GraphOp::node_add(label));
        Ok(id)
    }

    /// Returns the node labeled `label`, creating it if absent.
    ///
    /// In multi-label mode this returns the *first* live node with the
    /// label, creating one only when none exists.
    pub fn ensure_node(&mut self, label: &str) -> Result<NodeId> {
        if let Some(id) = self.node_by_label(label) {
            return Ok(id);
        }
        self.add_node(label)
    }

    /// `ND` — node deletion (§3). Removes the node and all incident edges.
    pub fn delete_node(&mut self, id: NodeId) -> Result<()> {
        if !self.is_live_node(id) {
            return Err(GraphError::NodeNotFound(format!("{id:?}")));
        }
        // Collect incident edges first (both directions), then kill them.
        let incident: Vec<EdgeId> = self.nodes[id.index()]
            .out
            .iter()
            .chain(self.nodes[id.index()].inc.iter())
            .copied()
            .filter(|&e| self.edges[e.index()].alive)
            .collect();
        for e in incident {
            // A self-loop appears in both lists; delete_edge is idempotent
            // through the liveness check.
            if self.edges[e.index()].alive {
                self.delete_edge(e)?;
            }
        }
        let lid = self.nodes[id.index()].label;
        let label = self.interner.resolve(lid).to_string();
        self.nodes[id.index()].alive = false;
        if let Some(v) = self.by_label.get_mut(&lid) {
            v.retain(|&n| n != id);
        }
        self.live_nodes -= 1;
        self.record(|_| GraphOp::node_delete(label.clone()));
        Ok(())
    }

    /// Deletes the node addressed by `label` (consistent-ontology
    /// convenience, §3 end).
    pub fn delete_node_by_label(&mut self, label: &str) -> Result<()> {
        let id =
            self.node_by_label(label).ok_or_else(|| GraphError::NodeNotFound(label.to_string()))?;
        self.delete_node(id)
    }

    // ------------------------------------------------------------------
    // Edge primitives (EA / ED)
    // ------------------------------------------------------------------

    /// `EA` — edge addition (§3). Adds the edge `(src, label, dst)`.
    ///
    /// Errors if either endpoint is dead or if the identical triple is
    /// already present (`E` is a set).
    pub fn add_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> Result<EdgeId> {
        if label.is_empty() {
            return Err(GraphError::EmptyLabel);
        }
        if !self.is_live_node(src) {
            return Err(GraphError::NodeNotFound(format!("{src:?}")));
        }
        if !self.is_live_node(dst) {
            return Err(GraphError::NodeNotFound(format!("{dst:?}")));
        }
        let lid = self.interner.intern(label);
        if self.edge_set.contains(&(src, lid, dst)) {
            return Err(GraphError::DuplicateEdge(format!(
                "({}, {label}, {})",
                self.node_label(src).unwrap_or("?"),
                self.node_label(dst).unwrap_or("?"),
            )));
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, label: lid, dst, alive: true });
        self.nodes[src.index()].out.push(id);
        self.nodes[dst.index()].inc.push(id);
        self.edge_set.insert((src, lid, dst));
        self.live_edges += 1;
        self.record(|g| {
            GraphOp::edge_add(
                g.node_label(src).expect("live src"),
                label,
                g.node_label(dst).expect("live dst"),
            )
        });
        Ok(id)
    }

    /// Adds the edge if absent, returning the existing id otherwise.
    pub fn ensure_edge(&mut self, src: NodeId, label: &str, dst: NodeId) -> Result<EdgeId> {
        if let Some(lid) = self.interner.get(label) {
            if self.edge_set.contains(&(src, lid, dst)) {
                return self
                    .find_edge(src, label, dst)
                    .ok_or_else(|| GraphError::EdgeNotFound(label.to_string()));
            }
        }
        self.add_edge(src, label, dst)
    }

    /// Label-addressed [`OntGraph::ensure_edge`], creating missing endpoint
    /// nodes; this is the workhorse used by format importers and the
    /// articulation generator.
    pub fn ensure_edge_by_labels(&mut self, src: &str, label: &str, dst: &str) -> Result<EdgeId> {
        let s = self.ensure_node(src)?;
        let d = self.ensure_node(dst)?;
        self.ensure_edge(s, label, d)
    }

    /// `ED` — edge deletion (§3).
    pub fn delete_edge(&mut self, id: EdgeId) -> Result<()> {
        if !self.is_live_edge(id) {
            return Err(GraphError::EdgeNotFound(format!("{id:?}")));
        }
        let EdgeData { src, label, dst, .. } = self.edges[id.index()];
        self.edges[id.index()].alive = false;
        self.edge_set.remove(&(src, label, dst));
        self.live_edges -= 1;
        let (s, l, d) = (
            self.node_label(src).unwrap_or("?").to_string(),
            self.interner.resolve(label).to_string(),
            self.node_label(dst).unwrap_or("?").to_string(),
        );
        self.record(|_| GraphOp::edge_delete(s.clone(), l.clone(), d.clone()));
        Ok(())
    }

    /// Deletes the edge addressed by its `(src, label, dst)` labels.
    pub fn delete_edge_by_labels(&mut self, src: &str, label: &str, dst: &str) -> Result<()> {
        let id = self
            .find_edge_by_labels(src, label, dst)
            .ok_or_else(|| GraphError::EdgeNotFound(format!("({src}, {label}, {dst})")))?;
        self.delete_edge(id)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// True if `id` refers to a live node.
    pub fn is_live_node(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).map(|n| n.alive).unwrap_or(false)
    }

    /// True if `id` refers to a live edge.
    pub fn is_live_edge(&self, id: EdgeId) -> bool {
        self.edges.get(id.index()).map(|e| e.alive).unwrap_or(false)
    }

    /// The label `λ(n)` of a live node.
    pub fn node_label(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(id.index()).filter(|n| n.alive).map(|n| self.interner.resolve(n.label))
    }

    /// The interned label id of a live node.
    pub fn node_label_id(&self, id: NodeId) -> Option<LabelId> {
        self.nodes.get(id.index()).filter(|n| n.alive).map(|n| n.label)
    }

    /// The first live node carrying `label`, if any.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        let lid = self.interner.get(label)?;
        self.by_label.get(&lid).and_then(|v| v.first().copied())
    }

    /// All live nodes carrying `label` (singleton in consistent mode).
    pub fn nodes_by_label(&self, label: &str) -> &[NodeId] {
        self.interner
            .get(label)
            .and_then(|lid| self.by_label.get(&lid))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True if some live node carries `label`.
    pub fn contains_label(&self, label: &str) -> bool {
        !self.nodes_by_label(label).is_empty()
    }

    /// Looks up a live edge by endpoints and label.
    pub fn find_edge(&self, src: NodeId, label: &str, dst: NodeId) -> Option<EdgeId> {
        let lid = self.interner.get(label)?;
        if !self.edge_set.contains(&(src, lid, dst)) {
            return None;
        }
        self.nodes[src.index()].out.iter().copied().find(|&e| {
            let ed = &self.edges[e.index()];
            ed.alive && ed.label == lid && ed.dst == dst
        })
    }

    /// Label-addressed [`OntGraph::find_edge`].
    pub fn find_edge_by_labels(&self, src: &str, label: &str, dst: &str) -> Option<EdgeId> {
        let s = self.node_by_label(src)?;
        let d = self.node_by_label(dst)?;
        self.find_edge(s, label, d)
    }

    /// True if the edge `(src, label, dst)` exists (by labels).
    pub fn has_edge(&self, src: &str, label: &str, dst: &str) -> bool {
        self.find_edge_by_labels(src, label, dst).is_some()
    }

    /// The `(src, label, dst)` view of a live edge.
    pub fn edge(&self, id: EdgeId) -> Option<EdgeRef<'_>> {
        let e = self.edges.get(id.index()).filter(|e| e.alive)?;
        Some(EdgeRef { id, src: e.src, label: self.interner.resolve(e.label), dst: e.dst })
    }

    /// The interned label id of a live edge.
    pub fn edge_label_id(&self, id: EdgeId) -> Option<LabelId> {
        self.edges.get(id.index()).filter(|e| e.alive).map(|e| e.label)
    }

    // ------------------------------------------------------------------
    // Iteration
    // ------------------------------------------------------------------

    /// Iterates all live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'_>> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| NodeRef { id: NodeId(i as u32), label: self.interner.resolve(n.label) })
    }

    /// Iterates all live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.alive).map(|(i, _)| NodeId(i as u32))
    }

    /// Iterates all live edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.edges.iter().enumerate().filter(|(_, e)| e.alive).map(|(i, e)| EdgeRef {
            id: EdgeId(i as u32),
            src: e.src,
            label: self.interner.resolve(e.label),
            dst: e.dst,
        })
    }

    /// Iterates the live out-edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.incident(n, true)
    }

    /// Iterates the live in-edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        self.incident(n, false)
    }

    fn incident(&self, n: NodeId, out: bool) -> impl Iterator<Item = EdgeRef<'_>> + '_ {
        let list: &[EdgeId] = match self.nodes.get(n.index()).filter(|d| d.alive) {
            Some(d) => {
                if out {
                    &d.out
                } else {
                    &d.inc
                }
            }
            None => &[],
        };
        list.iter().copied().filter_map(move |e| self.edge(e))
    }

    /// Out-neighbors of `n` reachable via edges labeled `label`.
    pub fn out_neighbors<'g>(
        &'g self,
        n: NodeId,
        label: &str,
    ) -> impl Iterator<Item = NodeId> + 'g {
        let lid = self.interner.get(label);
        self.out_edges(n)
            .filter(move |e| lid.map(|l| self.edge_label_id(e.id) == Some(l)).unwrap_or(false))
            .map(|e| e.dst)
    }

    /// In-neighbors of `n` via edges labeled `label`.
    pub fn in_neighbors<'g>(&'g self, n: NodeId, label: &str) -> impl Iterator<Item = NodeId> + 'g {
        let lid = self.interner.get(label);
        self.in_edges(n)
            .filter(move |e| lid.map(|l| self.edge_label_id(e.id) == Some(l)).unwrap_or(false))
            .map(|e| e.src)
    }

    /// Out-degree (live edges only).
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_edges(n).count()
    }

    /// In-degree (live edges only).
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_edges(n).count()
    }

    /// All distinct edge labels in use on live edges.
    pub fn edge_labels(&self) -> Vec<&str> {
        let mut seen: HashSet<LabelId> = HashSet::new();
        for e in self.edges.iter().filter(|e| e.alive) {
            seen.insert(e.label);
        }
        let mut v: Vec<&str> = seen.into_iter().map(|l| self.interner.resolve(l)).collect();
        v.sort_unstable();
        v
    }

    // ------------------------------------------------------------------
    // Whole-graph operations
    // ------------------------------------------------------------------

    /// Copies all live nodes and edges of `other` into `self`.
    ///
    /// Nodes are merged **by label**: a node of `other` whose label already
    /// exists in `self` maps onto the existing node. Returns the
    /// node-id mapping from `other` into `self`. This is the primitive
    /// behind both ontology union (§5.1) and the global-merge baseline.
    pub fn merge_from(&mut self, other: &OntGraph) -> Result<HashMap<NodeId, NodeId>> {
        let mut map: HashMap<NodeId, NodeId> = HashMap::with_capacity(other.node_count());
        for n in other.nodes() {
            let here = self.ensure_node(n.label)?;
            map.insert(n.id, here);
        }
        for e in other.edges() {
            let s = map[&e.src];
            let d = map[&e.dst];
            self.ensure_edge(s, e.label, d)?;
        }
        Ok(map)
    }

    /// Builds a compacted copy with tombstones removed and dense ids.
    ///
    /// Returns the new graph and the old-to-new node-id mapping.
    pub fn compacted(&self) -> (OntGraph, HashMap<NodeId, NodeId>) {
        let mut g = OntGraph::with_mode(self.name.clone(), self.unique_labels);
        let mut map = HashMap::with_capacity(self.live_nodes);
        for n in self.nodes() {
            let id = g.add_node(n.label).expect("labels unique in source graph");
            map.insert(n.id, id);
        }
        for e in self.edges() {
            g.add_edge(map[&e.src], e.label, map[&e.dst]).expect("edges unique in source graph");
        }
        (g, map)
    }

    /// Structural equality on the `(label, edge-label, label)` level,
    /// ignoring ids, tombstones, names and insertion order.
    ///
    /// Only meaningful for consistent graphs (unique labels), which is how
    /// the paper compares ontologies.
    pub fn same_shape(&self, other: &OntGraph) -> bool {
        if self.node_count() != other.node_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        for n in self.nodes() {
            if !other.contains_label(n.label) {
                return false;
            }
        }
        for e in self.edges() {
            let s = self.node_label(e.src).expect("live");
            let d = self.node_label(e.dst).expect("live");
            if !other.has_edge(s, e.label, d) {
                return false;
            }
        }
        true
    }

    /// Sorted list of node labels (test/diagnostic helper).
    pub fn node_labels_sorted(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.nodes().map(|n| n.label).collect();
        v.sort_unstable();
        v
    }

    /// Sorted `(src, label, dst)` triples (test/diagnostic helper).
    pub fn edge_triples_sorted(&self) -> Vec<(String, String, String)> {
        let mut v: Vec<(String, String, String)> = self
            .edges()
            .map(|e| {
                (
                    self.node_label(e.src).expect("live").to_string(),
                    e.label.to_string(),
                    self.node_label(e.dst).expect("live").to_string(),
                )
            })
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> OntGraph {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let c = g.add_node("C").unwrap();
        g.add_edge(a, "SubclassOf", b).unwrap();
        g.add_edge(b, "SubclassOf", c).unwrap();
        g
    }

    #[test]
    fn add_and_count() {
        let g = abc();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_label_rejected() {
        let mut g = OntGraph::new("t");
        assert_eq!(g.add_node(""), Err(GraphError::EmptyLabel));
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        assert_eq!(g.add_edge(a, "", b), Err(GraphError::EmptyLabel));
    }

    #[test]
    fn duplicate_label_rejected_in_consistent_mode() {
        let mut g = OntGraph::new("t");
        g.add_node("Car").unwrap();
        assert!(matches!(g.add_node("Car"), Err(GraphError::DuplicateLabel(_))));
    }

    #[test]
    fn duplicate_label_allowed_in_multi_mode() {
        let mut g = OntGraph::new_multi("t");
        let a = g.add_node("Car").unwrap();
        let b = g.add_node("Car").unwrap();
        assert_ne!(a, b);
        assert_eq!(g.nodes_by_label("Car").len(), 2);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        assert!(matches!(g.add_edge(a, "SubclassOf", b), Err(GraphError::DuplicateEdge(_))));
        // but a different label between the same nodes is fine
        g.add_edge(a, "related", b).unwrap();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn ensure_node_returns_existing() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        assert_eq!(g.ensure_node("A").unwrap(), a);
        assert_eq!(g.node_count(), 3);
        let d = g.ensure_node("D").unwrap();
        assert_eq!(g.node_label(d), Some("D"));
        assert_eq!(g.node_count(), 4);
    }

    #[test]
    fn ensure_edge_is_idempotent() {
        let mut g = OntGraph::new("t");
        let e1 = g.ensure_edge_by_labels("A", "S", "B").unwrap();
        let e2 = g.ensure_edge_by_labels("A", "S", "B").unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn delete_node_removes_incident_edges() {
        let mut g = abc();
        let b = g.node_by_label("B").unwrap();
        g.delete_node(b).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.contains_label("B"));
        assert!(g.contains_label("A"));
        // ids of survivors still valid
        let a = g.node_by_label("A").unwrap();
        assert_eq!(g.node_label(a), Some("A"));
    }

    #[test]
    fn delete_node_with_self_loop() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        g.add_edge(a, "self", a).unwrap();
        g.delete_node(a).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn delete_edge_then_readd() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        let b = g.node_by_label("B").unwrap();
        let e = g.find_edge(a, "SubclassOf", b).unwrap();
        g.delete_edge(e).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.find_edge(a, "SubclassOf", b).is_none());
        // set-semantics allow re-adding after delete
        g.add_edge(a, "SubclassOf", b).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn deleting_dead_entities_errors() {
        let mut g = abc();
        let a = g.node_by_label("A").unwrap();
        g.delete_node(a).unwrap();
        assert!(g.delete_node(a).is_err());
        assert!(g.delete_node_by_label("A").is_err());
        assert!(g.delete_edge_by_labels("A", "SubclassOf", "B").is_err());
    }

    #[test]
    fn label_reusable_after_delete() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        g.delete_node(a).unwrap();
        let a2 = g.add_node("A").unwrap();
        assert_ne!(a, a2);
        assert_eq!(g.node_by_label("A"), Some(a2));
    }

    #[test]
    fn neighbors_filtered_by_label() {
        let mut g = OntGraph::new("t");
        let car = g.add_node("Car").unwrap();
        let veh = g.add_node("Vehicle").unwrap();
        let price = g.add_node("Price").unwrap();
        g.add_edge(car, "SubclassOf", veh).unwrap();
        g.add_edge(price, "AttributeOf", car).unwrap();
        let subs: Vec<NodeId> = g.out_neighbors(car, "SubclassOf").collect();
        assert_eq!(subs, vec![veh]);
        let attrs: Vec<NodeId> = g.in_neighbors(car, "AttributeOf").collect();
        assert_eq!(attrs, vec![price]);
        assert_eq!(g.out_neighbors(car, "NoSuch").count(), 0);
    }

    #[test]
    fn degrees() {
        let g = abc();
        let b = g.node_by_label("B").unwrap();
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.in_degree(b), 1);
    }

    #[test]
    fn edge_labels_sorted_unique() {
        let mut g = abc();
        g.ensure_edge_by_labels("A", "AttributeOf", "C").unwrap();
        assert_eq!(g.edge_labels(), vec!["AttributeOf", "SubclassOf"]);
    }

    #[test]
    fn merge_from_unions_by_label() {
        let mut g1 = abc();
        let mut g2 = OntGraph::new("u");
        g2.ensure_edge_by_labels("B", "SubclassOf", "D").unwrap();
        let map = g1.merge_from(&g2).unwrap();
        assert_eq!(g1.node_count(), 4); // A B C D — B merged
        assert_eq!(g1.edge_count(), 3);
        let b2 = g2.node_by_label("B").unwrap();
        assert_eq!(g1.node_label(map[&b2]), Some("B"));
    }

    #[test]
    fn compacted_drops_tombstones() {
        let mut g = abc();
        g.delete_node_by_label("B").unwrap();
        let (c, map) = g.compacted();
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(map.len(), 2);
        assert!(c.contains_label("A") && c.contains_label("C"));
    }

    #[test]
    fn same_shape_ignores_ids_and_order() {
        let g1 = abc();
        let mut g2 = OntGraph::new("other-name");
        // build in a different order
        g2.ensure_edge_by_labels("B", "SubclassOf", "C").unwrap();
        g2.ensure_edge_by_labels("A", "SubclassOf", "B").unwrap();
        assert!(g1.same_shape(&g2));
        g2.ensure_edge_by_labels("A", "SubclassOf", "C").unwrap();
        assert!(!g1.same_shape(&g2));
    }

    #[test]
    fn journal_records_all_four_primitives() {
        let mut g = OntGraph::new("t");
        g.enable_journal();
        let a = g.add_node("A").unwrap();
        let b = g.add_node("B").unwrap();
        let e = g.add_edge(a, "S", b).unwrap();
        g.delete_edge(e).unwrap();
        g.delete_node(b).unwrap();
        let j = g.take_journal();
        assert_eq!(j.len(), 5);
        assert!(matches!(j[0], GraphOp::NodeAdd { .. }));
        assert!(matches!(j[2], GraphOp::EdgeAdd { .. }));
        assert!(matches!(j[3], GraphOp::EdgeDelete { .. }));
        assert!(matches!(j[4], GraphOp::NodeDelete { .. }));
    }

    #[test]
    fn journal_records_cascaded_edge_deletes_before_node_delete() {
        let mut g = abc();
        g.enable_journal();
        g.delete_node_by_label("B").unwrap();
        let j = g.take_journal();
        // two incident edges then the node itself
        assert_eq!(j.len(), 3);
        assert!(matches!(j[0], GraphOp::EdgeDelete { .. }));
        assert!(matches!(j[1], GraphOp::EdgeDelete { .. }));
        assert!(matches!(j[2], GraphOp::NodeDelete { .. }));
    }

    #[test]
    fn edge_triples_sorted_roundtrip() {
        let g = abc();
        let t = g.edge_triples_sorted();
        assert_eq!(
            t,
            vec![
                ("A".to_string(), "SubclassOf".to_string(), "B".to_string()),
                ("B".to_string(), "SubclassOf".to_string(), "C".to_string()),
            ]
        );
    }
}
