//! Error type for graph operations.

use std::fmt;

/// Errors produced by graph construction, transformation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced an entry that does not exist or was deleted.
    NodeNotFound(String),
    /// An edge id referenced an entry that does not exist or was deleted.
    EdgeNotFound(String),
    /// A node with this label already exists and the graph enforces
    /// label uniqueness (consistent-ontology mode, paper §1).
    DuplicateLabel(String),
    /// An identical `(source, label, target)` edge already exists.
    DuplicateEdge(String),
    /// A label was empty; `λ(n)` must map to a non-null string (§3).
    EmptyLabel,
    /// Parse error in one of the interchange formats.
    Parse { line: usize, msg: String },
    /// A pattern was structurally invalid (e.g. dangling endpoint index).
    InvalidPattern(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeNotFound(s) => write!(f, "node not found: {s}"),
            GraphError::EdgeNotFound(s) => write!(f, "edge not found: {s}"),
            GraphError::DuplicateLabel(s) => {
                write!(f, "duplicate node label in consistent ontology: {s:?}")
            }
            GraphError::DuplicateEdge(s) => write!(f, "duplicate edge: {s}"),
            GraphError::EmptyLabel => write!(f, "labels must be non-empty strings"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::InvalidPattern(s) => write!(f, "invalid pattern: {s}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::DuplicateLabel("Car".into());
        assert!(e.to_string().contains("Car"));
        let e = GraphError::Parse { line: 7, msg: "bad token".into() };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::EmptyLabel);
    }
}
