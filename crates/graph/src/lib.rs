//! # onion-graph
//!
//! The graph-oriented data model underlying the ONION ontology-articulation
//! system (Mitra, Wiederhold, Kersten: *A Graph-Oriented Model for
//! Articulation of Ontology Interdependencies*, EDBT 2000).
//!
//! An ontology is represented as a **directed labeled graph** `G = (N, E)`:
//! a finite set of labeled nodes and a finite set of labeled edges. The node
//! label function `λ(n)` maps each node to a non-null string (typically a
//! noun phrase naming a concept); the edge label function `δ(e)` maps each
//! edge to a string naming either a natural-language verb or a pre-defined
//! semantic relationship such as `SubclassOf`, `AttributeOf`, `InstanceOf`
//! or `SemanticImplication`. The model is a refinement of the GOOD
//! graph-oriented object database model (Gyssens, Paredaens, Van Gucht,
//! PODS 1990).
//!
//! This crate provides:
//!
//! * [`OntGraph`] — the graph itself, with interned labels, tombstone
//!   deletion, and per-label node/edge indexes;
//! * the four **graph transformation primitives** of the paper (§3):
//!   node addition `NA`, node deletion `ND`, edge addition `EA`, edge
//!   deletion `ED`, both as direct methods and as a replayable
//!   [`ops::GraphOp`] journal;
//! * **graph patterns** ([`pattern::Pattern`]) with the paper's textual
//!   notation (`carrier:car:driver`, `truck(O: owner, model)`) and a
//!   backtracking subgraph [`matcher`] supporting exact and *fuzzy*
//!   matching (synonym node labels, relaxed edge labels);
//! * traversals, reachability, strongly connected components and per-label
//!   transitive [`closure`];
//! * **durability** ([`wal`]): an LSN-stamped, CRC-framed write-ahead
//!   log of `GraphOp` records with group flush and segment rotation,
//!   fuzzy shard-incremental checkpoints of the published snapshot, and
//!   crash recovery (torn-tail truncation, torn-manifest fallback,
//!   committed-batch replay) behind the [`wal::Durability`] handle;
//! * snapshot isolation for concurrent readers: [`snapshot::ShardedSnapshot`]
//!   (an immutable, `Send + Sync` frozen view, partitioned into
//!   node-range [`snapshot::SnapshotShard`]s that rebuild independently)
//!   and [`snapshot::SnapshotStore`] (mutex-free epoch-pointer load,
//!   incremental dirty-shard publish), the substrate `onion-exec`
//!   parallelises over;
//! * interchange formats: a line-oriented [`text`] format, a minimal
//!   [`xml`] subset, and [`dot`] output for visualisation.
//!
//! The crate is deliberately free of ontology-level semantics (consistency,
//! relation properties, rules); those live in `onion-ontology` and
//! `onion-rules`, mirroring the paper's separation of the data layer from
//! the inference machinery (§2.1).

pub mod closure;
pub mod dot;
mod edge_index;
pub mod error;
pub mod graph;
pub mod hash;
pub mod label;
pub mod matcher;
pub mod ops;
pub mod path;
pub mod pattern;
pub mod snapshot;
pub mod stats;
pub mod text;
pub mod traverse;
pub mod wal;
pub mod xml;

pub use error::GraphError;
pub use graph::{
    adaptive_shard_count, EdgeId, EdgeRef, NodeId, NodeRef, OntGraph, DEFAULT_SHARD_COUNT,
    MAX_ADAPTIVE_SHARDS,
};
pub use label::{Interner, LabelId};
pub use matcher::{CaseInsensitiveEquiv, ExactEquiv, LabelEquiv, Match, MatchConfig, Matcher};
pub use ops::GraphOp;
pub use pattern::{EdgeConstraint, NodeConstraint, Pattern, PatternEdge, PatternNode};
pub use snapshot::{GraphSnapshot, PublishStats, ShardedSnapshot, SnapshotShard, SnapshotStore};
pub use wal::{CheckpointStats, Durability, Lsn, RecoveryStats, WalError};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Well-known edge labels used by the paper's running example (§2.5).
///
/// Ontologies may use arbitrary verbs as edge labels; these four have
/// pre-defined semantics in ONION and are the ones drawn in Fig. 2 of the
/// paper (abbreviated `S`, `A`, `I`, `SI` there).
pub mod rel {
    /// `SubclassOf` — class specialisation, transitive (`S` in Fig. 2).
    pub const SUBCLASS_OF: &str = "SubclassOf";
    /// `AttributeOf` — attribute attachment (`A` in Fig. 2).
    pub const ATTRIBUTE_OF: &str = "AttributeOf";
    /// `InstanceOf` — class membership of an individual (`I` in Fig. 2).
    pub const INSTANCE_OF: &str = "InstanceOf";
    /// `SemanticImplication` — cross-ontology implication (`SI` in Fig. 2).
    pub const SEMANTIC_IMPLICATION: &str = "SI";
    /// `SIBridge` — the articulation bridge edge label introduced in §4.1.
    pub const SI_BRIDGE: &str = "SIBridge";
}
