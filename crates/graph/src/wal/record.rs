//! The WAL wire format: op payload codec and record framing.
//!
//! Every record on disk is framed as
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u8 kind][u64 lsn][body]
//! ```
//!
//! with all integers little-endian. Strings are `u32` byte-length
//! prefixed UTF-8; lists are `u32` count prefixed. The frame CRC covers
//! the whole payload (kind, LSN, and body), so a torn or bit-rotted
//! tail is detected by the first frame that fails length or CRC
//! validation — everything before it is trusted, everything at and
//! after it is discarded.
//!
//! The [`GraphOp`] body encoding is a public, versioned contract
//! ([`encode_op`] / [`decode_op`]): golden-bytes tests outside this
//! crate pin it so the format cannot drift silently.

use super::{crc32, Lsn, WalError, WalResult};
use crate::GraphOp;

/// Frame kind tags (payload byte 0).
const KIND_BEGIN: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_CHECKPOINT: u8 = 3;
const KIND_OP: u8 = 4;

/// Op tags (first byte of an `Op` body).
const OP_NODE_ADD: u8 = 1;
const OP_NODE_DELETE: u8 = 2;
const OP_EDGE_ADD: u8 = 3;
const OP_EDGE_DELETE: u8 = 4;

/// Upper bound on a single frame payload; anything larger is treated
/// as corruption rather than attempted as an allocation.
const MAX_PAYLOAD: u32 = 1 << 30;

/// One logical WAL record (the LSN lives in the frame, not here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Opens an op batch; ops up to the matching `Commit` are atomic.
    Begin,
    /// Closes the current op batch. Only committed batches replay.
    Commit,
    /// Notes that checkpoint `manifest_seq` covering everything up to
    /// `last_lsn` was durably written (informational; recovery trusts
    /// the manifest files, not this record).
    Checkpoint {
        /// Sequence number of the manifest.
        manifest_seq: u64,
        /// Last LSN the checkpoint covers.
        last_lsn: Lsn,
    },
    /// One journaled graph transformation.
    Op(GraphOp),
}

// ---------------------------------------------------------------------
// primitive writers / reader
// ---------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds- and UTF-8-checked sequential reader over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string for error messages.
    what: &'a str,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'a str) -> Self {
        Reader { buf, pos: 0, what }
    }

    fn corrupt(&self, detail: impl Into<String>) -> WalError {
        WalError::Corrupt { file: self.what.to_string(), detail: detail.into() }
    }

    fn take(&mut self, n: usize) -> WalResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(self.corrupt(format!(
                "short read: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> WalResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> WalResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> WalResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> WalResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid utf-8 in string"))
    }

    /// Guarded element count for a list about to be decoded: each
    /// element needs at least `min_elem_bytes`, so a count implying
    /// more bytes than remain is corruption, not an allocation.
    pub(crate) fn count(&mut self, min_elem_bytes: usize) -> WalResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(self.corrupt(format!("implausible element count {n}")));
        }
        Ok(n)
    }

    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub(crate) fn expect_end(&self) -> WalResult<()> {
        if self.finished() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

// ---------------------------------------------------------------------
// GraphOp body codec
// ---------------------------------------------------------------------

fn put_pairs(buf: &mut Vec<u8>, pairs: &[(String, String)]) {
    put_u32(buf, pairs.len() as u32);
    for (a, b) in pairs {
        put_str(buf, a);
        put_str(buf, b);
    }
}

fn put_triples(buf: &mut Vec<u8>, triples: &[(String, String, String)]) {
    put_u32(buf, triples.len() as u32);
    for (a, b, c) in triples {
        put_str(buf, a);
        put_str(buf, b);
        put_str(buf, c);
    }
}

fn read_pairs(r: &mut Reader<'_>) -> WalResult<Vec<(String, String)>> {
    let n = r.count(8)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((r.str()?, r.str()?));
    }
    Ok(v)
}

fn read_triples(r: &mut Reader<'_>) -> WalResult<Vec<(String, String, String)>> {
    let n = r.count(12)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push((r.str()?, r.str()?, r.str()?));
    }
    Ok(v)
}

/// Appends the binary encoding of `op` to `buf`.
pub fn encode_op(op: &GraphOp, buf: &mut Vec<u8>) {
    match op {
        GraphOp::NodeAdd { label, out_edges, in_edges } => {
            buf.push(OP_NODE_ADD);
            put_str(buf, label);
            put_pairs(buf, out_edges);
            put_pairs(buf, in_edges);
        }
        GraphOp::NodeDelete { label, out_edges, in_edges } => {
            buf.push(OP_NODE_DELETE);
            put_str(buf, label);
            put_pairs(buf, out_edges);
            put_pairs(buf, in_edges);
        }
        GraphOp::EdgeAdd { edges } => {
            buf.push(OP_EDGE_ADD);
            put_triples(buf, edges);
        }
        GraphOp::EdgeDelete { edges } => {
            buf.push(OP_EDGE_DELETE);
            put_triples(buf, edges);
        }
    }
}

/// Decodes one op occupying exactly all of `bytes`.
pub fn decode_op(bytes: &[u8]) -> WalResult<GraphOp> {
    let mut r = Reader::new(bytes, "op");
    let op = read_op(&mut r)?;
    r.expect_end()?;
    Ok(op)
}

fn read_op(r: &mut Reader<'_>) -> WalResult<GraphOp> {
    match r.u8()? {
        OP_NODE_ADD => Ok(GraphOp::NodeAdd {
            label: r.str()?,
            out_edges: read_pairs(r)?,
            in_edges: read_pairs(r)?,
        }),
        OP_NODE_DELETE => Ok(GraphOp::NodeDelete {
            label: r.str()?,
            out_edges: read_pairs(r)?,
            in_edges: read_pairs(r)?,
        }),
        OP_EDGE_ADD => Ok(GraphOp::EdgeAdd { edges: read_triples(r)? }),
        OP_EDGE_DELETE => Ok(GraphOp::EdgeDelete { edges: read_triples(r)? }),
        tag => {
            Err(WalError::Corrupt { file: "op".into(), detail: format!("unknown op tag {tag}") })
        }
    }
}

// ---------------------------------------------------------------------
// record framing
// ---------------------------------------------------------------------

/// Appends the framed encoding of `(lsn, rec)` to `out`.
pub(crate) fn encode_record(lsn: Lsn, rec: &WalRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(16);
    match rec {
        WalRecord::Begin => {
            payload.push(KIND_BEGIN);
            put_u64(&mut payload, lsn.0);
        }
        WalRecord::Commit => {
            payload.push(KIND_COMMIT);
            put_u64(&mut payload, lsn.0);
        }
        WalRecord::Checkpoint { manifest_seq, last_lsn } => {
            payload.push(KIND_CHECKPOINT);
            put_u64(&mut payload, lsn.0);
            put_u64(&mut payload, *manifest_seq);
            put_u64(&mut payload, last_lsn.0);
        }
        WalRecord::Op(op) => {
            payload.push(KIND_OP);
            put_u64(&mut payload, lsn.0);
            encode_op(op, &mut payload);
        }
    }
    put_u32(out, payload.len() as u32);
    put_u32(out, crc32(&payload));
    out.extend_from_slice(&payload);
}

/// Attempts to decode one framed record at the head of `bytes`.
///
/// Returns `Ok(Some((lsn, record, frame_len)))` for a valid frame, and
/// `Ok(None)` for a **torn tail** — too few bytes for a frame, a length
/// running past the buffer, or a CRC mismatch. A frame whose CRC
/// validates but whose payload doesn't parse is a hard
/// [`WalError::Corrupt`] (the bytes were durably written that way).
pub(crate) fn decode_record(
    bytes: &[u8],
    what: &str,
) -> WalResult<Option<(Lsn, WalRecord, usize)>> {
    if bytes.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Ok(None);
    }
    let len = len as usize;
    if bytes.len() < 8 + len {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let payload = &bytes[8..8 + len];
    if crc32(payload) != crc {
        return Ok(None);
    }
    let mut r = Reader::new(payload, what);
    let kind = r.u8()?;
    let lsn = Lsn(r.u64()?);
    let rec = match kind {
        KIND_BEGIN => WalRecord::Begin,
        KIND_COMMIT => WalRecord::Commit,
        KIND_CHECKPOINT => {
            WalRecord::Checkpoint { manifest_seq: r.u64()?, last_lsn: Lsn(r.u64()?) }
        }
        KIND_OP => WalRecord::Op(read_op(&mut r)?),
        other => {
            return Err(WalError::Corrupt {
                file: what.to_string(),
                detail: format!("unknown record kind {other}"),
            })
        }
    };
    r.expect_end()?;
    Ok(Some((lsn, rec, 8 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<GraphOp> {
        vec![
            GraphOp::node_add("Vehicle"),
            GraphOp::node_add_with(
                "Car",
                vec![("SubclassOf".into(), "Vehicle".into())],
                vec![("Price".into(), "AttributeOf".into())],
            ),
            GraphOp::edge_add("Car", "SubclassOf", "Vehicle"),
            GraphOp::edge_delete("Car", "SubclassOf", "Vehicle"),
            GraphOp::NodeDelete {
                label: "Car".into(),
                out_edges: vec![("SubclassOf".into(), "Vehicle".into())],
                in_edges: vec![],
            },
            GraphOp::EdgeAdd { edges: vec![] },
        ]
    }

    #[test]
    fn ops_roundtrip() {
        for op in ops() {
            let mut buf = Vec::new();
            encode_op(&op, &mut buf);
            assert_eq!(decode_op(&buf).unwrap(), op);
        }
    }

    #[test]
    fn records_roundtrip_and_chain() {
        let mut buf = Vec::new();
        let recs = vec![
            (Lsn(1), WalRecord::Begin),
            (Lsn(2), WalRecord::Op(GraphOp::edge_add("a.b", "rel", "c"))),
            (Lsn(3), WalRecord::Commit),
            (Lsn(4), WalRecord::Checkpoint { manifest_seq: 7, last_lsn: Lsn(3) }),
        ];
        for (lsn, r) in &recs {
            encode_record(*lsn, r, &mut buf);
        }
        let mut at = 0;
        let mut seen = Vec::new();
        while let Some((lsn, rec, n)) = decode_record(&buf[at..], "t").unwrap() {
            seen.push((lsn, rec));
            at += n;
        }
        assert_eq!(at, buf.len());
        assert_eq!(seen, recs);
    }

    #[test]
    fn torn_tail_is_detected_not_misparsed() {
        let mut buf = Vec::new();
        encode_record(Lsn(1), &WalRecord::Begin, &mut buf);
        let full = buf.len();
        encode_record(Lsn(2), &WalRecord::Commit, &mut buf);
        // Every strict prefix of the second frame decodes the first and
        // then reports a torn tail.
        for cut in full..buf.len() {
            let slice = &buf[..cut];
            let (_, _, n) = decode_record(slice, "t").unwrap().expect("first frame intact");
            assert!(decode_record(&slice[n..], "t").unwrap().is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bit_fails_crc() {
        let mut buf = Vec::new();
        encode_record(Lsn(9), &WalRecord::Op(GraphOp::node_add("X")), &mut buf);
        for i in 8..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(decode_record(&bad, "t").unwrap().is_none(), "flip at {i}");
        }
    }
}
