//! Durability: write-ahead log, shard-incremental checkpoints, recovery.
//!
//! The op journal ([`crate::GraphOp`]) was always half of a write-ahead
//! log; this module is the other half. Three pieces compose:
//!
//! * [`LogManager`] — an append-only log of LSN-stamped, CRC-framed
//!   records (`Begin` / `Op` / `Commit` / `Checkpoint`) in rotating
//!   segment files. Appends buffer in memory and hit disk on
//!   [`LogManager::flush`] (group flush — the durable layer flushes at
//!   publish/commit boundaries, not per record). On reopen, a torn tail
//!   record is truncated; only batches closed by a `Commit` replay.
//! * the checkpointer ([`Manifest`], [`CheckpointStats`]) — **fuzzy,
//!   shard-incremental** checkpoints. The
//!   per-shard version stamps that drive incremental publish also tell
//!   the checkpointer exactly which CSR shards changed since the last
//!   checkpoint, so it writes only dirty shards plus a small manifest
//!   `{graph_id, shard_count, per-shard stamp, last_lsn}`. Because it
//!   serializes the *published immutable* [`crate::ShardedSnapshot`]
//!   shards — never the live graph — checkpointing cannot block readers
//!   or writers.
//! * [`Durability`] — the per-graph handle tying the two together:
//!   bootstrap, batch logging, checkpointing with WAL-segment
//!   retirement, and crash recovery (newest valid manifest, restore,
//!   replay committed WAL suffix; a torn manifest falls back to the
//!   previous checkpoint).
//!
//! Ops are journaled and replayed **label-addressed** (the paper's §3
//! convention for consistent ontologies), so recovery reproduces the
//! graph up to node-id renaming — every label-level observation (nodes,
//! edge triples, traversals, articulation) is byte-identical. Durable
//! mode therefore requires a consistent (`unique_labels`) graph.

mod checkpoint;
mod crc;
mod durable;
mod log;
mod record;

pub use checkpoint::{CheckpointStats, Manifest};
pub use durable::{Durability, RecoveryStats};
pub use log::{CommittedBatch, LogManager, SegmentInfo};
pub use record::{decode_op, encode_op, WalRecord};

pub(crate) use crc::crc32;

use crate::GraphError;

/// A log sequence number. LSN 0 is reserved as "before the first
/// record": replaying from [`Lsn::ZERO`] replays the whole log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The "replay everything" origin.
    pub const ZERO: Lsn = Lsn(0);
}

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A frame, segment, or checkpoint file failed validation.
    Corrupt {
        /// File (or context) the corruption was found in.
        file: String,
        /// What failed.
        detail: String,
    },
    /// The durable directory is missing a required file.
    Missing(String),
    /// The graph cannot be made durable (e.g. multi-label mode).
    Unsupported(String),
    /// Replaying a committed op against the restored graph failed —
    /// the log and checkpoint disagree.
    Replay(GraphError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt { file, detail } => {
                write!(f, "corrupt wal state in {file}: {detail}")
            }
            WalError::Missing(what) => write!(f, "missing durable state: {what}"),
            WalError::Unsupported(what) => write!(f, "durability unsupported: {what}"),
            WalError::Replay(e) => write!(f, "wal replay diverged from checkpoint: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<GraphError> for WalError {
    fn from(e: GraphError) -> Self {
        WalError::Replay(e)
    }
}

/// Specialised result for the durability layer.
pub type WalResult<T> = std::result::Result<T, WalError>;

#[cfg(test)]
pub(crate) mod testdir {
    //! Minimal unique tempdir for in-crate WAL unit tests. The shared
    //! helper lives in `onion_testkit::fs` (which depends on this
    //! crate, so it cannot be used from here without a dev-dep cycle).
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub(crate) struct TestDir(pub PathBuf);

    impl TestDir {
        pub(crate) fn new(tag: &str) -> Self {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "onion-wal-{}-{}-{}",
                tag,
                std::process::id(),
                n
            ));
            std::fs::create_dir_all(&dir).expect("create test dir");
            TestDir(dir)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}
