//! The per-graph durability handle: bootstrap, batch logging,
//! checkpointing with WAL retirement, and crash recovery.
//!
//! A durable directory contains:
//!
//! * `meta.bin` — graph name + mode, written once at
//!   [`Durability::create`] (before any other file, so a recovering
//!   process always knows what it is recovering);
//! * `wal-*.seg` — the log segments ([`LogManager`]);
//! * `ckpt-*.mf`, `strings-*.bin`, `shard-*.bin` — checkpoints
//!   ([`super::checkpoint`]).
//!
//! ## Recovery protocol
//!
//! 1. Truncate a torn tail frame off the newest WAL segment.
//! 2. Walk manifests newest-first; restore the first one whose own CRC
//!    *and* every referenced shard/strings file validate. A torn or
//!    half-written manifest is skipped — falling back to the previous
//!    checkpoint — and if none restores, recovery starts from an empty
//!    graph (the bootstrap batch in the WAL rebuilds it).
//! 3. Replay every committed batch with commit LSN > the manifest's
//!    `last_lsn`. Batches without a `Commit` record never apply.
//!
//! Checkpoints retire WAL segments only up to the *older* of the two
//! retained manifests' `last_lsn`, so the fallback in step 2 always has
//! the log suffix it needs.

use std::path::{Path, PathBuf};

use super::checkpoint::{gc, load_manifests, restore_graph, write_checkpoint};
use super::log::LogManager;
use super::record::{put_str, put_u32, Reader, WalRecord};
use super::{CheckpointStats, Lsn, Manifest, WalError, WalResult};
use crate::snapshot::ShardedSnapshot;
use crate::{ops, GraphOp, OntGraph};

const MAGIC_META: u32 = 0x4F4E_4D45; // "ONME"
const META_FILE: &str = "meta.bin";

/// How many manifests [`Durability`] retains (newest + its fallback).
const KEEP_MANIFESTS: usize = 2;

/// What a [`Durability::open`] recovery did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Sequence of the manifest restored from; `None` when recovery
    /// rebuilt purely from the WAL (no usable checkpoint).
    pub manifest_seq: Option<u64>,
    /// The LSN replay resumed after.
    pub checkpoint_lsn: Lsn,
    /// Committed batches replayed on top of the checkpoint.
    pub replayed_batches: usize,
    /// Ops inside those batches.
    pub replayed_ops: usize,
}

/// Durable state handle for one graph.
pub struct Durability {
    dir: PathBuf,
    log: LogManager,
    /// Retained manifests, newest first (≤ [`KEEP_MANIFESTS`]).
    manifests: Vec<Manifest>,
    name: String,
    unique_labels: bool,
}

fn write_meta(dir: &Path, name: &str, unique_labels: bool) -> WalResult<()> {
    let mut p = Vec::new();
    put_u32(&mut p, MAGIC_META);
    put_str(&mut p, name);
    p.push(unique_labels as u8);
    let mut framed = Vec::with_capacity(p.len() + 8);
    put_u32(&mut framed, p.len() as u32);
    put_u32(&mut framed, super::crc32(&p));
    framed.extend_from_slice(&p);
    let path = dir.join(META_FILE);
    std::fs::write(&path, &framed)?;
    std::fs::File::open(&path)?.sync_all()?;
    Ok(())
}

fn read_meta(dir: &Path) -> WalResult<(String, bool)> {
    let path = dir.join(META_FILE);
    let what = path.display().to_string();
    let bytes = std::fs::read(&path)
        .map_err(|_| WalError::Missing(format!("{what} (not a durable directory?)")))?;
    let corrupt =
        |detail: &str| WalError::Corrupt { file: what.clone(), detail: detail.to_string() };
    if bytes.len() < 8 {
        return Err(corrupt("meta file too short"));
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if bytes.len() != 8 + len || super::crc32(&bytes[8..]) != crc {
        return Err(corrupt("meta frame invalid"));
    }
    let mut r = Reader::new(&bytes[8..], &what);
    if r.u32()? != MAGIC_META {
        return Err(corrupt("bad meta magic"));
    }
    let name = r.str()?;
    let unique = r.u8()? != 0;
    r.expect_end()?;
    Ok((name, unique))
}

impl Durability {
    /// True if `dir` holds durable state (created earlier).
    pub fn has_state(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(META_FILE).exists()
    }

    /// Initialises a fresh durable directory for a graph named `name`.
    pub fn create(dir: impl AsRef<Path>, name: &str, unique_labels: bool) -> WalResult<Durability> {
        if !unique_labels {
            return Err(WalError::Unsupported(
                "durable graphs require consistent (unique-label) mode".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if Self::has_state(&dir) {
            return Err(WalError::Unsupported(format!(
                "{} already holds durable state; use open",
                dir.display()
            )));
        }
        write_meta(&dir, name, unique_labels)?;
        let log = LogManager::open(&dir)?;
        Ok(Durability { dir, log, manifests: Vec::new(), name: name.to_string(), unique_labels })
    }

    /// Recovers the graph from `dir` and reopens the log for appends.
    pub fn open(dir: impl AsRef<Path>) -> WalResult<(OntGraph, Durability, RecoveryStats)> {
        let dir = dir.as_ref().to_path_buf();
        let (name, unique_labels) = read_meta(&dir)?;
        let log = LogManager::open(&dir)?;
        let mut manifests = load_manifests(&dir)?;
        // Newest manifest whose files all validate wins; the rest of
        // the retained chain starts at it.
        let mut restored: Option<(usize, OntGraph)> = None;
        for (i, m) in manifests.iter().enumerate() {
            match restore_graph(&dir, m) {
                Ok(g) => {
                    restored = Some((i, g));
                    break;
                }
                Err(WalError::Io(e)) if e.kind() != std::io::ErrorKind::NotFound => {
                    return Err(WalError::Io(e))
                }
                Err(_) => continue,
            }
        }
        let (mut g, manifest_seq, from) = match restored {
            Some((i, g)) => {
                manifests.drain(..i);
                let m = &manifests[0];
                (g, Some(m.seq), m.last_lsn)
            }
            None => {
                manifests.clear();
                (OntGraph::new(name.clone()), None, Lsn::ZERO)
            }
        };
        manifests.truncate(KEEP_MANIFESTS);
        let batches = LogManager::replay(&dir, from)?;
        let mut replayed_ops = 0;
        for batch in &batches {
            replayed_ops += batch.ops.len();
            ops::apply_all(&mut g, &batch.ops)?;
        }
        let stats = RecoveryStats {
            manifest_seq,
            checkpoint_lsn: from,
            replayed_batches: batches.len(),
            replayed_ops,
        };
        onion_obs::count!("onion_recovery_total");
        onion_obs::count!("onion_recovery_replayed_batches_total", stats.replayed_batches);
        onion_obs::count!("onion_recovery_replayed_ops_total", stats.replayed_ops);
        onion_obs::event!(
            "recovery",
            source = name,
            manifest_seq = manifest_seq.unwrap_or(0),
            checkpoint_lsn = from.0,
            replayed_batches = stats.replayed_batches,
            replayed_ops = stats.replayed_ops,
        );
        Ok((g, Durability { dir, log, manifests, name, unique_labels }, stats))
    }

    /// Appends `ops` as one atomic batch (`Begin … Commit`), returning
    /// the commit LSN. Nothing is durable until [`Durability::flush`].
    pub fn log_batch(&mut self, ops: &[GraphOp]) -> Lsn {
        if ops.is_empty() {
            return self.log.last_lsn();
        }
        self.log.append(&WalRecord::Begin);
        for op in ops {
            self.log.append(&WalRecord::Op(op.clone()));
        }
        self.log.append(&WalRecord::Commit)
    }

    /// Group-flushes all buffered records; returns the last durable LSN.
    pub fn flush(&mut self) -> WalResult<Lsn> {
        self.log.flush()
    }

    /// Writes a (shard-incremental) checkpoint of `snap`, covering the
    /// log through `last_lsn`, then retires WAL segments no longer
    /// needed by the retained manifests.
    ///
    /// `snap` must be a publish of this graph's state at a flush
    /// boundary ≤ `last_lsn` — the `OnionSystem` wrapper flushes and
    /// publishes in one motion to guarantee it.
    pub fn checkpoint(
        &mut self,
        snap: &ShardedSnapshot,
        last_lsn: Lsn,
    ) -> WalResult<CheckpointStats> {
        let (manifest, mut stats) = write_checkpoint(
            &self.dir,
            snap,
            self.unique_labels,
            last_lsn,
            self.manifests.first(),
        )?;
        self.log.append(&WalRecord::Checkpoint { manifest_seq: manifest.seq, last_lsn });
        self.log.flush()?;
        self.manifests.insert(0, manifest);
        self.manifests.truncate(KEEP_MANIFESTS);
        gc(&self.dir, &self.manifests)?;
        // Segments are only retired up to the *older* retained
        // manifest's horizon, so a torn-newest-manifest fallback can
        // still replay its full suffix.
        let horizon = self.manifests.last().expect("just inserted").last_lsn;
        stats.wal_segments_retired = self.log.retire(horizon)?;
        Ok(stats)
    }

    /// The newest retained manifest, if any checkpoint was taken.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.manifests.first()
    }

    /// Last LSN handed out (durable or buffered).
    pub fn last_lsn(&self) -> Lsn {
        self.log.last_lsn()
    }

    /// Bytes appended but not yet flushed.
    pub fn unflushed_bytes(&self) -> usize {
        self.log.unflushed_bytes()
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Graph name recorded at [`Durability::create`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current WAL segments (ascending).
    pub fn segments(&self) -> WalResult<Vec<super::SegmentInfo>> {
        self.log.segments()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testdir::TestDir;
    use super::*;
    use crate::snapshot::SnapshotStore;

    fn shape(g: &OntGraph) -> (Vec<String>, Vec<(String, String, String)>) {
        let mut nodes: Vec<String> =
            g.node_ids().map(|n| g.node_label(n).unwrap().to_string()).collect();
        nodes.sort();
        let mut edges: Vec<(String, String, String)> = g
            .edges()
            .map(|e| {
                (
                    g.node_label(e.src).unwrap().to_string(),
                    e.label.to_string(),
                    g.node_label(e.dst).unwrap().to_string(),
                )
            })
            .collect();
        edges.sort();
        (nodes, edges)
    }

    /// Applies `ops` to `g` and logs them as one committed batch.
    fn commit(g: &mut OntGraph, dur: &mut Durability, ops: &[GraphOp]) -> Lsn {
        ops::apply_all(g, ops).unwrap();
        let lsn = dur.log_batch(ops);
        dur.flush().unwrap();
        lsn
    }

    #[test]
    fn wal_only_recovery_reproduces_graph() {
        let td = TestDir::new("dur-walonly");
        let mut g = OntGraph::new("src");
        let mut dur = Durability::create(&td.0, "src", true).unwrap();
        commit(&mut g, &mut dur, &[GraphOp::edge_add("Car", "SubclassOf", "Vehicle")]);
        commit(&mut g, &mut dur, &[GraphOp::node_delete("Car")]);
        drop(dur);

        let (rg, _dur, stats) = Durability::open(&td.0).unwrap();
        assert_eq!(stats.manifest_seq, None);
        assert_eq!(stats.replayed_batches, 2);
        assert_eq!(shape(&rg), shape(&g));
    }

    #[test]
    fn checkpoint_bounds_replay_and_retires_segments() {
        let td = TestDir::new("dur-ckpt");
        let mut g = OntGraph::new("src");
        g.set_shard_count(4);
        let mut dur = Durability::create(&td.0, "src", true).unwrap();
        let store = SnapshotStore::new(&g);
        commit(&mut g, &mut dur, &[GraphOp::edge_add("A", "s", "B")]);
        let lsn = commit(&mut g, &mut dur, &[GraphOp::edge_add("B", "s", "C")]);
        let snap = store.publish(&g);
        let s1 = dur.checkpoint(&snap, lsn).unwrap();
        assert_eq!(s1.seq, 1);
        let post = commit(&mut g, &mut dur, &[GraphOp::edge_add("C", "s", "D")]);
        assert!(post > lsn);
        drop(dur);

        let (rg, dur, stats) = Durability::open(&td.0).unwrap();
        assert_eq!(stats.manifest_seq, Some(1));
        assert_eq!(stats.checkpoint_lsn, lsn);
        assert_eq!((stats.replayed_batches, stats.replayed_ops), (1, 1));
        assert_eq!(shape(&rg), shape(&g));
        drop(dur);
    }

    #[test]
    fn uncommitted_tail_batch_is_not_replayed() {
        let td = TestDir::new("dur-uncommitted");
        let mut g = OntGraph::new("src");
        let mut dur = Durability::create(&td.0, "src", true).unwrap();
        commit(&mut g, &mut dur, &[GraphOp::edge_add("A", "s", "B")]);
        // Flushed Begin+Op with no Commit — the crash window between
        // batch start and commit.
        dur.log.append(&WalRecord::Begin);
        dur.log.append(&WalRecord::Op(GraphOp::node_add("Ghost")));
        dur.flush().unwrap();
        drop(dur);

        let (rg, _dur, stats) = Durability::open(&td.0).unwrap();
        assert_eq!(stats.replayed_batches, 1);
        assert!(rg.node_by_label("Ghost").is_none());
        assert_eq!(shape(&rg), shape(&g));
    }

    #[test]
    fn second_open_after_recovery_is_stable() {
        let td = TestDir::new("dur-reopen");
        let mut g = OntGraph::new("src");
        let mut dur = Durability::create(&td.0, "src", true).unwrap();
        commit(&mut g, &mut dur, &[GraphOp::edge_add("A", "s", "B")]);
        drop(dur);
        let (rg1, dur1, _) = Durability::open(&td.0).unwrap();
        drop(dur1);
        let (rg2, _dur2, _) = Durability::open(&td.0).unwrap();
        assert_eq!(shape(&rg1), shape(&rg2));
        assert_eq!(shape(&rg1), shape(&g));
    }
}
