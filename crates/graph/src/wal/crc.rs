//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! Hand-rolled because the build environment is offline (no registry
//! crates beyond the vendored stand-ins). The reflected table-driven
//! form is the textbook one; the golden value for `"123456789"`
//! (`0xCBF43926`) pins compatibility with every standard CRC-32
//! implementation.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_ieee_standard() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"cba"));
    }
}
