//! Fuzzy, shard-incremental checkpoints of the published snapshot.
//!
//! A checkpoint serializes a [`ShardedSnapshot`] — the *published
//! immutable* view, never the live graph — so taking one cannot block
//! readers or the writer. Incrementality reuses the machinery that
//! already drives incremental publish: shard files are named by
//! `(graph_id, shard index, version stamp)`, so a shard whose stamp is
//! unchanged since the previous checkpoint is simply re-referenced by
//! the new manifest instead of rewritten. The **fuzzy-checkpoint
//! invariant**: a manifest with `last_lsn = L` plus replay of every
//! committed batch with commit LSN `> L` reconstructs exactly the graph
//! state the snapshot was published from, because the snapshot is
//! itself a consistent cut at a publish (= flush) boundary.
//!
//! On-disk layout (all files CRC-framed like WAL records —
//! `[u32 len][u32 crc][payload]`):
//!
//! * `ckpt-{seq:020}.mf` — the manifest: `{seq, graph name,
//!   unique_labels, graph_id, epoch, shard_count, last_lsn, per-shard
//!   version stamps}`. Written to a temp file, synced, then renamed —
//!   the rename is the checkpoint's commit point; a torn manifest is
//!   skipped at recovery, falling back to the previous one.
//! * `strings-{seq:020}.bin` — the snapshot interner (label table).
//! * `shard-{graph_id:016x}-{idx:05}-v{version:020}.bin` — one CSR
//!   shard: per-slot labels plus out-edge rows. In-edges are not
//!   stored; restore re-derives them (edge insertion maintains both
//!   directions).
//!
//! The two newest manifests are retained (so the newest can always be
//! abandoned for its predecessor); everything unreferenced is GC'd.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use super::record::{put_str, put_u32, put_u64, Reader};
use super::{crc32, Lsn, WalError, WalResult};
use crate::snapshot::{shard::owned_slots, ShardedSnapshot};
use crate::{LabelId, OntGraph};

const MAGIC_MANIFEST: u32 = 0x4F4E_4D46; // "ONMF"
const MAGIC_STRINGS: u32 = 0x4F4E_5354; // "ONST"
const MAGIC_SHARD: u32 = 0x4F4E_5348; // "ONSH"
const FORMAT_VERSION: u32 = 1;

/// Sentinel for a dead / never-used node slot in a shard file.
const DEAD_SLOT: u32 = u32::MAX;

/// A durably committed checkpoint description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone checkpoint sequence number.
    pub seq: u64,
    /// Graph name.
    pub name: String,
    /// Consistent-ontology mode flag (must be true for durable graphs).
    pub unique_labels: bool,
    /// Identity of the graph the shard stamps belong to. Process-local:
    /// a recovered graph gets a fresh id, so the first checkpoint after
    /// recovery is a full one by construction.
    pub graph_id: u64,
    /// Snapshot epoch the checkpoint serialized (informational).
    pub epoch: u64,
    /// Shard count of the serialized snapshot.
    pub shard_count: usize,
    /// Replay resumes after this committed LSN.
    pub last_lsn: Lsn,
    /// Per-shard version stamps — the incremental-reuse key.
    pub shard_versions: Vec<u64>,
}

impl Manifest {
    pub(crate) fn manifest_file(seq: u64) -> String {
        format!("ckpt-{seq:020}.mf")
    }

    pub(crate) fn strings_file(&self) -> String {
        format!("strings-{:020}.bin", self.seq)
    }

    pub(crate) fn shard_file(&self, s: usize) -> String {
        format!("shard-{:016x}-{:05}-v{:020}.bin", self.graph_id, s, self.shard_versions[s])
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        put_u32(&mut p, MAGIC_MANIFEST);
        put_u32(&mut p, FORMAT_VERSION);
        put_u64(&mut p, self.seq);
        put_str(&mut p, &self.name);
        p.push(self.unique_labels as u8);
        put_u64(&mut p, self.graph_id);
        put_u64(&mut p, self.epoch);
        put_u32(&mut p, self.shard_count as u32);
        put_u64(&mut p, self.last_lsn.0);
        put_u32(&mut p, self.shard_versions.len() as u32);
        for &v in &self.shard_versions {
            put_u64(&mut p, v);
        }
        p
    }

    fn decode(payload: &[u8], what: &str) -> WalResult<Manifest> {
        let mut r = Reader::new(payload, what);
        let corrupt =
            |detail: &str| WalError::Corrupt { file: what.to_string(), detail: detail.to_string() };
        if r.u32()? != MAGIC_MANIFEST {
            return Err(corrupt("bad manifest magic"));
        }
        if r.u32()? != FORMAT_VERSION {
            return Err(corrupt("unknown manifest format version"));
        }
        let seq = r.u64()?;
        let name = r.str()?;
        let unique_labels = r.u8()? != 0;
        let graph_id = r.u64()?;
        let epoch = r.u64()?;
        let shard_count = r.u32()? as usize;
        let last_lsn = Lsn(r.u64()?);
        let n = r.count(8)?;
        if n != shard_count {
            return Err(corrupt("shard version count != shard count"));
        }
        let mut shard_versions = Vec::with_capacity(n);
        for _ in 0..n {
            shard_versions.push(r.u64()?);
        }
        r.expect_end()?;
        Ok(Manifest {
            seq,
            name,
            unique_labels,
            graph_id,
            epoch,
            shard_count,
            last_lsn,
            shard_versions,
        })
    }
}

/// What one checkpoint did — the exact-accounting surface the
/// incremental invariant is asserted against (mirroring B11's
/// `PublishStats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Manifest sequence number written.
    pub seq: u64,
    /// Shards serialized to disk this checkpoint.
    pub shards_written: usize,
    /// Shards re-referenced from the previous checkpoint.
    pub shards_reused: usize,
    /// Payload bytes written (shards + strings + manifest).
    pub bytes_written: u64,
    /// Committed LSN the checkpoint covers.
    pub last_lsn: Lsn,
    /// WAL segments deleted after the checkpoint committed (filled in
    /// by [`super::Durability`]; 0 from the raw writer).
    pub wal_segments_retired: usize,
}

// ---------------------------------------------------------------------
// framed file io
// ---------------------------------------------------------------------

fn write_framed(path: &Path, payload: &[u8]) -> WalResult<u64> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    let mut f = File::create(path)?;
    f.write_all(&out)?;
    f.sync_all()?;
    Ok(out.len() as u64)
}

fn read_framed(path: &Path) -> WalResult<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let what = path.display().to_string();
    let corrupt = |detail: String| WalError::Corrupt { file: what.clone(), detail };
    if bytes.len() < 8 {
        return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if bytes.len() != 8 + len {
        return Err(corrupt(format!("frame length {len} != file length {}", bytes.len() - 8)));
    }
    let payload = bytes.split_off(8);
    if crc32(&payload) != crc {
        return Err(corrupt("crc mismatch".into()));
    }
    Ok(payload)
}

/// Fsyncs the directory so renames/creates within it are durable.
fn sync_dir(dir: &Path) -> WalResult<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

// ---------------------------------------------------------------------
// shard / strings serialization
// ---------------------------------------------------------------------

fn encode_strings(snap: &ShardedSnapshot) -> Vec<u8> {
    let interner = snap.interner();
    let mut p = Vec::new();
    put_u32(&mut p, MAGIC_STRINGS);
    put_u32(&mut p, interner.len() as u32);
    for i in 0..interner.len() {
        put_str(&mut p, interner.resolve(LabelId(i as u32)));
    }
    p
}

fn decode_strings(payload: &[u8], what: &str) -> WalResult<Vec<String>> {
    let mut r = Reader::new(payload, what);
    if r.u32()? != MAGIC_STRINGS {
        return Err(WalError::Corrupt { file: what.into(), detail: "bad strings magic".into() });
    }
    let n = r.count(4)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.str()?);
    }
    r.expect_end()?;
    Ok(v)
}

fn encode_shard(snap: &ShardedSnapshot, s: usize) -> Vec<u8> {
    let shard = snap.shard(s);
    let slots = owned_slots(snap.node_capacity(), s, snap.shard_count());
    let mut p = Vec::new();
    put_u32(&mut p, MAGIC_SHARD);
    put_u32(&mut p, s as u32);
    put_u32(&mut p, snap.shard_count() as u32);
    put_u64(&mut p, shard.version());
    put_u32(&mut p, slots as u32);
    for local in 0..slots {
        match shard.label_local(local) {
            Some(lid) => put_u32(&mut p, lid.index() as u32),
            None => put_u32(&mut p, DEAD_SLOT),
        }
    }
    for local in 0..slots {
        let row = shard.entries_local(local, true);
        put_u32(&mut p, row.len() as u32);
        for &(lid, dst) in row {
            put_u32(&mut p, lid.index() as u32);
            put_u32(&mut p, dst.index() as u32);
        }
    }
    p
}

/// A decoded shard file: per-slot labels and out-edge rows, all as raw
/// u32 indexes into the checkpoint's strings table / global slot space.
struct ShardDump {
    labels: Vec<u32>,
    rows: Vec<Vec<(u32, u32)>>,
}

fn decode_shard(
    payload: &[u8],
    what: &str,
    idx: usize,
    count: usize,
    version: u64,
) -> WalResult<ShardDump> {
    let mut r = Reader::new(payload, what);
    let corrupt = |detail: String| WalError::Corrupt { file: what.to_string(), detail };
    if r.u32()? != MAGIC_SHARD {
        return Err(corrupt("bad shard magic".into()));
    }
    if (r.u32()? as usize, r.u32()? as usize, r.u64()?) != (idx, count, version) {
        return Err(corrupt("shard header disagrees with manifest".into()));
    }
    let slots = r.count(4)?;
    let mut labels = Vec::with_capacity(slots);
    for _ in 0..slots {
        labels.push(r.u32()?);
    }
    let mut rows = Vec::with_capacity(slots);
    for _ in 0..slots {
        let n = r.count(8)?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push((r.u32()?, r.u32()?));
        }
        rows.push(row);
    }
    r.expect_end()?;
    Ok(ShardDump { labels, rows })
}

// ---------------------------------------------------------------------
// checkpoint write / load / restore / gc
// ---------------------------------------------------------------------

/// Writes a checkpoint of `snap` into `dir`, reusing every shard file
/// whose version stamp is unchanged since `prev`. The rename of the
/// manifest is the commit point.
pub(crate) fn write_checkpoint(
    dir: &Path,
    snap: &ShardedSnapshot,
    unique_labels: bool,
    last_lsn: Lsn,
    prev: Option<&Manifest>,
) -> WalResult<(Manifest, CheckpointStats)> {
    let seq = prev.map(|m| m.seq + 1).unwrap_or(1);
    let manifest = Manifest {
        seq,
        name: snap.name().to_string(),
        unique_labels,
        graph_id: snap.graph_id(),
        epoch: snap.epoch(),
        shard_count: snap.shard_count(),
        last_lsn,
        shard_versions: (0..snap.shard_count()).map(|s| snap.shard(s).version()).collect(),
    };
    // A shard is reusable only when the previous *committed* manifest
    // references the same (graph_id, version) — trusting arbitrary
    // same-named files on disk would resurrect torn writes from a
    // crashed checkpoint.
    let comparable =
        prev.filter(|p| p.graph_id == manifest.graph_id && p.shard_count == manifest.shard_count);
    let mut written = 0usize;
    let mut reused = 0usize;
    let mut bytes = 0u64;
    for s in 0..manifest.shard_count {
        let reusable = comparable
            .map(|p| {
                p.shard_versions[s] == manifest.shard_versions[s]
                    && dir.join(p.shard_file(s)).exists()
            })
            .unwrap_or(false);
        if reusable {
            reused += 1;
        } else {
            bytes += write_framed(&dir.join(manifest.shard_file(s)), &encode_shard(snap, s))?;
            written += 1;
        }
    }
    bytes += write_framed(&dir.join(manifest.strings_file()), &encode_strings(snap))?;
    // Commit point: temp + sync + rename + dir sync.
    let commit_start = onion_obs::enabled().then(std::time::Instant::now);
    let final_path = dir.join(Manifest::manifest_file(seq));
    let tmp_path = dir.join(format!("ckpt-{seq:020}.tmp"));
    bytes += write_framed(&tmp_path, &manifest.encode())?;
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    if let Some(t) = commit_start {
        onion_obs::observe_us!("onion_checkpoint_manifest_commit_us", t.elapsed().as_micros());
    }
    onion_obs::count!("onion_checkpoint_total");
    onion_obs::count!("onion_checkpoint_shards_written_total", written);
    onion_obs::count!("onion_checkpoint_shards_reused_total", reused);
    let stats = CheckpointStats {
        seq,
        shards_written: written,
        shards_reused: reused,
        bytes_written: bytes,
        last_lsn,
        wal_segments_retired: 0,
    };
    Ok((manifest, stats))
}

/// Loads every manifest under `dir` that parses and CRC-validates,
/// newest first. Torn or corrupt manifests are skipped — that is the
/// fallback path, not an error.
pub(crate) fn load_manifests(dir: &Path) -> WalResult<Vec<Manifest>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(digits) = name.strip_prefix("ckpt-").and_then(|n| n.strip_suffix(".mf")) {
            if let Ok(seq) = digits.parse::<u64>() {
                found.push((seq, entry.path()));
            }
        }
    }
    found.sort_by(|a, b| b.0.cmp(&a.0));
    let mut manifests = Vec::new();
    for (seq, path) in found {
        let what = path.display().to_string();
        match read_framed(&path).and_then(|p| Manifest::decode(&p, &what)) {
            Ok(m) if m.seq == seq => manifests.push(m),
            _ => continue,
        }
    }
    Ok(manifests)
}

/// Rebuilds the live graph a manifest describes. Fails with
/// [`WalError::Corrupt`] if any referenced file is missing or invalid —
/// the caller then falls back to an older manifest.
pub(crate) fn restore_graph(dir: &Path, m: &Manifest) -> WalResult<OntGraph> {
    if !m.unique_labels {
        return Err(WalError::Unsupported(
            "durable graphs require consistent (unique-label) mode".into(),
        ));
    }
    let strings_path = dir.join(m.strings_file());
    let strings =
        decode_strings(&read_framed(&strings_path)?, &strings_path.display().to_string())?;
    let mut shards = Vec::with_capacity(m.shard_count);
    for s in 0..m.shard_count {
        let path = dir.join(m.shard_file(s));
        let dump = decode_shard(
            &read_framed(&path)?,
            &path.display().to_string(),
            s,
            m.shard_count,
            m.shard_versions[s],
        )?;
        shards.push(dump);
    }
    let resolve = |lid: u32, what: &str| -> WalResult<&str> {
        strings.get(lid as usize).map(|s| s.as_str()).ok_or_else(|| WalError::Corrupt {
            file: what.to_string(),
            detail: format!("label id {lid} out of range"),
        })
    };
    let mut g = OntGraph::new(m.name.clone());
    // Nodes in ascending *global slot* order — global slot id is the
    // original arena index, so restored NodeIds are the original ids
    // compacted over tombstones (exactly what `compact()` would give).
    let count = m.shard_count.max(1);
    let max_slots = shards.iter().map(|d| d.labels.len()).max().unwrap_or(0);
    for local in 0..max_slots {
        for dump in &shards {
            if let Some(&lid) = dump.labels.get(local) {
                if lid != DEAD_SLOT {
                    g.add_node(resolve(lid, "shard labels")?)?;
                }
            }
        }
    }
    // Out-edge rows; per-node row order preserves the original
    // adjacency order, so traversal visit order survives recovery.
    for (s, dump) in shards.iter().enumerate() {
        for (local, row) in dump.rows.iter().enumerate() {
            if row.is_empty() {
                continue;
            }
            let src_lid = dump.labels[local];
            if src_lid == DEAD_SLOT {
                return Err(WalError::Corrupt {
                    file: format!("shard {s}"),
                    detail: format!("dead slot {local} has {} out edges", row.len()),
                });
            }
            let src = resolve(src_lid, "shard labels")?.to_string();
            for &(elid, dst_global) in row {
                let dst_shard = dst_global as usize % count;
                let dst_local = dst_global as usize / count;
                let dst_lid = shards
                    .get(dst_shard)
                    .and_then(|d| d.labels.get(dst_local))
                    .copied()
                    .filter(|&l| l != DEAD_SLOT)
                    .ok_or_else(|| WalError::Corrupt {
                        file: format!("shard {s}"),
                        detail: format!("edge target slot {dst_global} is dead or out of range"),
                    })?;
                let label = resolve(elid, "edge labels")?.to_string();
                let dst = resolve(dst_lid, "shard labels")?.to_string();
                g.ensure_edge_by_labels(&src, &label, &dst)?;
            }
        }
    }
    g.set_shard_count(m.shard_count);
    Ok(g)
}

/// Deletes every checkpoint artifact not referenced by `keep`.
pub(crate) fn gc(dir: &Path, keep: &[Manifest]) -> WalResult<usize> {
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for m in keep {
        referenced.insert(Manifest::manifest_file(m.seq));
        referenced.insert(m.strings_file());
        for s in 0..m.shard_count {
            referenced.insert(m.shard_file(s));
        }
    }
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_ckpt_artifact =
            name.starts_with("ckpt-") || name.starts_with("strings-") || name.starts_with("shard-");
        if is_ckpt_artifact && !referenced.contains(name) {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::super::testdir::TestDir;
    use super::*;
    use crate::snapshot::SnapshotStore;

    fn sample_graph() -> OntGraph {
        let mut g = OntGraph::new("ckpt");
        g.ensure_edge_by_labels("Car", "SubclassOf", "Vehicle").unwrap();
        g.ensure_edge_by_labels("Truck", "SubclassOf", "Vehicle").unwrap();
        g.ensure_edge_by_labels("Price", "AttributeOf", "Car").unwrap();
        g.ensure_edge_by_labels("Car", "Uses", "Fuel").unwrap();
        g.delete_node_by_label("Truck").unwrap();
        g.set_shard_count(4);
        g
    }

    /// Label-level fingerprint: sorted node labels + sorted edge triples.
    fn shape(g: &OntGraph) -> (Vec<String>, Vec<(String, String, String)>) {
        let mut nodes: Vec<String> =
            g.node_ids().map(|n| g.node_label(n).unwrap().to_string()).collect();
        nodes.sort();
        let mut edges: Vec<(String, String, String)> = g
            .edges()
            .map(|e| {
                (
                    g.node_label(e.src).unwrap().to_string(),
                    e.label.to_string(),
                    g.node_label(e.dst).unwrap().to_string(),
                )
            })
            .collect();
        edges.sort();
        (nodes, edges)
    }

    #[test]
    fn checkpoint_then_restore_reproduces_graph() {
        let td = TestDir::new("ckpt-roundtrip");
        let g = sample_graph();
        let snap = crate::ShardedSnapshot::of(&g);
        let (m, stats) = write_checkpoint(&td.0, &snap, true, Lsn(9), None).unwrap();
        assert_eq!(stats.shards_written, 4, "first checkpoint is full");
        assert_eq!(m.last_lsn, Lsn(9));
        let restored = restore_graph(&td.0, &m).unwrap();
        assert_eq!(shape(&restored), shape(&g));
        assert_eq!(restored.shard_count(), g.shard_count());
        assert_eq!(restored.name(), g.name());
    }

    #[test]
    fn second_checkpoint_rewrites_only_dirty_shards() {
        let td = TestDir::new("ckpt-incremental");
        let mut g = sample_graph();
        let store = SnapshotStore::new(&g);
        let snap = store.load();
        let (m1, s1) = write_checkpoint(&td.0, &snap, true, Lsn(4), None).unwrap();
        assert_eq!((s1.shards_written, s1.shards_reused), (4, 0));

        // One edit dirties at most two shards (src + dst).
        let car = g.node_by_label("Car").unwrap();
        let e = g.add_edge(car, "dirty", car).unwrap();
        g.delete_edge(e).unwrap();
        let snap2 = store.publish(&g);
        let (m2, s2) = write_checkpoint(&td.0, &snap2, true, Lsn(6), Some(&m1)).unwrap();
        assert_eq!(s2.shards_written, 1, "single same-shard edit rewrites exactly one shard");
        assert_eq!(s2.shards_reused, 3);
        let restored = restore_graph(&td.0, &m2).unwrap();
        assert_eq!(shape(&restored), shape(&g));
        // The reused shard files still back the older manifest too.
        let restored1 = restore_graph(&td.0, &m1).unwrap();
        assert_eq!(shape(&restored1), shape(&sample_graph()));
    }

    #[test]
    fn torn_manifest_is_skipped_and_gc_keeps_referenced_files() {
        let td = TestDir::new("ckpt-torn");
        let g = sample_graph();
        let store = SnapshotStore::new(&g);
        let (m1, _) = write_checkpoint(&td.0, &store.load(), true, Lsn(4), None).unwrap();
        let (m2, _) = write_checkpoint(&td.0, &store.load(), true, Lsn(8), Some(&m1)).unwrap();
        // Tear the newest manifest mid-file.
        let p2 = td.0.join(Manifest::manifest_file(m2.seq));
        let len = std::fs::metadata(&p2).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&p2).unwrap();
        f.set_len(len / 2).unwrap();
        drop(f);
        let loaded = load_manifests(&td.0).unwrap();
        assert_eq!(loaded.len(), 1, "torn manifest skipped");
        assert_eq!(loaded[0].seq, m1.seq);
        let restored = restore_graph(&td.0, &loaded[0]).unwrap();
        assert_eq!(shape(&restored), shape(&g));

        // GC with only m1 kept removes the torn manifest but keeps
        // every file m1 references.
        gc(&td.0, &[m1.clone()]).unwrap();
        assert!(!p2.exists());
        assert!(restore_graph(&td.0, &m1).is_ok());
    }
}
