//! Append-only segmented log of framed WAL records.
//!
//! Segments are named `wal-{first_lsn:020}.seg` so lexicographic order
//! is LSN order. Appends buffer in memory; [`LogManager::flush`] writes
//! the buffered frames with one `write` + `fdatasync` (group flush) and
//! rotates to a new segment first when the current one is over the size
//! threshold — so a flushed batch never straddles a segment boundary.
//!
//! On [`LogManager::open`] every segment is scanned front to back. A
//! torn frame in the **newest** segment is the expected crash signature
//! and is truncated away (`set_len`); a torn frame in an older segment
//! means bytes vanished after later segments were created, which is
//! reported as corruption rather than silently dropped.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use super::record::{decode_record, encode_record};
use super::{Lsn, WalError, WalRecord, WalResult};
use crate::GraphOp;

/// Default segment rotation threshold (bytes).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// One batch of ops closed by a `Commit` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedBatch {
    /// LSN of the `Commit` record that sealed the batch.
    pub commit_lsn: Lsn,
    /// The ops, in append order.
    pub ops: Vec<GraphOp>,
}

/// A segment file on disk, for introspection and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Full path of the segment file.
    pub path: PathBuf,
    /// First LSN stored in (or destined for) the segment.
    pub first_lsn: Lsn,
    /// File size in bytes.
    pub bytes: u64,
}

fn segment_name(first_lsn: Lsn) -> String {
    format!("wal-{:020}.seg", first_lsn.0)
}

fn parse_segment_name(name: &str) -> Option<Lsn> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    digits.parse::<u64>().ok().map(Lsn)
}

/// Lists the segments under `dir`, ascending by first LSN.
pub(crate) fn list_segments(dir: &Path) -> WalResult<Vec<SegmentInfo>> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(first_lsn) = parse_segment_name(name) {
            segs.push(SegmentInfo {
                path: entry.path(),
                first_lsn,
                bytes: entry.metadata()?.len(),
            });
        }
    }
    segs.sort_by_key(|s| s.first_lsn);
    Ok(segs)
}

/// The append side of the WAL.
pub struct LogManager {
    dir: PathBuf,
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Encoded frames not yet written to disk (the group-flush buffer).
    buf: Vec<u8>,
    /// LSN of the first buffered record, if any.
    buf_first_lsn: Option<Lsn>,
    /// Open handle on the newest segment.
    file: File,
    /// Info of the newest segment (bytes = durable size).
    seg: SegmentInfo,
    /// Rotation threshold.
    segment_bytes: u64,
}

impl LogManager {
    /// Opens (or initialises) the log in `dir`, truncating a torn tail
    /// frame left by a crash. `dir` must exist.
    pub fn open(dir: impl AsRef<Path>) -> WalResult<Self> {
        Self::open_with(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`LogManager::open`] with an explicit rotation threshold (tests
    /// use tiny thresholds to force rotation).
    pub fn open_with(dir: impl AsRef<Path>, segment_bytes: u64) -> WalResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        let mut segs = list_segments(&dir)?;
        if segs.is_empty() {
            let first = Lsn(1);
            let path = dir.join(segment_name(first));
            let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
            file.sync_all()?;
            return Ok(LogManager {
                dir,
                next_lsn: first,
                buf: Vec::new(),
                buf_first_lsn: None,
                file,
                seg: SegmentInfo { path, first_lsn: first, bytes: 0 },
                segment_bytes,
            });
        }
        // Scan: older segments must be fully valid; the newest may have
        // a torn tail, which we truncate.
        let last = segs.len() - 1;
        let mut max_lsn = Lsn::ZERO;
        for (i, seg) in segs.iter_mut().enumerate() {
            let (records, valid) = scan_segment(&seg.path)?;
            if valid < seg.bytes {
                if i != last {
                    return Err(WalError::Corrupt {
                        file: seg.path.display().to_string(),
                        detail: format!("invalid frame at offset {valid} in a non-final segment"),
                    });
                }
                let f = OpenOptions::new().write(true).open(&seg.path)?;
                f.set_len(valid)?;
                f.sync_all()?;
                onion_obs::count!("onion_wal_torn_tail_truncations_total");
                onion_obs::count!("onion_wal_torn_tail_bytes_total", seg.bytes - valid);
                seg.bytes = valid;
            }
            if let Some(&(lsn, _)) = records.last() {
                max_lsn = max_lsn.max(lsn);
            }
        }
        let seg = segs.pop().expect("non-empty");
        let file = OpenOptions::new().append(true).open(&seg.path)?;
        let next_lsn = if max_lsn == Lsn::ZERO { seg.first_lsn } else { Lsn(max_lsn.0 + 1) };
        Ok(LogManager {
            dir,
            next_lsn,
            buf: Vec::new(),
            buf_first_lsn: None,
            file,
            seg,
            segment_bytes,
        })
    }

    /// Stamps `rec` with the next LSN and buffers its frame. Nothing is
    /// durable until [`LogManager::flush`].
    pub fn append(&mut self, rec: &WalRecord) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn = Lsn(lsn.0 + 1);
        if self.buf_first_lsn.is_none() {
            self.buf_first_lsn = Some(lsn);
        }
        let before = self.buf.len();
        encode_record(lsn, rec, &mut self.buf);
        onion_obs::count!("onion_wal_append_bytes_total", self.buf.len() - before);
        lsn
    }

    /// Group flush: writes all buffered frames with one write + sync,
    /// rotating to a new segment first if the current one is full.
    /// Returns the last durable LSN.
    pub fn flush(&mut self) -> WalResult<Lsn> {
        if self.buf.is_empty() {
            return Ok(self.last_lsn());
        }
        if self.seg.bytes > 0 && self.seg.bytes + self.buf.len() as u64 > self.segment_bytes {
            let first = self.buf_first_lsn.expect("buffered records have a first lsn");
            let path = self.dir.join(segment_name(first));
            let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
            self.file.sync_all()?;
            self.file = file;
            self.seg = SegmentInfo { path, first_lsn: first, bytes: 0 };
            onion_obs::count!("onion_wal_segment_rotations_total");
        }
        let _span = onion_obs::span!("wal_flush");
        onion_obs::count!("onion_wal_flush_total");
        self.file.write_all(&self.buf)?;
        self.file.sync_data()?;
        self.seg.bytes += self.buf.len() as u64;
        self.buf.clear();
        self.buf_first_lsn = None;
        Ok(self.last_lsn())
    }

    /// The last LSN handed out (durable or not); [`Lsn::ZERO`] if none.
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.next_lsn.0 - 1)
    }

    /// Bytes buffered but not yet flushed.
    pub fn unflushed_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current segments, ascending (flushed state only).
    pub fn segments(&self) -> WalResult<Vec<SegmentInfo>> {
        list_segments(&self.dir)
    }

    /// Deletes every segment whose records all have `lsn <= upto` —
    /// i.e. segments wholly covered by a checkpoint. The newest segment
    /// is never deleted (it is the append target).
    pub fn retire(&mut self, upto: Lsn) -> WalResult<usize> {
        let segs = list_segments(&self.dir)?;
        let mut removed = 0;
        for pair in segs.windows(2) {
            // pair[0]'s records all precede pair[1].first_lsn.
            if pair[1].first_lsn.0 <= upto.0 + 1 {
                std::fs::remove_file(&pair[0].path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Replays the durable log, returning every batch whose `Commit`
    /// LSN is **strictly greater** than `from` (checkpoints record the
    /// commit LSN they cover, so replay resumes exactly after it).
    /// Ops in unclosed batches — a crash between `Begin` and `Commit` —
    /// are discarded.
    pub fn replay(dir: impl AsRef<Path>, from: Lsn) -> WalResult<Vec<CommittedBatch>> {
        let mut batches = Vec::new();
        let mut pending: Vec<GraphOp> = Vec::new();
        for seg in list_segments(dir.as_ref())? {
            let (records, _) = scan_segment(&seg.path)?;
            for (lsn, rec) in records {
                match rec {
                    WalRecord::Begin => pending.clear(),
                    WalRecord::Op(op) => pending.push(op),
                    WalRecord::Commit => {
                        let ops = std::mem::take(&mut pending);
                        if lsn > from {
                            batches.push(CommittedBatch { commit_lsn: lsn, ops });
                        }
                    }
                    WalRecord::Checkpoint { .. } => {}
                }
            }
        }
        Ok(batches)
    }
}

/// Scans one segment, returning its valid records and the byte length
/// of the valid prefix.
fn scan_segment(path: &Path) -> WalResult<(Vec<(Lsn, WalRecord)>, u64)> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let what = path.display().to_string();
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some((lsn, rec, n)) = decode_record(&bytes[at..], &what)? {
        records.push((lsn, rec));
        at += n;
    }
    Ok((records, at as u64))
}

#[cfg(test)]
mod tests {
    use super::super::testdir::TestDir;
    use super::*;

    fn batch(log: &mut LogManager, ops: &[GraphOp]) -> Lsn {
        log.append(&WalRecord::Begin);
        for op in ops {
            log.append(&WalRecord::Op(op.clone()));
        }
        let lsn = log.append(&WalRecord::Commit);
        log.flush().unwrap();
        lsn
    }

    #[test]
    fn append_flush_replay_roundtrip() {
        let td = TestDir::new("log-roundtrip");
        let mut log = LogManager::open(&td.0).unwrap();
        let ops1 = vec![GraphOp::node_add("A"), GraphOp::edge_add("A", "s", "B")];
        let ops2 = vec![GraphOp::node_delete("B")];
        let c1 = batch(&mut log, &ops1);
        let c2 = batch(&mut log, &ops2);
        let got = LogManager::replay(&td.0, Lsn::ZERO).unwrap();
        assert_eq!(
            got,
            vec![
                CommittedBatch { commit_lsn: c1, ops: ops1 },
                CommittedBatch { commit_lsn: c2, ops: ops2.clone() }
            ]
        );
        // Replay from the first commit returns only the second batch.
        let got = LogManager::replay(&td.0, c1).unwrap();
        assert_eq!(got, vec![CommittedBatch { commit_lsn: c2, ops: ops2 }]);
    }

    #[test]
    fn reopen_continues_lsns() {
        let td = TestDir::new("log-reopen");
        let mut log = LogManager::open(&td.0).unwrap();
        let c1 = batch(&mut log, &[GraphOp::node_add("A")]);
        drop(log);
        let mut log = LogManager::open(&td.0).unwrap();
        assert_eq!(log.last_lsn(), c1);
        let c2 = batch(&mut log, &[GraphOp::node_add("B")]);
        assert!(c2 > c1);
        assert_eq!(LogManager::replay(&td.0, Lsn::ZERO).unwrap().len(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_and_uncommitted_batch_dropped() {
        let td = TestDir::new("log-torn");
        let mut log = LogManager::open(&td.0).unwrap();
        batch(&mut log, &[GraphOp::node_add("A")]);
        // A flushed but uncommitted batch...
        log.append(&WalRecord::Begin);
        log.append(&WalRecord::Op(GraphOp::node_add("B")));
        log.flush().unwrap();
        drop(log);
        // ...plus a torn byte of a next record.
        let seg = list_segments(&td.0).unwrap().pop().unwrap();
        let mut f = OpenOptions::new().append(true).open(&seg.path).unwrap();
        f.write_all(&[0x17, 0x00]).unwrap();
        drop(f);

        let log = LogManager::open(&td.0).unwrap();
        let seg_after = list_segments(&td.0).unwrap().pop().unwrap();
        assert_eq!(seg_after.bytes, seg.bytes, "garbage tail truncated");
        let batches = LogManager::replay(&td.0, Lsn::ZERO).unwrap();
        assert_eq!(batches.len(), 1, "uncommitted batch must not replay");
        drop(log);
    }

    #[test]
    fn rotation_and_retirement() {
        let td = TestDir::new("log-rotate");
        // Tiny threshold: every batch rotates into its own segment.
        let mut log = LogManager::open_with(&td.0, 32).unwrap();
        let mut commits = Vec::new();
        for i in 0..4 {
            commits.push(batch(&mut log, &[GraphOp::node_add(format!("N{i}"))]));
        }
        assert!(log.segments().unwrap().len() >= 3, "tiny threshold forces rotation");
        // Retiring up to the 3rd commit keeps batch 4 replayable.
        log.retire(commits[2]).unwrap();
        let got = LogManager::replay(&td.0, commits[2]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].commit_lsn, commits[3]);
    }
}
