//! A fast, non-cryptographic hasher for the graph's internal indexes.
//!
//! The standard library's SipHash is DoS-resistant but costs tens of
//! nanoseconds per probe — measurable on the edge index and label maps,
//! which the traversal layer probes millions of times per closure run.
//! Keys here are small fixed-width ids (`NodeId`, `LabelId`) or interned
//! label strings, none attacker-controlled at a trust boundary, so the
//! FxHash construction (the rustc hasher: rotate, xor, multiply) is the
//! right trade. Vendored because the workspace builds offline.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-xor hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_buckets() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(41, 287)), Some(&41));
    }

    #[test]
    fn string_keys_roundtrip() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("SubclassOf".into(), 1);
        m.insert("AttributeOf".into(), 2);
        assert_eq!(m["SubclassOf"], 1);
        assert_eq!(m["AttributeOf"], 2);
    }

    #[test]
    fn hasher_is_deterministic() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash("Vehicle"), hash("Vehicle"));
        assert_ne!(hash("Vehicle"), hash("Vehicles"));
    }
}
