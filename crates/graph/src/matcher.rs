//! Backtracking subgraph pattern matcher (§3 of the paper).
//!
//! A pattern matches into a graph via a total mapping `f` from pattern
//! nodes to graph nodes such that (1) corresponding node labels agree and
//! (2) every pattern edge `(n1, α, n2)` maps to a graph edge
//! `(f(n1), α, f(n2))`. The paper additionally allows the domain expert to
//! *relax* matching: node labels may match through a synonym set, and
//! edge-label equality may be dropped. Both relaxations are expressed here
//! through the [`LabelEquiv`] trait, which `onion-lexicon` implements for
//! its WordNet-style lexicon.
//!
//! The matcher performs candidate-ordered backtracking: pattern nodes are
//! visited most-constrained-first along pattern connectivity, candidates
//! for connected nodes are generated from already-matched neighbours, and
//! all edges into the matched prefix are verified on assignment.

use std::cell::OnceCell;
use std::collections::HashMap;

use crate::graph::{NodeId, OntGraph};
use crate::hash::FxHashMap;
use crate::label::LabelId;
use crate::pattern::{EdgeConstraint, NodeConstraint, Pattern};
use crate::Result;

/// Pluggable label-equivalence used for fuzzy matching.
///
/// `ExactEquiv` gives the paper's strict match. A lexicon-backed
/// implementation can relax node labels to synonyms (§3: "enable nodes to
/// match not only if they have the exact same label but also if they are
/// synonyms as defined by the expert").
pub trait LabelEquiv {
    /// Are a pattern node label and a graph node label equivalent?
    fn node_equiv(&self, pattern_label: &str, graph_label: &str) -> bool;

    /// Are a pattern edge label and a graph edge label equivalent?
    /// Defaults to strict equality.
    fn edge_equiv(&self, pattern_label: &str, graph_label: &str) -> bool {
        pattern_label == graph_label
    }

    /// True iff both equivalences are plain string equality. Identity
    /// equivalences let the matcher run on the graph's label-indexed
    /// adjacency (single-probe edge checks, per-label candidate
    /// generation) with zero per-edge string comparisons. Implementations
    /// that relax matching in any way must leave this `false`.
    fn is_identity(&self) -> bool {
        false
    }

    /// The normalisation key of a *graph* label for index-accelerated
    /// seeding, or `None` when this equivalence cannot be keyed.
    ///
    /// Contract (with [`LabelEquiv::seed_keys`]): for every pattern
    /// label `p` and graph label `g` with `node_equiv(p, g)`,
    /// `seed_key(g)` must be a member of `seed_keys(p)`. The matcher
    /// then seeds a labeled pattern node from the buckets of an index
    /// keyed by `seed_key` instead of scanning every node; candidates
    /// are still verified with `node_equiv`, so an over-approximate key
    /// set costs time but never correctness — an under-approximate one
    /// silently drops matches. Implementations must return `Some` from
    /// both methods or `None` from both.
    fn seed_key(&self, graph_label: &str) -> Option<String> {
        let _ = graph_label;
        None
    }

    /// Every seed key under which a graph label equivalent to
    /// `pattern_label` may be indexed (see [`LabelEquiv::seed_key`]).
    /// The default derives the singleton set from `seed_key`;
    /// equivalences with enumerable non-trivial classes (synonym sets)
    /// override this to add the classmates' keys.
    fn seed_keys(&self, pattern_label: &str) -> Option<Vec<String>> {
        self.seed_key(pattern_label).map(|k| vec![k])
    }
}

/// Strict equality on both node and edge labels (the paper's default).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactEquiv;

impl LabelEquiv for ExactEquiv {
    fn node_equiv(&self, p: &str, g: &str) -> bool {
        p == g
    }

    fn is_identity(&self) -> bool {
        true
    }
}

/// ASCII-case-insensitive label equivalence; a cheap fuzzy mode used by
/// the SKAT matcher pipeline before consulting the lexicon.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseInsensitiveEquiv;

impl LabelEquiv for CaseInsensitiveEquiv {
    fn node_equiv(&self, p: &str, g: &str) -> bool {
        p.eq_ignore_ascii_case(g)
    }

    fn edge_equiv(&self, p: &str, g: &str) -> bool {
        p.eq_ignore_ascii_case(g)
    }

    fn seed_key(&self, graph_label: &str) -> Option<String> {
        Some(graph_label.to_ascii_lowercase())
    }
}

/// Matcher configuration. The default is the paper's strict semantics:
/// unlimited matches, non-injective mapping, exact edge labels.
#[derive(Debug, Clone, Default)]
pub struct MatchConfig {
    /// Stop after this many matches (0 = unlimited).
    pub max_matches: usize,
    /// Require the node mapping to be injective (distinct pattern nodes
    /// map to distinct graph nodes). The paper's `f` is a total mapping,
    /// not necessarily injective, so the default is `false`.
    pub injective: bool,
    /// Treat every pattern edge constraint as [`EdgeConstraint::Any`]
    /// (the paper's second relaxation: "the second condition that requires
    /// edges to have the same label may not be strictly enforced").
    pub relax_edge_labels: bool,
}

/// One match of a pattern into a graph: the mapping `f` plus variable
/// bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// `nodes[i]` is the graph node matched by pattern node `i`.
    pub nodes: Vec<NodeId>,
    /// Variable name → bound graph node.
    pub bindings: HashMap<String, NodeId>,
}

impl Match {
    /// The graph node bound to `var`, if the pattern binds it.
    pub fn get(&self, var: &str) -> Option<NodeId> {
        self.bindings.get(var).copied()
    }
}

/// A pattern matcher over one graph.
pub struct Matcher<'g, E: LabelEquiv = ExactEquiv> {
    graph: &'g OntGraph,
    equiv: E,
    config: MatchConfig,
    /// Lazily built normalised-label seed index (`seed_key(label)` →
    /// live nodes), shared across every seed of one matcher. `None`
    /// inside the cell means the equivalence is not keyable and seeding
    /// falls back to the full scan.
    seed_index: OnceCell<Option<FxHashMap<String, Vec<NodeId>>>>,
}

impl<'g> Matcher<'g, ExactEquiv> {
    /// Strict matcher with default config.
    pub fn new(graph: &'g OntGraph) -> Self {
        Matcher::with_equiv(graph, ExactEquiv)
    }
}

impl<'g, E: LabelEquiv> Matcher<'g, E> {
    /// Matcher with a custom equivalence (e.g. lexicon synonyms).
    pub fn with_equiv(graph: &'g OntGraph, equiv: E) -> Self {
        Matcher { graph, equiv, config: MatchConfig::default(), seed_index: OnceCell::new() }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: MatchConfig) -> Self {
        self.config = config;
        self
    }

    /// Finds all matches (subject to `max_matches`).
    pub fn find_all(&self, pattern: &Pattern) -> Result<Vec<Match>> {
        pattern.validate()?;
        let mut out = Vec::new();
        self.search(pattern, &mut out)?;
        Ok(out)
    }

    /// Finds the first match, if any.
    pub fn find_first(&self, pattern: &Pattern) -> Result<Option<Match>> {
        pattern.validate()?;
        let saved = self.config.max_matches;
        let mut cfg = self.config.clone();
        cfg.max_matches = 1;
        let m = Matcher {
            graph: self.graph,
            equiv: EquivRef(&self.equiv),
            config: cfg,
            seed_index: OnceCell::new(),
        }
        .find_all_inner(pattern)?;
        let _ = saved;
        Ok(m.into_iter().next())
    }

    /// True if the pattern matches anywhere in the graph.
    pub fn matches(&self, pattern: &Pattern) -> Result<bool> {
        Ok(self.find_first(pattern)?.is_some())
    }

    /// Number of matches (respecting `max_matches` if non-zero).
    pub fn count(&self, pattern: &Pattern) -> Result<usize> {
        Ok(self.find_all(pattern)?.len())
    }

    fn find_all_inner(&self, pattern: &Pattern) -> Result<Vec<Match>> {
        let mut out = Vec::new();
        self.search(pattern, &mut out)?;
        Ok(out)
    }

    fn node_ok(&self, pc: &NodeConstraint, g: NodeId) -> bool {
        match pc {
            NodeConstraint::Any => true,
            NodeConstraint::Label(l) => {
                let gl = self.graph.node_label(g).expect("candidate nodes are live");
                self.equiv.node_equiv(l, gl)
            }
        }
    }

    fn edge_label_ok(&self, pc: &EdgeConstraint, graph_label: &str) -> bool {
        if self.config.relax_edge_labels {
            return true;
        }
        match pc {
            EdgeConstraint::Any => true,
            EdgeConstraint::Label(l) => self.equiv.edge_equiv(l, graph_label),
        }
    }

    /// Does the graph contain an edge (src, ~label, dst) compatible with
    /// the constraint?
    fn has_compatible_edge(&self, src: NodeId, pc: &EdgeConstraint, dst: NodeId) -> bool {
        match pc {
            // a labeled constraint under the identity equivalence is a
            // single edge-index probe
            EdgeConstraint::Label(l)
                if !self.config.relax_edge_labels && self.equiv.is_identity() =>
            {
                self.graph
                    .label_id(l)
                    .is_some_and(|lid| self.graph.find_edge_by_ids(src, lid, dst).is_some())
            }
            // `Any` (or relaxed labels) admits every label: id scan, no
            // label resolution
            _ if self.config.relax_edge_labels => {
                self.graph.out_edge_entries(src).any(|(_, _, d)| d == dst)
            }
            EdgeConstraint::Any => self.graph.out_edge_entries(src).any(|(_, _, d)| d == dst),
            // fuzzy equivalence: fall back to per-edge string checks
            EdgeConstraint::Label(_) => {
                self.graph.out_edges(src).any(|e| e.dst == dst && self.edge_label_ok(pc, e.label))
            }
        }
    }

    fn search(&self, pattern: &Pattern, out: &mut Vec<Match>) -> Result<()> {
        let n = pattern.node_count();
        // Order: most-constrained-first seed, then breadth-first along
        // pattern connectivity so later nodes can be generated from
        // matched neighbours.
        let order = plan_order(pattern, self.graph);
        // adjacency: for pattern node i, edges (edge index, other, outgoing?)
        let mut adj: Vec<Vec<(usize, usize, bool)>> = vec![Vec::new(); n];
        for (ei, e) in pattern.edges.iter().enumerate() {
            adj[e.src].push((ei, e.dst, true));
            adj[e.dst].push((ei, e.src, false));
        }
        let mut assignment: Vec<Option<NodeId>> = vec![None; n];
        self.extend_match(pattern, &order, &adj, 0, &mut assignment, out);
        Ok(())
    }

    fn emit(&self, pattern: &Pattern, assignment: &[Option<NodeId>], out: &mut Vec<Match>) {
        let nodes: Vec<NodeId> = assignment.iter().map(|a| a.expect("complete")).collect();
        let mut bindings = HashMap::new();
        for (i, pn) in pattern.nodes.iter().enumerate() {
            if let Some(v) = &pn.var {
                bindings.insert(v.clone(), nodes[i]);
            }
        }
        out.push(Match { nodes, bindings });
    }

    #[allow(clippy::too_many_arguments)]
    fn extend_match(
        &self,
        pattern: &Pattern,
        order: &[usize],
        adj: &[Vec<(usize, usize, bool)>],
        depth: usize,
        assignment: &mut Vec<Option<NodeId>>,
        out: &mut Vec<Match>,
    ) -> bool {
        if self.config.max_matches != 0 && out.len() >= self.config.max_matches {
            return true; // signal: stop
        }
        if depth == order.len() {
            self.emit(pattern, assignment, out);
            return self.config.max_matches != 0 && out.len() >= self.config.max_matches;
        }
        let pi = order[depth];
        let candidates = self.candidates_for(pattern, adj, pi, assignment);
        for g in candidates {
            if self.config.injective && assignment.iter().flatten().any(|&a| a == g) {
                continue;
            }
            if !self.node_ok(&pattern.nodes[pi].constraint, g) {
                continue;
            }
            // verify all pattern edges between pi and assigned nodes
            let mut ok = true;
            for &(ei, other, outgoing) in &adj[pi] {
                if let Some(og) = assignment[other] {
                    let pc = &pattern.edges[ei].constraint;
                    let present = if outgoing {
                        self.has_compatible_edge(g, pc, og)
                    } else {
                        self.has_compatible_edge(og, pc, g)
                    };
                    if !present {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            assignment[pi] = Some(g);
            let stop = self.extend_match(pattern, order, adj, depth + 1, assignment, out);
            assignment[pi] = None;
            if stop {
                return true;
            }
        }
        false
    }

    /// Candidate graph nodes for pattern node `pi` given the current
    /// partial assignment: neighbours of an already-assigned pattern
    /// neighbour when possible, otherwise a label-index or full scan.
    fn candidates_for(
        &self,
        pattern: &Pattern,
        adj: &[Vec<(usize, usize, bool)>],
        pi: usize,
        assignment: &[Option<NodeId>],
    ) -> Vec<NodeId> {
        // Prefer generation from an assigned neighbour. `outgoing` means
        // the pattern edge runs pi -> other, so candidates come from
        // og's in-edges (and vice versa).
        for &(ei, other, outgoing) in &adj[pi] {
            if let Some(og) = assignment[other] {
                let pc = &pattern.edges[ei].constraint;
                let mut v = self.edge_candidates(og, pc, outgoing);
                v.sort_unstable();
                v.dedup();
                return v;
            }
        }
        // Seed node: identity equivalences read the exact per-label
        // index; keyed equivalences (case folding, synonym sets) read
        // the normalised seed index; only arbitrary `LabelEquiv` impls
        // pay the full node scan.
        match &pattern.nodes[pi].constraint {
            NodeConstraint::Label(l) => {
                if self.equiv.is_identity() {
                    let mut v = self.graph.nodes_by_label(l).to_vec();
                    v.sort_unstable();
                    return v;
                }
                if let Some(keys) = self.equiv.seed_keys(l) {
                    if let Some(index) = self.seed_index() {
                        let mut v: Vec<NodeId> = Vec::new();
                        for k in &keys {
                            if let Some(bucket) = index.get(k.as_str()) {
                                v.extend_from_slice(bucket);
                            }
                        }
                        // candidates are re-verified by node_ok, so an
                        // over-approximate bucket union is harmless
                        v.sort_unstable();
                        v.dedup();
                        return v;
                    }
                }
                // arbitrary equivalence: exact bucket plus a full scan
                // testing every other label through node_equiv
                let mut v: Vec<NodeId> = self.graph.nodes_by_label(l).to_vec();
                for node in self.graph.nodes() {
                    if node.label != l && self.equiv.node_equiv(l, node.label) {
                        v.push(node.id);
                    }
                }
                v.sort_unstable();
                v.dedup();
                v
            }
            NodeConstraint::Any => self.graph.node_ids().collect(),
        }
    }

    /// The lazily built seed index for keyed equivalences: one
    /// `seed_key` evaluation per *distinct* node label, one bucket per
    /// key. `None` when the equivalence is not keyable.
    fn seed_index(&self) -> Option<&FxHashMap<String, Vec<NodeId>>> {
        self.seed_index
            .get_or_init(|| {
                let mut map: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
                let mut key_of: FxHashMap<LabelId, Option<String>> = FxHashMap::default();
                for n in self.graph.node_ids() {
                    let lid = self.graph.node_label_id(n).expect("live node");
                    let key = key_of
                        .entry(lid)
                        .or_insert_with(|| self.equiv.seed_key(self.graph.resolve(lid)));
                    match key {
                        Some(k) => map.entry(k.clone()).or_default().push(n),
                        None => return None,
                    }
                }
                Some(map)
            })
            .as_ref()
    }

    /// Candidates adjacent to the matched node `og` under an edge
    /// constraint: `from_in_edges` selects og's in-edge sources,
    /// otherwise its out-edge targets. Identity equivalences run on the
    /// per-label index; fuzzy ones fall back to string checks.
    fn edge_candidates(&self, og: NodeId, pc: &EdgeConstraint, from_in_edges: bool) -> Vec<NodeId> {
        let g = self.graph;
        let unlabeled = |from_in: bool| -> Vec<NodeId> {
            if from_in {
                g.in_edge_entries(og).map(|(_, _, s)| s).collect()
            } else {
                g.out_edge_entries(og).map(|(_, _, d)| d).collect()
            }
        };
        if self.config.relax_edge_labels {
            return unlabeled(from_in_edges);
        }
        match pc {
            EdgeConstraint::Any => unlabeled(from_in_edges),
            EdgeConstraint::Label(l) if self.equiv.is_identity() => match g.label_id(l) {
                None => Vec::new(),
                Some(lid) => {
                    if from_in_edges {
                        g.in_neighbors_by_id(og, lid).collect()
                    } else {
                        g.out_neighbors_by_id(og, lid).collect()
                    }
                }
            },
            EdgeConstraint::Label(_) => {
                if from_in_edges {
                    g.in_edges(og)
                        .filter(|e| self.edge_label_ok(pc, e.label))
                        .map(|e| e.src)
                        .collect()
                } else {
                    g.out_edges(og)
                        .filter(|e| self.edge_label_ok(pc, e.label))
                        .map(|e| e.dst)
                        .collect()
                }
            }
        }
    }
}

/// Borrowed-equivalence adapter so `find_first` can clone config without
/// requiring `E: Clone`.
struct EquivRef<'a, E: LabelEquiv>(&'a E);

impl<E: LabelEquiv> LabelEquiv for EquivRef<'_, E> {
    fn node_equiv(&self, p: &str, g: &str) -> bool {
        self.0.node_equiv(p, g)
    }
    fn edge_equiv(&self, p: &str, g: &str) -> bool {
        self.0.edge_equiv(p, g)
    }
    fn is_identity(&self) -> bool {
        self.0.is_identity()
    }
    fn seed_key(&self, g: &str) -> Option<String> {
        self.0.seed_key(g)
    }
    fn seed_keys(&self, p: &str) -> Option<Vec<String>> {
        self.0.seed_keys(p)
    }
}

/// Chooses the matching order: the most selective labeled node first,
/// then BFS along pattern connectivity; disconnected components are
/// seeded by their own most selective node.
fn plan_order(pattern: &Pattern, graph: &OntGraph) -> Vec<usize> {
    let n = pattern.node_count();
    let mut selectivity: Vec<usize> = pattern
        .nodes
        .iter()
        .map(|pn| match &pn.constraint {
            NodeConstraint::Label(l) => graph.nodes_by_label(l).len().max(1),
            NodeConstraint::Any => graph.node_count().max(1),
        })
        .collect();
    // Weight by degree in the pattern: high-degree pattern nodes prune more.
    let mut pat_degree = vec![0usize; n];
    for e in &pattern.edges {
        pat_degree[e.src] += 1;
        pat_degree[e.dst] += 1;
    }
    for i in 0..n {
        selectivity[i] = selectivity[i].saturating_sub(pat_degree[i].min(selectivity[i] - 1));
    }

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &pattern.edges {
        adj[e.src].push(e.dst);
        adj[e.dst].push(e.src);
    }

    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        // best unplaced seed
        let seed = (0..n)
            .filter(|&i| !placed[i])
            .min_by_key(|&i| selectivity[i])
            .expect("unplaced node exists");
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(seed);
        placed[seed] = true;
        while let Some(u) = queue.pop_front() {
            order.push(u);
            // visit neighbours most-selective-first
            let mut nbrs: Vec<usize> = adj[u].iter().copied().filter(|&v| !placed[v]).collect();
            nbrs.sort_by_key(|&v| selectivity[v]);
            for v in nbrs {
                if !placed[v] {
                    placed[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel;

    /// carrier-like fragment:
    ///   Car -S-> Vehicle, Truck -S-> Vehicle,
    ///   Price -A-> Car, Owner -A-> Car, Owner -A-> Truck
    fn sample() -> OntGraph {
        let mut g = OntGraph::new("t");
        for (s, l, d) in [
            ("Car", rel::SUBCLASS_OF, "Vehicle"),
            ("Truck", rel::SUBCLASS_OF, "Vehicle"),
            ("Price", rel::ATTRIBUTE_OF, "Car"),
            ("Owner", rel::ATTRIBUTE_OF, "Car"),
            ("Owner", rel::ATTRIBUTE_OF, "Truck"),
        ] {
            g.ensure_edge_by_labels(s, l, d).unwrap();
        }
        g
    }

    #[test]
    fn single_node_pattern() {
        let g = sample();
        let mut p = Pattern::new();
        p.node("Car");
        let m = Matcher::new(&g).find_all(&p).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(g.node_label(m[0].nodes[0]), Some("Car"));
    }

    #[test]
    fn edge_pattern_exact() {
        let g = sample();
        let p = Pattern::parse("Car -SubclassOf-> Vehicle").unwrap();
        assert!(Matcher::new(&g).matches(&p).unwrap());
        let p = Pattern::parse("Vehicle -SubclassOf-> Car").unwrap();
        assert!(!Matcher::new(&g).matches(&p).unwrap());
    }

    #[test]
    fn wildcard_node_enumerates_subclasses() {
        let g = sample();
        let p = Pattern::parse("X: * -SubclassOf-> Vehicle").unwrap();
        // "X: *" is not step syntax; build manually instead
        let _ = p;
        let mut p = Pattern::new();
        let x = p.any_var_node("X");
        let v = p.node("Vehicle");
        p.edge(x, rel::SUBCLASS_OF, v);
        let ms = Matcher::new(&g).find_all(&p).unwrap();
        let mut found: Vec<&str> =
            ms.iter().map(|m| g.node_label(m.get("X").unwrap()).unwrap()).collect();
        found.sort_unstable();
        assert_eq!(found, vec!["Car", "Truck"]);
    }

    #[test]
    fn attribute_pattern_with_variable_binding() {
        let g = sample();
        // the paper's truck(O: owner, ...) shape — binds the Owner node
        let p = Pattern::parse("Truck(O: Owner)").unwrap();
        let ms = Matcher::new(&g).find_all(&p).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(g.node_label(ms[0].get("O").unwrap()), Some("Owner"));
    }

    #[test]
    fn path_pattern_any_edges() {
        let g = sample();
        // Price : Car — any edge from Price to Car
        let p = Pattern::parse("Price:Car").unwrap();
        assert!(Matcher::new(&g).matches(&p).unwrap());
        // no edge Price -> Vehicle
        let p = Pattern::parse("Price:Vehicle").unwrap();
        assert!(!Matcher::new(&g).matches(&p).unwrap());
    }

    #[test]
    fn triangle_pattern_requires_all_edges() {
        let mut g = sample();
        let p = Pattern::parse("Owner -AttributeOf-> Car -SubclassOf-> Vehicle").unwrap();
        assert!(Matcher::new(&g).matches(&p).unwrap());
        g.delete_edge_by_labels("Owner", "AttributeOf", "Car").unwrap();
        assert!(!Matcher::new(&g).matches(&p).unwrap());
    }

    #[test]
    fn max_matches_limits_results() {
        let g = sample();
        let mut p = Pattern::new();
        p.any_node();
        let cfg = MatchConfig { max_matches: 3, ..Default::default() };
        let ms = Matcher::new(&g).with_config(cfg).find_all(&p).unwrap();
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn injective_mode_prevents_node_reuse() {
        let mut g = OntGraph::new("t");
        let a = g.add_node("A").unwrap();
        g.add_edge(a, "loop", a).unwrap();
        let mut p = Pattern::new();
        let x = p.any_node();
        let y = p.any_node();
        p.edge(x, "loop", y);
        // homomorphism: x=y=A matches the self loop
        assert!(Matcher::new(&g).matches(&p).unwrap());
        let cfg = MatchConfig { injective: true, ..Default::default() };
        assert!(!Matcher::new(&g).with_config(cfg).matches(&p).unwrap());
    }

    #[test]
    fn relaxed_edge_labels() {
        let g = sample();
        let p = Pattern::parse("Price -SubclassOf-> Car").unwrap(); // wrong label
        assert!(!Matcher::new(&g).matches(&p).unwrap());
        let cfg = MatchConfig { relax_edge_labels: true, ..Default::default() };
        assert!(Matcher::new(&g).with_config(cfg).matches(&p).unwrap());
    }

    #[test]
    fn case_insensitive_equiv() {
        let g = sample();
        let p = Pattern::parse("car -subclassof-> vehicle").unwrap();
        assert!(!Matcher::new(&g).matches(&p).unwrap());
        let m = Matcher::with_equiv(&g, CaseInsensitiveEquiv);
        assert!(m.matches(&p).unwrap());
    }

    /// Synonym-style custom equivalence: the §3 relaxation.
    struct Syn;
    impl LabelEquiv for Syn {
        fn node_equiv(&self, p: &str, g: &str) -> bool {
            p == g || (p == "Automobile" && g == "Car") || (p == "Car" && g == "Automobile")
        }
    }

    #[test]
    fn synonym_equiv_finds_nonidentical_seed() {
        let g = sample();
        let mut p = Pattern::new();
        let a = p.node("Automobile");
        let v = p.node("Vehicle");
        p.edge(a, rel::SUBCLASS_OF, v);
        let ms = Matcher::with_equiv(&g, Syn).find_all(&p).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(g.node_label(ms[0].nodes[0]), Some("Car"));
    }

    /// Keyed synonym equivalence: enumerable classes expose seed keys,
    /// so seeding goes through the normalised index instead of a scan.
    struct KeyedSyn;
    impl LabelEquiv for KeyedSyn {
        fn node_equiv(&self, p: &str, g: &str) -> bool {
            let norm = |s: &str| {
                if s.eq_ignore_ascii_case("automobile") {
                    "car".to_string()
                } else {
                    s.to_ascii_lowercase()
                }
            };
            norm(p) == norm(g)
        }
        fn seed_key(&self, g: &str) -> Option<String> {
            if g.eq_ignore_ascii_case("automobile") {
                Some("car".into())
            } else {
                Some(g.to_ascii_lowercase())
            }
        }
    }

    #[test]
    fn keyed_equiv_seeds_through_the_index() {
        let g = sample();
        let mut p = Pattern::new();
        let a = p.node("Automobile");
        let v = p.node("Vehicle");
        p.edge(a, rel::SUBCLASS_OF, v);
        let ms = Matcher::with_equiv(&g, KeyedSyn).find_all(&p).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(g.node_label(ms[0].nodes[0]), Some("Car"));
        // a key with no bucket yields no candidates (and no scan)
        let mut p2 = Pattern::new();
        p2.node("Spaceship");
        assert!(!Matcher::with_equiv(&g, KeyedSyn).matches(&p2).unwrap());
    }

    #[test]
    fn count_and_find_first_agree() {
        let g = sample();
        let mut p = Pattern::new();
        let x = p.any_node();
        let v = p.node("Vehicle");
        p.edge(x, rel::SUBCLASS_OF, v);
        let m = Matcher::new(&g);
        assert_eq!(m.count(&p).unwrap(), 2);
        assert!(m.find_first(&p).unwrap().is_some());
    }

    #[test]
    fn disconnected_pattern_is_cross_product() {
        let g = sample();
        let mut p = Pattern::new();
        p.node("Car");
        p.node("Truck");
        let ms = Matcher::new(&g).find_all(&p).unwrap();
        assert_eq!(ms.len(), 1); // 1 Car × 1 Truck
        assert!(!p.is_connected());
    }

    #[test]
    fn no_match_in_empty_graph() {
        let g = OntGraph::new("empty");
        let mut p = Pattern::new();
        p.node("Anything");
        assert!(!Matcher::new(&g).matches(&p).unwrap());
    }
}
