//! String interning for node and edge labels.
//!
//! The paper's label functions `λ` (nodes) and `δ` (edges) map into "the
//! set of strings (from all lexicons)" (§3). Labels recur heavily — every
//! `SubclassOf` edge shares one label — so each [`crate::OntGraph`] interns
//! its labels and stores compact [`LabelId`]s. Hot paths (pattern matching,
//! closure computation) compare `u32` ids; strings are resolved only at API
//! boundaries.

use std::fmt;

use crate::hash::FxHashMap;

/// Compact identifier for an interned label within one [`Interner`].
///
/// Ids are dense, starting at zero, and valid only for the interner that
/// produced them. Cross-graph operations translate through the string form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub(crate) u32);

impl LabelId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An append-only string interner.
///
/// Strings are stored once; lookups go through a `HashMap` keyed by the
/// stored boxed string. The interner never removes entries: label churn in
/// ontologies is low and tombstoned graph elements may still reference
/// their labels for journal replay.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    ids: FxHashMap<Box<str>, LabelId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing id if present.
    pub fn intern(&mut self, s: &str) -> LabelId {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = LabelId(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Looks up `s` without inserting.
    pub fn get(&self, s: &str) -> Option<LabelId> {
        self.ids.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was produced by a different interner and is out of
    /// range; ids are never invalidated by this interner itself.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(id, label)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (LabelId(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Car");
        let b = i.intern("Car");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("Car");
        let b = i.intern("car");
        assert_ne!(a, b, "interning is case-sensitive");
        assert_eq!(i.resolve(a), "Car");
        assert_eq!(i.resolve(b), "car");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("Vehicle").is_none());
        i.intern("Vehicle");
        assert!(i.get("Vehicle").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let labels: Vec<&str> = i.iter().map(|(_, s)| s).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
    }

    #[test]
    fn ids_are_dense_from_zero() {
        let mut i = Interner::new();
        assert_eq!(i.intern("x").index(), 0);
        assert_eq!(i.intern("y").index(), 1);
        assert_eq!(i.intern("x").index(), 0);
    }

    #[test]
    fn empty_and_len() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        i.intern("q");
        assert!(!i.is_empty());
        assert_eq!(i.len(), 1);
    }
}
