//! Open-addressed `(src, label, dst) → EdgeId` index with inline keys,
//! split into per-shard sub-tables sized to L2.
//!
//! The edge index is probed once per `find_edge`/`ensure_edge` and the
//! probes are random-access (B4-style point lookups), so the limiting
//! factor is cache misses, not hashing (ROADMAP "Point-probe latency").
//! A `HashMap<(NodeId, LabelId, NodeId), EdgeId>` stores 16-byte keys
//! behind SwissTable control bytes in a separate metadata array — two
//! dependent cache lines per probe. This table instead stores the key
//! *inline* with its value in one flat array of 16-byte slots (four per
//! cache line): a probe is one multiply-hash plus a linear scan that
//! almost always ends within the first line touched.
//!
//! ## Sub-tables
//!
//! One flat table for a large graph spans many megabytes, so a random
//! probe stream misses L2 on nearly every access. The index therefore
//! shards into up to [`MAX_SUBS`] **sub-tables keyed by source node**
//! (`src & (subs-1)`), each kept at or under [`L2_SLOTS`] slots
//! (256 KiB — comfortably inside a per-core L2). A sub-table that
//! would have to grow past that budget triggers a doubling of the
//! sub-table count instead (redistributing all entries), so a workload
//! that revisits a source's neighbourhood — the shape of
//! `find_edge_all_triples` and of `ensure_edge` churn — keeps its
//! whole probe universe L2-resident. Once all [`MAX_SUBS`] sub-tables
//! exist, they grow past the budget like the old single table did.
//!
//! Deletion uses tombstones (the slot keeps its key, the value field
//! becomes the `TOMBSTONE` sentinel); rehashing on growth drops them,
//! and a rehash is also forced when tombstones outnumber live entries,
//! so churn cannot degrade probe lengths permanently. Capacity is a
//! power of two with load (live + tombstones) kept under 7/8.

use crate::graph::{EdgeId, NodeId};
use crate::label::LabelId;

/// Value sentinel: slot never used.
const EMPTY: u32 = u32::MAX;
/// Value sentinel: slot deleted (key remains for probe continuation).
const TOMBSTONE: u32 = u32::MAX - 1;
/// The FxHash multiplier (same constant as [`crate::hash`]).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Per-sub-table slot budget: 16384 × 16 B = 256 KiB, sized so one
/// sub-table's hot probe set fits a per-core L2.
const L2_SLOTS: usize = 16 * 1024;
/// Sub-table count ceiling (64 × 256 KiB = 16 MiB of index before any
/// sub-table exceeds the L2 budget).
const MAX_SUBS: usize = 64;

/// One 16-byte slot: the full key inline plus the edge id / state word.
#[derive(Debug, Clone, Copy)]
struct Slot {
    src: u32,
    label: u32,
    dst: u32,
    edge: u32,
}

const VACANT: Slot = Slot { src: 0, label: 0, dst: 0, edge: EMPTY };

#[inline]
fn hash3(src: u32, label: u32, dst: u32) -> u64 {
    let mut h = 0u64;
    for w in [src, label, dst] {
        h = (h.rotate_left(5) ^ u64::from(w)).wrapping_mul(SEED);
    }
    h
}

/// One open-addressed sub-table (linear probing, power-of-two capacity,
/// inline keys).
#[derive(Debug, Clone, Default)]
struct Sub {
    slots: Vec<Slot>,
    live: usize,
    tombstones: usize,
}

impl Sub {
    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    #[inline]
    fn get(&self, s: u32, l: u32, d: u32) -> Option<EdgeId> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = hash3(s, l, d) as usize & self.mask();
        loop {
            let slot = &self.slots[i];
            if slot.edge == EMPTY {
                return None;
            }
            if slot.edge != TOMBSTONE && slot.src == s && slot.label == l && slot.dst == d {
                return Some(EdgeId(slot.edge));
            }
            i = (i + 1) & self.mask();
        }
    }

    fn insert(&mut self, s: u32, l: u32, d: u32, edge: u32) {
        self.reserve_one();
        let mut i = hash3(s, l, d) as usize & self.mask();
        let mut first_tomb: Option<usize> = None;
        loop {
            let slot = &self.slots[i];
            if slot.edge == EMPTY {
                let at = first_tomb.unwrap_or(i);
                if self.slots[at].edge == TOMBSTONE {
                    self.tombstones -= 1;
                }
                self.slots[at] = Slot { src: s, label: l, dst: d, edge };
                self.live += 1;
                return;
            }
            if slot.edge == TOMBSTONE {
                if first_tomb.is_none() {
                    first_tomb = Some(i);
                }
            } else if slot.src == s && slot.label == l && slot.dst == d {
                self.slots[i].edge = edge;
                return;
            }
            i = (i + 1) & self.mask();
        }
    }

    fn remove(&mut self, s: u32, l: u32, d: u32) -> Option<EdgeId> {
        if self.slots.is_empty() {
            return None;
        }
        let mut i = hash3(s, l, d) as usize & self.mask();
        loop {
            let slot = &self.slots[i];
            if slot.edge == EMPTY {
                return None;
            }
            if slot.edge != TOMBSTONE && slot.src == s && slot.label == l && slot.dst == d {
                let id = EdgeId(slot.edge);
                self.slots[i].edge = TOMBSTONE;
                self.live -= 1;
                self.tombstones += 1;
                // churn guard: never let dead slots dominate the table
                if self.tombstones > self.live.max(8) {
                    self.rehash(self.slots.len());
                }
                return Some(id);
            }
            i = (i + 1) & self.mask();
        }
    }

    /// Ensures room for one more entry at < 7/8 load (live + tombstones).
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = vec![VACANT; 16];
            return;
        }
        if (self.live + self.tombstones + 1) * 8 >= self.slots.len() * 7 {
            // size for the live set only; rehash drops tombstones
            let target = ((self.live + 1) * 4).next_power_of_two().max(16);
            self.rehash(target.max(self.slots.len()));
        }
    }

    /// True when accommodating one more entry would push the LIVE set's
    /// natural capacity past the L2 budget — the signal to split the
    /// index rather than grow this sub-table.
    fn wants_split(&self) -> bool {
        !self.slots.is_empty()
            && (self.live + self.tombstones + 1) * 8 >= self.slots.len() * 7
            && ((self.live + 1) * 4).next_power_of_two() > L2_SLOTS
    }

    fn rehash(&mut self, capacity: usize) {
        let old = std::mem::replace(&mut self.slots, vec![VACANT; capacity]);
        self.tombstones = 0;
        let mask = self.slots.len() - 1;
        for slot in old {
            if slot.edge == EMPTY || slot.edge == TOMBSTONE {
                continue;
            }
            let mut i = hash3(slot.src, slot.label, slot.dst) as usize & mask;
            while self.slots[i].edge != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
        }
    }
}

/// The sharded edge index: a power-of-two set of [`Sub`] tables keyed
/// by source node (module docs). Holds exactly the live
/// `(src, label, dst)` triples of its [`crate::OntGraph`].
#[derive(Debug, Clone)]
pub(crate) struct EdgeIndex {
    subs: Vec<Sub>,
}

impl Default for EdgeIndex {
    fn default() -> Self {
        EdgeIndex { subs: vec![Sub::default()] }
    }
}

impl EdgeIndex {
    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.subs.iter().map(|s| s.live).sum()
    }

    /// The sub-table owning `src` (power-of-two count ⇒ mask).
    #[inline]
    fn sub_of(&self, src: u32) -> usize {
        src as usize & (self.subs.len() - 1)
    }

    /// Looks up the edge id of a triple: one hash, one linear scan
    /// inside the source's L2-sized sub-table.
    #[inline]
    pub(crate) fn get(&self, src: NodeId, label: LabelId, dst: NodeId) -> Option<EdgeId> {
        self.subs[self.sub_of(src.0)].get(src.0, label.0, dst.0)
    }

    /// True if the triple is present.
    #[inline]
    pub(crate) fn contains(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.get(src, label, dst).is_some()
    }

    /// Inserts (or updates) a triple's edge id.
    pub(crate) fn insert(&mut self, src: NodeId, label: LabelId, dst: NodeId, edge: EdgeId) {
        debug_assert!(edge.0 < TOMBSTONE, "edge arena outgrew the sentinel range");
        while self.subs.len() < MAX_SUBS && self.subs[self.sub_of(src.0)].wants_split() {
            self.split();
        }
        let k = self.sub_of(src.0);
        self.subs[k].insert(src.0, label.0, dst.0, edge.0);
    }

    /// Removes a triple, returning its edge id if it was present.
    pub(crate) fn remove(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> Option<EdgeId> {
        let k = self.sub_of(src.0);
        self.subs[k].remove(src.0, label.0, dst.0)
    }

    /// Doubles the sub-table count, redistributing every live entry by
    /// its source bit. Each doubling roughly halves per-sub occupancy,
    /// keeping sub-tables inside the L2 budget until [`MAX_SUBS`].
    fn split(&mut self) {
        let old = std::mem::replace(&mut self.subs, Vec::new());
        self.subs = (0..old.len() * 2).map(|_| Sub::default()).collect();
        let mask = self.subs.len() - 1;
        for sub in old {
            for slot in sub.slots {
                if slot.edge == EMPTY || slot.edge == TOMBSTONE {
                    continue;
                }
                self.subs[slot.src as usize & mask]
                    .insert(slot.src, slot.label, slot.dst, slot.edge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: u32, l: u32, d: u32) -> (NodeId, LabelId, NodeId) {
        (NodeId(s), LabelId(l), NodeId(d))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut ix = EdgeIndex::default();
        let (s, l, d) = k(1, 2, 3);
        assert_eq!(ix.get(s, l, d), None);
        ix.insert(s, l, d, EdgeId(7));
        assert_eq!(ix.get(s, l, d), Some(EdgeId(7)));
        assert!(ix.contains(s, l, d));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.remove(s, l, d), Some(EdgeId(7)));
        assert_eq!(ix.get(s, l, d), None);
        assert_eq!(ix.remove(s, l, d), None);
        assert_eq!(ix.len(), 0);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut ix = EdgeIndex::default();
        for i in 0..10_000u32 {
            ix.insert(NodeId(i), LabelId(i % 7), NodeId(i.wrapping_mul(31)), EdgeId(i));
        }
        assert_eq!(ix.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(
                ix.get(NodeId(i), LabelId(i % 7), NodeId(i.wrapping_mul(31))),
                Some(EdgeId(i)),
                "key {i}"
            );
        }
        assert_eq!(ix.get(NodeId(10_001), LabelId(0), NodeId(0)), None);
    }

    #[test]
    fn churn_keeps_probes_correct() {
        // add/remove cycles leave tombstones; the rehash guard must keep
        // every surviving key findable and absent keys absent
        let mut ix = EdgeIndex::default();
        for round in 0..50u32 {
            for i in 0..100u32 {
                ix.insert(NodeId(i), LabelId(round), NodeId(i + 1), EdgeId(round * 100 + i));
            }
            for i in 0..100u32 {
                assert!(ix.remove(NodeId(i), LabelId(round), NodeId(i + 1)).is_some());
            }
        }
        assert_eq!(ix.len(), 0);
        ix.insert(NodeId(5), LabelId(5), NodeId(6), EdgeId(1));
        assert_eq!(ix.get(NodeId(5), LabelId(5), NodeId(6)), Some(EdgeId(1)));
        assert_eq!(ix.get(NodeId(5), LabelId(49), NodeId(6)), None);
    }

    #[test]
    fn update_in_place_does_not_grow_live_count() {
        let mut ix = EdgeIndex::default();
        let (s, l, d) = k(9, 9, 9);
        ix.insert(s, l, d, EdgeId(1));
        ix.insert(s, l, d, EdgeId(2));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.get(s, l, d), Some(EdgeId(2)));
    }

    #[test]
    fn colliding_keys_coexist() {
        // identical hashes are impossible to force portably; instead mass
        // insert into a small table so probes wrap and overlap
        let mut ix = EdgeIndex::default();
        for i in 0..64u32 {
            ix.insert(NodeId(0), LabelId(0), NodeId(i), EdgeId(i));
        }
        for i in 0..64u32 {
            assert_eq!(ix.get(NodeId(0), LabelId(0), NodeId(i)), Some(EdgeId(i)));
        }
    }

    #[test]
    fn splits_into_subtables_past_the_l2_budget() {
        // enough live entries to force sub-table splits: every key must
        // remain findable through redistribution, deletions included
        let mut ix = EdgeIndex::default();
        let n = (L2_SLOTS as u32) * 2; // 32k entries > one sub's budget
        for i in 0..n {
            ix.insert(NodeId(i), LabelId(i % 5), NodeId(i ^ 0x55aa), EdgeId(i));
        }
        assert!(ix.subs.len() > 1, "index split ({} subs)", ix.subs.len());
        assert!(
            ix.subs.iter().all(|s| s.slots.len() <= L2_SLOTS),
            "every sub-table within the L2 budget"
        );
        assert_eq!(ix.len(), n as usize);
        for i in 0..n {
            assert_eq!(ix.get(NodeId(i), LabelId(i % 5), NodeId(i ^ 0x55aa)), Some(EdgeId(i)));
        }
        // delete half, verify the rest
        for i in (0..n).step_by(2) {
            assert!(ix.remove(NodeId(i), LabelId(i % 5), NodeId(i ^ 0x55aa)).is_some());
        }
        assert_eq!(ix.len(), (n / 2) as usize);
        for i in 0..n {
            let got = ix.get(NodeId(i), LabelId(i % 5), NodeId(i ^ 0x55aa));
            assert_eq!(got.is_some(), i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn single_source_hot_spot_stays_correct_at_the_sub_cap() {
        // all keys share src 0 so splitting cannot spread them: the
        // index must cap at MAX_SUBS and let sub 0 grow past the budget
        let mut ix = EdgeIndex::default();
        let n = (L2_SLOTS as u32) + 100;
        for i in 0..n {
            ix.insert(NodeId(0), LabelId(1), NodeId(i), EdgeId(i));
        }
        assert!(ix.subs.len() <= MAX_SUBS);
        assert_eq!(ix.len(), n as usize);
        for i in 0..n {
            assert_eq!(ix.get(NodeId(0), LabelId(1), NodeId(i)), Some(EdgeId(i)));
        }
    }
}
