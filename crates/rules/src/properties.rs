//! Relation-property declarations.
//!
//! §2.5: "The ontologies are expected to have rules that define the
//! properties of each relationship, e.g., we will have rules that
//! indicate the transitive nature of the `SubclassOf` relationship.
//! These rules are used by the articulation generator and the inference
//! engine while generating the articulation and also while answering
//! end-user queries."

use std::collections::BTreeMap;

use crate::atoms::{AtomId, AtomTable};

/// Logical properties of one relationship (edge label).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationProperties {
    /// `r(a,b) ∧ r(b,c) → r(a,c)`.
    pub transitive: bool,
    /// `r(a,b) → r(b,a)`.
    pub symmetric: bool,
    /// `r(a,a)` for every term (informational; engines skip reflexive
    /// loops as they carry no information).
    pub reflexive: bool,
    /// Name of the inverse relationship, if declared (`AttributeOf` /
    /// `HasAttribute`).
    pub inverse_of: Option<String>,
    /// Whether an `r` edge entails a `SemanticImplication` edge — true
    /// for `SubclassOf` and `InstanceOf` in ONION's semantics.
    pub implies_semantic: bool,
}

impl RelationProperties {
    /// A plain relation with no special properties.
    pub fn none() -> Self {
        Self::default()
    }

    /// Marks transitive.
    pub fn transitive(mut self) -> Self {
        self.transitive = true;
        self
    }

    /// Marks symmetric.
    pub fn symmetric(mut self) -> Self {
        self.symmetric = true;
        self
    }

    /// Marks reflexive.
    pub fn reflexive(mut self) -> Self {
        self.reflexive = true;
        self
    }

    /// Declares the inverse relation name.
    pub fn inverse(mut self, name: &str) -> Self {
        self.inverse_of = Some(name.to_string());
        self
    }

    /// Declares that the relation entails semantic implication.
    pub fn semantic(mut self) -> Self {
        self.implies_semantic = true;
        self
    }
}

/// A registry of relation labels and their properties.
///
/// Stored in a `BTreeMap` so iteration (and therefore generated Horn
/// programs) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationRegistry {
    relations: BTreeMap<String, RelationProperties>,
}

impl RelationRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ONION defaults for the paper's four canonical relationships:
    ///
    /// * `SubclassOf` — transitive, semantic;
    /// * `InstanceOf` — semantic (not transitive: an instance of a class
    ///   is not an instance of instances);
    /// * `AttributeOf` — no closure properties;
    /// * `SI` (semantic implication) — transitive.
    pub fn onion_default() -> Self {
        let mut r = Self::new();
        r.declare("SubclassOf", RelationProperties::none().transitive().semantic());
        r.declare("InstanceOf", RelationProperties::none().semantic());
        r.declare("AttributeOf", RelationProperties::none());
        r.declare("SI", RelationProperties::none().transitive());
        r
    }

    /// Declares (or replaces) a relation.
    pub fn declare(&mut self, name: &str, props: RelationProperties) {
        self.relations.insert(name.to_string(), props);
    }

    /// Looks up a relation's properties.
    pub fn get(&self, name: &str) -> Option<&RelationProperties> {
        self.relations.get(name)
    }

    /// Properties with defaults for unknown relations.
    pub fn get_or_default(&self, name: &str) -> RelationProperties {
        self.relations.get(name).cloned().unwrap_or_default()
    }

    /// True if the relation is declared transitive.
    pub fn is_transitive(&self, name: &str) -> bool {
        self.get(name).map(|p| p.transitive).unwrap_or(false)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates `(name, properties)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RelationProperties)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Interns the canonical predicate name (see
    /// [`crate::horn::pred_name`]) of every declared relation, in name
    /// order — the id-space the inference engine joins over.
    pub fn pred_atoms(&self, atoms: &mut AtomTable) -> Vec<(AtomId, &RelationProperties)> {
        self.relations
            .iter()
            .map(|(name, props)| (atoms.intern(&crate::horn::pred_name(name)), props))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = RelationProperties::none()
            .transitive()
            .symmetric()
            .reflexive()
            .inverse("inv")
            .semantic();
        assert!(p.transitive && p.symmetric && p.reflexive && p.implies_semantic);
        assert_eq!(p.inverse_of.as_deref(), Some("inv"));
    }

    #[test]
    fn onion_defaults() {
        let r = RelationRegistry::onion_default();
        assert!(r.is_transitive("SubclassOf"));
        assert!(!r.is_transitive("AttributeOf"));
        assert!(r.get("InstanceOf").unwrap().implies_semantic);
        assert!(!r.get("InstanceOf").unwrap().transitive);
        assert!(r.is_transitive("SI"));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn unknown_relations_default_to_plain() {
        let r = RelationRegistry::onion_default();
        assert!(!r.is_transitive("drives"));
        assert_eq!(r.get_or_default("drives"), RelationProperties::none());
        assert!(r.get("drives").is_none());
    }

    #[test]
    fn declare_replaces() {
        let mut r = RelationRegistry::new();
        r.declare("rel", RelationProperties::none());
        r.declare("rel", RelationProperties::none().transitive());
        assert!(r.is_transitive("rel"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn pred_atoms_intern_lowercased_names_in_order() {
        let r = RelationRegistry::onion_default();
        let mut atoms = AtomTable::new();
        let preds = r.pred_atoms(&mut atoms);
        let names: Vec<&str> = preds.iter().map(|(id, _)| atoms.resolve(*id)).collect();
        assert_eq!(names, vec!["attributeof", "instanceof", "si", "subclassof"]);
        assert!(preds.iter().any(|(id, p)| atoms.resolve(*id) == "subclassof" && p.transitive));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut r = RelationRegistry::new();
        r.declare("zeta", RelationProperties::none());
        r.declare("alpha", RelationProperties::none());
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
