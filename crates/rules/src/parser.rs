//! Parser for the textual articulation-rule syntax.
//!
//! Grammar (one rule per line; `#` comments):
//!
//! ```text
//! rule      := functional | implication
//! functional:= IDENT "(" ")" ":" term "=>" term
//! implication := expr ("=>" expr)+
//! expr      := orexpr
//! orexpr    := andexpr ("|" andexpr)*            # also the word "or"
//! andexpr   := atom ("&" atom)*                  # also "^" and the word "and"
//! atom      := term | "(" expr ")"
//! term      := [IDENT "."] IDENT                 # carrier.Car, quoted labels allowed
//! ```
//!
//! `and` and `or` are **reserved words** (operator spellings); to use
//! them as term or ontology names, quote them: `"or".Thing`.
//!
//! Matching the paper's examples:
//!
//! ```text
//! carrier.Car => factory.Vehicle
//! carrier.Car => transport.PassengerCar => factory.Vehicle
//! (factory.CargoCarrier & factory.Vehicle) => carrier.Trucks
//! factory.Vehicle => (carrier.Cars | carrier.Trucks)
//! DGToEuroFn(): carrier.DutchGuilders => transport.Euro
//! ```

use crate::ast::{ArticulationRule, RuleExpr, RuleSet, Term};
use crate::{Result, RuleError};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Dot,
    Implies, // =>
    And,     // & ^ and
    Or,      // | or
    LParen,
    RParen,
    Colon,
    Unit, // ()
}

fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let b: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            _ if c.is_whitespace() => i += 1,
            '#' => break,
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '&' | '^' => {
                toks.push(Tok::And);
                i += 1;
            }
            '|' => {
                toks.push(Tok::Or);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '(' => {
                if b.get(i + 1) == Some(&')') {
                    toks.push(Tok::Unit);
                    i += 2;
                } else {
                    toks.push(Tok::LParen);
                    i += 1;
                }
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                if b.get(i + 1) == Some(&'>') {
                    toks.push(Tok::Implies);
                    i += 2;
                } else {
                    return Err(RuleError::Parse {
                        line: lineno,
                        msg: "expected '=>' after '='".into(),
                    });
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < b.len() && b[j] != '"' {
                    s.push(b[j]);
                    j += 1;
                }
                if j >= b.len() {
                    return Err(RuleError::Parse {
                        line: lineno,
                        msg: "unterminated quoted term".into(),
                    });
                }
                toks.push(Tok::Ident(s));
                i = j + 1;
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                let mut s = String::new();
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    s.push(b[j]);
                    j += 1;
                }
                match s.as_str() {
                    "and" => toks.push(Tok::And),
                    "or" => toks.push(Tok::Or),
                    _ => toks.push(Tok::Ident(s)),
                }
                i = j;
            }
            other => {
                return Err(RuleError::Parse {
                    line: lineno,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
    line: usize,
}

impl P {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(RuleError::Parse { line: self.line, msg: msg.into() })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// term := IDENT [ '.' IDENT ]
    fn term(&mut self) -> Result<Term> {
        let first = self.ident()?;
        if self.eat(&Tok::Dot) {
            let name = self.ident()?;
            Ok(Term::qualified(&first, &name))
        } else {
            Ok(Term::unqualified(&first))
        }
    }

    fn atom(&mut self) -> Result<RuleExpr> {
        if self.eat(&Tok::LParen) {
            let e = self.or_expr()?;
            self.expect(Tok::RParen)?;
            Ok(e)
        } else {
            Ok(RuleExpr::Term(self.term()?))
        }
    }

    fn and_expr(&mut self) -> Result<RuleExpr> {
        let first = self.atom()?;
        if self.peek() != Some(&Tok::And) {
            return Ok(first);
        }
        let mut xs = vec![first];
        while self.eat(&Tok::And) {
            xs.push(self.atom()?);
        }
        Ok(RuleExpr::And(xs))
    }

    fn or_expr(&mut self) -> Result<RuleExpr> {
        let first = self.and_expr()?;
        if self.peek() != Some(&Tok::Or) {
            return Ok(first);
        }
        let mut xs = vec![first];
        while self.eat(&Tok::Or) {
            xs.push(self.and_expr()?);
        }
        Ok(RuleExpr::Or(xs))
    }

    fn rule(&mut self) -> Result<ArticulationRule> {
        // functional form: IDENT () : term => term
        if matches!(self.peek(), Some(Tok::Ident(_)))
            && self.toks.get(self.pos + 1) == Some(&Tok::Unit)
        {
            let function = self.ident()?;
            self.expect(Tok::Unit)?;
            self.expect(Tok::Colon)?;
            let from = self.term()?;
            self.expect(Tok::Implies)?;
            let to = self.term()?;
            if self.peek().is_some() {
                return self.err("trailing tokens after functional rule");
            }
            return Ok(ArticulationRule::Functional { function, from, to });
        }
        let mut chain = vec![self.or_expr()?];
        while self.eat(&Tok::Implies) {
            chain.push(self.or_expr()?);
        }
        if chain.len() < 2 {
            return self.err("expected '=>' in rule");
        }
        if self.peek().is_some() {
            return self.err(format!("trailing tokens {:?}", self.peek()));
        }
        Ok(ArticulationRule::Implication { chain })
    }
}

/// Parses one rule from a single line.
pub fn parse_rule(line: &str) -> Result<ArticulationRule> {
    parse_rule_at(line, 1)
}

fn parse_rule_at(line: &str, lineno: usize) -> Result<ArticulationRule> {
    let toks = tokenize(line, lineno)?;
    if toks.is_empty() {
        return Err(RuleError::Parse { line: lineno, msg: "empty rule".into() });
    }
    let mut p = P { toks, pos: 0, line: lineno };
    p.rule()
}

/// Parses a rule file: one rule per line, `#` comments, blank lines
/// ignored. Duplicate rules are dropped (RuleSet semantics).
///
/// ```
/// let rules = onion_rules::parse_rules(
///     "carrier.Car => factory.Vehicle\n\
///      (factory.CargoCarrier & factory.Vehicle) => carrier.Trucks\n\
///      DGToEuroFn(): carrier.DutchGuilders => transport.Euro\n",
/// )
/// .unwrap();
/// assert_eq!(rules.len(), 3);
/// assert_eq!(rules.ontologies(), vec!["carrier", "factory", "transport"]);
/// ```
pub fn parse_rules(input: &str) -> Result<RuleSet> {
    let mut rs = RuleSet::new();
    for (i, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        rs.push(parse_rule_at(line, i + 1)?);
    }
    Ok(rs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_implication() {
        let r = parse_rule("carrier.Car => factory.Vehicle").unwrap();
        assert_eq!(r.to_string(), "carrier.Car => factory.Vehicle");
        assert!(r.is_simple_implication());
    }

    #[test]
    fn cascaded_implication() {
        let r = parse_rule("carrier.Car => transport.PassengerCar => factory.Vehicle").unwrap();
        match &r {
            ArticulationRule::Implication { chain } => assert_eq!(chain.len(), 3),
            _ => panic!("expected implication"),
        }
    }

    #[test]
    fn conjunction_rule_from_paper() {
        let r = parse_rule("(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks").unwrap();
        match &r {
            ArticulationRule::Implication { chain } => {
                assert!(matches!(&chain[0], RuleExpr::And(xs) if xs.len() == 2));
                assert!(chain[1].is_simple());
            }
            _ => panic!("expected implication"),
        }
        assert_eq!(r.to_string(), "(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks");
    }

    #[test]
    fn disjunction_rule_from_paper() {
        let r = parse_rule("factory.Vehicle => (carrier.Cars | carrier.Trucks)").unwrap();
        match &r {
            ArticulationRule::Implication { chain } => {
                assert!(matches!(&chain[1], RuleExpr::Or(xs) if xs.len() == 2));
            }
            _ => panic!("expected implication"),
        }
    }

    #[test]
    fn word_operators_and_caret() {
        let a = parse_rule("(a.X and a.Y) => b.Z").unwrap();
        let b = parse_rule("(a.X & a.Y) => b.Z").unwrap();
        let c = parse_rule("(a.X ^ a.Y) => b.Z").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        let d = parse_rule("a.X => (b.Y or b.Z)").unwrap();
        let e = parse_rule("a.X => (b.Y | b.Z)").unwrap();
        assert_eq!(d, e);
    }

    #[test]
    fn functional_rule_from_paper() {
        let r = parse_rule("DGToEuroFn(): carrier.DutchGuilders => transport.Euro").unwrap();
        match &r {
            ArticulationRule::Functional { function, from, to } => {
                assert_eq!(function, "DGToEuroFn");
                assert_eq!(from.to_string(), "carrier.DutchGuilders");
                assert_eq!(to.to_string(), "transport.Euro");
            }
            _ => panic!("expected functional"),
        }
    }

    #[test]
    fn unqualified_terms() {
        let r = parse_rule("Owner => Person").unwrap();
        match &r {
            ArticulationRule::Implication { chain } => {
                let ts = chain[0].terms();
                assert!(ts[0].ontology.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn quoted_terms() {
        let r = parse_rule("carrier.\"Cargo Carrier\" => factory.Goods").unwrap();
        assert_eq!(r.terms()[0].name, "Cargo Carrier");
    }

    #[test]
    fn nested_parens_and_mixed_ops() {
        let r = parse_rule("((a.X & a.Y) | a.Z) => b.W").unwrap();
        match &r {
            ArticulationRule::Implication { chain } => match &chain[0] {
                RuleExpr::Or(xs) => {
                    assert!(matches!(&xs[0], RuleExpr::And(_)));
                    assert!(matches!(&xs[1], RuleExpr::Term(_)));
                }
                other => panic!("expected Or, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let r = parse_rule("a.X & a.Y | a.Z => b.W").unwrap();
        match &r {
            ArticulationRule::Implication { chain } => {
                assert!(matches!(&chain[0], RuleExpr::Or(_)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "a.X",              // no implication
            "a.X =>",           // dangling
            "=> b.Y",           // missing lhs
            "a.X = b.Y",        // bad arrow
            "a.X => (b.Y",      // unclosed paren
            "F(: a.X => b.Y",   // bad functional
            "F(): a.X => ",     // functional missing rhs
            "a.X => b.Y extra", // trailing
            "a..X => b.Y",      // double dot
            "\"unterminated => b.Y",
            "a.X $ b.Y", // bad char
        ] {
            assert!(parse_rule(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_rules_file() {
        let text = r#"
# articulation for the transport example
carrier.Car => factory.Vehicle
carrier.Car => factory.Vehicle      # duplicate dropped

(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks
PSToEuroFn(): carrier.PS => transport.Euro
"#;
        let rs = parse_rules(text).unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn parse_rules_error_reports_line() {
        let text = "carrier.Car => factory.Vehicle\nbogus line here\n";
        match parse_rules(text).unwrap_err() {
            RuleError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "carrier.Car => factory.Vehicle",
            "carrier.Car => transport.PassengerCar => factory.Vehicle",
            "(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks",
            "factory.Vehicle => (carrier.Cars | carrier.Trucks)",
            "DGToEuroFn(): carrier.DutchGuilders => transport.Euro",
        ] {
            let r = parse_rule(src).unwrap();
            let r2 = parse_rule(&r.to_string()).unwrap();
            assert_eq!(r, r2, "roundtrip failed for {src}");
        }
    }
}
