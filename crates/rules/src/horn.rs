//! Horn-clause representation of articulation knowledge.
//!
//! §4.1: "Since inference engines for full first-order systems tend not
//! to scale up to large knowledge bases, for performance reasons, we
//! envisage that for a lot of applications, we will use simple Horn
//! Clauses to represent articulation rules. The modular design of the
//! onion system implies that we can then plug in a much lighter (and
//! faster) inference engine."
//!
//! A [`HornClause`] is `head :- body₁, …, bodyₙ` over predicates applied
//! to variables and constants. A [`HornProgram`] bundles clauses and is
//! executed by [`crate::infer`]. The textual syntax is Datalog-like:
//!
//! ```text
//! subclass(X, Z) :- subclass(X, Y), subclass(Y, Z).
//! si(X, Y) :- subclass(X, Y).
//! ```
//!
//! Variables start with an uppercase letter; everything else (including
//! quoted strings) is a constant.

use std::fmt;

use crate::ast::{ArticulationRule, RuleExpr};
use crate::atoms::{AtomId, AtomTable};
use crate::properties::RelationRegistry;
use crate::{Result, RuleError};

/// An argument of an atom: a variable or a constant symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermArg {
    /// A variable (uppercase initial in the textual syntax).
    Var(String),
    /// A constant symbol.
    Const(String),
}

impl fmt::Display for TermArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermArg::Var(v) => write!(f, "{v}"),
            TermArg::Const(c) => {
                // Quote anything that would confuse the Datalog reader:
                // uppercase initials (read as variables), '.' (clause
                // terminator), and structural characters.
                let needs_quoting = c.chars().next().map(|ch| ch.is_uppercase()).unwrap_or(true)
                    || c.contains(|ch: char| {
                        ch.is_whitespace()
                            || matches!(ch, '(' | ')' | ',' | '.' | ':' | '"' | '%' | '#')
                    });
                if needs_quoting {
                    write!(f, "\"{c}\"")
                } else {
                    write!(f, "{c}")
                }
            }
        }
    }
}

/// A predicate applied to arguments, e.g. `subclass(X, vehicle)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Arguments.
    pub args: Vec<TermArg>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: &str, args: Vec<TermArg>) -> Self {
        Atom { pred: pred.to_string(), args }
    }

    /// Binary atom over two variables — the common ontology case.
    pub fn vars2(pred: &str, a: &str, b: &str) -> Self {
        Atom::new(pred, vec![TermArg::Var(a.into()), TermArg::Var(b.into())])
    }

    /// Binary atom over two constants (a ground fact).
    pub fn consts2(pred: &str, a: &str, b: &str) -> Self {
        Atom::new(pred, vec![TermArg::Const(a.into()), TermArg::Const(b.into())])
    }

    /// True if no argument is a variable.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|a| matches!(a, TermArg::Const(_)))
    }

    /// Variables appearing in this atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|a| match a {
            TermArg::Var(v) => Some(v.as_str()),
            TermArg::Const(_) => None,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A definite Horn clause `head :- body`. An empty body makes the head a
/// ground fact (it must then be ground to be safe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HornClause {
    /// Derived atom.
    pub head: Atom,
    /// Conditions, conjunctive.
    pub body: Vec<Atom>,
}

impl HornClause {
    /// Builds a clause.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        HornClause { head, body }
    }

    /// A clause is *safe* when every head variable occurs in the body —
    /// the standard Datalog range-restriction that keeps forward
    /// chaining finite.
    pub fn is_safe(&self) -> bool {
        self.head.variables().all(|v| self.body.iter().any(|a| a.variables().any(|bv| bv == v)))
    }
}

impl fmt::Display for HornClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

/// An ordered set of Horn clauses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HornProgram {
    /// The clauses.
    pub clauses: Vec<HornClause>,
}

impl HornProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a clause after checking safety.
    pub fn push(&mut self, clause: HornClause) -> Result<()> {
        if !clause.is_safe() {
            return Err(RuleError::UnsafeClause(clause.to_string()));
        }
        if !self.clauses.contains(&clause) {
            self.clauses.push(clause);
        }
        Ok(())
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True if no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Parses a Datalog-like program (clauses end with `.`, `%` or `#`
    /// start comments).
    pub fn parse(input: &str) -> Result<Self> {
        let mut prog = HornProgram::new();
        // strip comments line-wise, keep text joined so clauses can span lines
        let mut text = String::new();
        for line in input.lines() {
            let line = match line.find(['%', '#']) {
                Some(i) => &line[..i],
                None => line,
            };
            text.push_str(line);
            text.push('\n');
        }
        for (i, clause_src) in split_clauses(&text).into_iter().enumerate() {
            let src = clause_src.trim();
            if src.is_empty() {
                continue;
            }
            let clause = parse_clause(src, i + 1)?;
            prog.push(clause)?;
        }
        Ok(prog)
    }

    /// The standard ONION program for a relation registry: transitivity,
    /// symmetry and inverse clauses for every declared relation, plus the
    /// semantic-implication interactions (a subclass edge semantically
    /// implies; SI composes transitively with subclass).
    pub fn standard(registry: &RelationRegistry) -> HornProgram {
        let mut prog = HornProgram::new();
        for (name, props) in registry.iter() {
            let p = pred_name(name);
            if props.transitive {
                prog.push(HornClause::new(
                    Atom::vars2(&p, "X", "Z"),
                    vec![Atom::vars2(&p, "X", "Y"), Atom::vars2(&p, "Y", "Z")],
                ))
                .expect("safe");
            }
            if props.symmetric {
                prog.push(HornClause::new(
                    Atom::vars2(&p, "Y", "X"),
                    vec![Atom::vars2(&p, "X", "Y")],
                ))
                .expect("safe");
            }
            if let Some(inv) = &props.inverse_of {
                let q = pred_name(inv);
                prog.push(HornClause::new(
                    Atom::vars2(&q, "Y", "X"),
                    vec![Atom::vars2(&p, "X", "Y")],
                ))
                .expect("safe");
                prog.push(HornClause::new(
                    Atom::vars2(&p, "Y", "X"),
                    vec![Atom::vars2(&q, "X", "Y")],
                ))
                .expect("safe");
            }
            if props.implies_semantic {
                prog.push(HornClause::new(
                    Atom::vars2("si", "X", "Y"),
                    vec![Atom::vars2(&p, "X", "Y")],
                ))
                .expect("safe");
            }
        }
        prog
    }
}

/// Canonical predicate name for a relation label (`SubclassOf` →
/// `subclassof`).
pub fn pred_name(relation: &str) -> String {
    relation.to_lowercase()
}

fn parse_clause(src: &str, clauseno: usize) -> Result<HornClause> {
    let (head_src, body_src) = match src.find(":-") {
        Some(i) => (&src[..i], Some(&src[i + 2..])),
        None => (src, None),
    };
    let head = parse_atom(head_src.trim(), clauseno)?;
    let mut body = Vec::new();
    if let Some(bs) = body_src {
        for atom_src in split_atoms(bs) {
            let atom_src = atom_src.trim();
            if atom_src.is_empty() {
                return Err(RuleError::Parse {
                    line: clauseno,
                    msg: "empty atom in clause body".into(),
                });
            }
            body.push(parse_atom(atom_src, clauseno)?);
        }
    }
    Ok(HornClause::new(head, body))
}

/// Splits a program on `.` terminators outside quoted strings (constants
/// such as `"carrier.Car"` contain dots).
fn split_clauses(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut in_quote = false;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '.' if !in_quote => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Splits on commas at paren depth zero (commas also appear inside atoms).
fn split_atoms(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut in_quote = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quote = !in_quote,
            '(' if !in_quote => depth += 1,
            ')' if !in_quote => depth -= 1,
            ',' if depth == 0 && !in_quote => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_atom(src: &str, clauseno: usize) -> Result<Atom> {
    let err = |msg: String| RuleError::Parse { line: clauseno, msg };
    let open = src.find('(').ok_or_else(|| err(format!("atom {src:?} missing '('")))?;
    if !src.ends_with(')') {
        return Err(err(format!("atom {src:?} missing ')'")));
    }
    let pred = src[..open].trim();
    if pred.is_empty() || !pred.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(format!("bad predicate name {pred:?}")));
    }
    let args_src = &src[open + 1..src.len() - 1];
    let mut args = Vec::new();
    for raw in split_atoms(args_src) {
        let a = raw.trim();
        if a.is_empty() {
            return Err(err(format!("empty argument in {src:?}")));
        }
        if let Some(stripped) = a.strip_prefix('"') {
            let inner = stripped
                .strip_suffix('"')
                .ok_or_else(|| err(format!("unterminated quote in {a:?}")))?;
            args.push(TermArg::Const(inner.to_string()));
        } else if a.chars().next().expect("non-empty").is_uppercase() {
            args.push(TermArg::Var(a.to_string()));
        } else {
            args.push(TermArg::Const(a.to_string()));
        }
    }
    if args.is_empty() {
        return Err(err(format!("atom {src:?} has no arguments")));
    }
    Ok(Atom::new(pred, args))
}

/// Lowers articulation rules to Horn facts/clauses over the `si`
/// predicate ("semantically implies"):
///
/// * simple implication `a.X ⇒ b.Y` → fact `si("a.X", "b.Y")`;
/// * cascaded chains emit a fact per adjacent pair;
/// * conjunction `(p ∧ q) ⇒ r` → `si(synth, r)` facts plus
///   `si(synth, p)`, `si(synth, q)` (the synthesised intersection class
///   is a specialisation of each conjunct, §4.1);
/// * disjunction `p ⇒ (q ∨ r)` → `si(q, synth)`, `si(r, synth)`,
///   `si(p, synth)` (the synthesised union class generalises each
///   disjunct, §4.1);
/// * functional rules contribute no `si` facts (value conversion, not
///   class implication).
///
/// Returns ground facts; combine with [`HornProgram::standard`] (which
/// adds `si` transitivity) for inference.
pub fn lower_rules(rules: &[ArticulationRule]) -> Vec<Atom> {
    let mut facts = Vec::new();
    let mut emit = |a: String, b: String| {
        let f = Atom::consts2("si", &a, &b);
        if !facts.contains(&f) {
            facts.push(f);
        }
    };
    for rule in rules {
        if let ArticulationRule::Implication { chain } = rule {
            for pair in chain.windows(2) {
                lower_pair(&pair[0], &pair[1], &mut emit);
            }
        }
    }
    facts
}

/// Interned variant of [`lower_rules`]: emits the same `si` fact pairs
/// as [`AtomId`]s through `atoms` — rule terms are interned from their
/// parts, so no `"onto.Term"` string is joined per fact. The pairs
/// resolve to exactly the constants [`lower_rules`] would print (the
/// `inference_props` suite pins the two paths against each other).
pub fn lower_rules_interned(
    atoms: &mut AtomTable,
    rules: &[ArticulationRule],
) -> Vec<(AtomId, AtomId)> {
    let mut facts: Vec<(AtomId, AtomId)> = Vec::new();
    let mut emit = |a: AtomId, b: AtomId| {
        if !facts.contains(&(a, b)) {
            facts.push((a, b));
        }
    };
    for rule in rules {
        if let ArticulationRule::Implication { chain } = rule {
            for pair in chain.windows(2) {
                lower_pair_interned(atoms, &pair[0], &pair[1], &mut emit);
            }
        }
    }
    facts
}

fn expr_atom(atoms: &mut AtomTable, e: &RuleExpr) -> AtomId {
    match e {
        RuleExpr::Term(t) => atoms.intern_term(t),
        _ => atoms.intern_parts(Some("synth"), &e.default_label()),
    }
}

fn lower_pair_interned(
    atoms: &mut AtomTable,
    lhs: &RuleExpr,
    rhs: &RuleExpr,
    emit: &mut impl FnMut(AtomId, AtomId),
) {
    let l = expr_atom(atoms, lhs);
    let r = expr_atom(atoms, rhs);
    emit(l, r);
    if let RuleExpr::And(xs) = lhs {
        // the synthesised intersection class specialises each conjunct
        for x in xs {
            let xa = expr_atom(atoms, x);
            emit(l, xa);
        }
    }
    if let RuleExpr::Or(xs) = rhs {
        // each disjunct specialises the synthesised union class
        for x in xs {
            let xa = expr_atom(atoms, x);
            emit(xa, r);
        }
    }
    // nested structure on the off sides
    if let RuleExpr::Or(xs) = lhs {
        for x in xs {
            let xa = expr_atom(atoms, x);
            emit(xa, l);
        }
    }
    if let RuleExpr::And(xs) = rhs {
        for x in xs {
            let xa = expr_atom(atoms, x);
            emit(r, xa);
        }
    }
}

fn expr_key(e: &RuleExpr) -> String {
    match e {
        RuleExpr::Term(t) => t.to_string(),
        _ => format!("synth.{}", e.default_label()),
    }
}

fn lower_pair(lhs: &RuleExpr, rhs: &RuleExpr, emit: &mut impl FnMut(String, String)) {
    let l = expr_key(lhs);
    let r = expr_key(rhs);
    emit(l.clone(), r.clone());
    if let RuleExpr::And(xs) = lhs {
        // the synthesised intersection class specialises each conjunct
        for x in xs {
            emit(l.clone(), expr_key(x));
        }
    }
    if let RuleExpr::Or(xs) = rhs {
        // each disjunct specialises the synthesised union class
        for x in xs {
            emit(expr_key(x), r.clone());
        }
    }
    // nested structure on the off sides
    if let RuleExpr::Or(xs) = lhs {
        for x in xs {
            emit(expr_key(x), l.clone());
        }
    }
    if let RuleExpr::And(xs) = rhs {
        for x in xs {
            emit(r.clone(), expr_key(x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use crate::parser::parse_rule;

    #[test]
    fn atom_display_and_ground() {
        let a = Atom::consts2("si", "carrier.Car", "factory.Vehicle");
        assert!(a.is_ground());
        assert_eq!(a.to_string(), "si(\"carrier.Car\", \"factory.Vehicle\")");
        let v = Atom::vars2("subclass", "X", "Y");
        assert!(!v.is_ground());
        assert_eq!(v.to_string(), "subclass(X, Y)");
    }

    #[test]
    fn safety_check() {
        let safe = HornClause::new(
            Atom::vars2("p", "X", "Z"),
            vec![Atom::vars2("p", "X", "Y"), Atom::vars2("p", "Y", "Z")],
        );
        assert!(safe.is_safe());
        let unsafe_clause =
            HornClause::new(Atom::vars2("p", "X", "W"), vec![Atom::vars2("p", "X", "Y")]);
        assert!(!unsafe_clause.is_safe());
        let mut prog = HornProgram::new();
        assert!(prog.push(unsafe_clause).is_err());
        assert!(prog.push(safe).is_ok());
    }

    #[test]
    fn ground_fact_clause_is_safe() {
        let fact = HornClause::new(Atom::consts2("si", "a", "b"), vec![]);
        assert!(fact.is_safe());
    }

    #[test]
    fn parse_program() {
        let src = r#"
% transitivity
subclass(X, Z) :- subclass(X, Y), subclass(Y, Z).
si(X, Y) :- subclass(X, Y).   # subclass implies SI
subclass("carrier.Car", "carrier.Vehicle").
"#;
        let prog = HornProgram::parse(src).unwrap();
        assert_eq!(prog.len(), 3);
        assert!(prog.clauses[2].body.is_empty());
        assert!(prog.clauses[2].head.is_ground());
    }

    #[test]
    fn parse_distinguishes_vars_and_consts() {
        let prog = HornProgram::parse("p(X, car) :- q(X, \"My Car\").").unwrap();
        let c = &prog.clauses[0];
        assert_eq!(c.head.args[0], TermArg::Var("X".into()));
        assert_eq!(c.head.args[1], TermArg::Const("car".into()));
        assert_eq!(c.body[0].args[1], TermArg::Const("My Car".into()));
    }

    #[test]
    fn parse_errors() {
        for bad in ["p(X :- q(X)", "p() :- q(a)", ":- q(a)", "p(X) :- ", "(X)"] {
            assert!(HornProgram::parse(&format!("{bad}.")).is_err(), "{bad:?} should fail");
        }
        // unsafe clause rejected at parse
        assert!(HornProgram::parse("p(X, W) :- q(X, Y).").is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "subclass(X, Z) :- subclass(X, Y), subclass(Y, Z).";
        let prog = HornProgram::parse(src).unwrap();
        let printed = prog.clauses[0].to_string();
        let again = HornProgram::parse(&printed).unwrap();
        assert_eq!(prog, again);
    }

    #[test]
    fn standard_program_covers_properties() {
        let reg = RelationRegistry::onion_default();
        let prog = HornProgram::standard(&reg);
        // transitivity of subclassof present
        assert!(prog.clauses.iter().any(|c| { c.head.pred == "subclassof" && c.body.len() == 2 }));
        // subclass implies si
        assert!(prog
            .clauses
            .iter()
            .any(|c| c.head.pred == "si" && c.body.len() == 1 && c.body[0].pred == "subclassof"));
    }

    #[test]
    fn lower_simple_and_cascade() {
        let r1 = parse_rule("carrier.Car => factory.Vehicle").unwrap();
        let facts = lower_rules(&[r1]);
        assert_eq!(facts, vec![Atom::consts2("si", "carrier.Car", "factory.Vehicle")]);

        let r2 = parse_rule("carrier.Car => transport.PassengerCar => factory.Vehicle").unwrap();
        let facts = lower_rules(&[r2]);
        assert_eq!(facts.len(), 2);
        assert!(facts.contains(&Atom::consts2("si", "carrier.Car", "transport.PassengerCar")));
        assert!(facts.contains(&Atom::consts2("si", "transport.PassengerCar", "factory.Vehicle")));
    }

    #[test]
    fn lower_conjunction_links_synth_to_conjuncts() {
        let r = parse_rule("(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks").unwrap();
        let facts = lower_rules(&[r]);
        let synth = "synth.CargoCarrierVehicle";
        assert!(facts.contains(&Atom::consts2("si", synth, "carrier.Trucks")));
        assert!(facts.contains(&Atom::consts2("si", synth, "factory.CargoCarrier")));
        assert!(facts.contains(&Atom::consts2("si", synth, "factory.Vehicle")));
        assert_eq!(facts.len(), 3);
    }

    #[test]
    fn lower_disjunction_links_disjuncts_to_synth() {
        let r = parse_rule("factory.Vehicle => (carrier.Cars | carrier.Trucks)").unwrap();
        let facts = lower_rules(&[r]);
        let synth = "synth.CarsTrucks";
        assert!(facts.contains(&Atom::consts2("si", "factory.Vehicle", synth)));
        assert!(facts.contains(&Atom::consts2("si", "carrier.Cars", synth)));
        assert!(facts.contains(&Atom::consts2("si", "carrier.Trucks", synth)));
        assert_eq!(facts.len(), 3);
    }

    #[test]
    fn lower_functional_contributes_nothing() {
        let r = parse_rule("F(): a.X => b.Y").unwrap();
        assert!(lower_rules(&[r]).is_empty());
    }

    #[test]
    fn lower_interned_matches_string_lowering() {
        let rules: Vec<ArticulationRule> = [
            "carrier.Car => factory.Vehicle",
            "carrier.Car => transport.PassengerCar => factory.Vehicle",
            "(factory.CargoCarrier & factory.Vehicle) => carrier.Trucks",
            "factory.Vehicle => (carrier.Cars | carrier.Trucks)",
            "F(): a.X => b.Y",
        ]
        .iter()
        .map(|s| parse_rule(s).unwrap())
        .collect();
        let expected: Vec<(String, String)> = lower_rules(&rules)
            .iter()
            .map(|a| (a.args[0].clone(), a.args[1].clone()))
            .map(|(a, b)| match (a, b) {
                (TermArg::Const(a), TermArg::Const(b)) => (a, b),
                _ => unreachable!("lowered facts are ground"),
            })
            .collect();
        let mut atoms = AtomTable::new();
        let got: Vec<(String, String)> = lower_rules_interned(&mut atoms, &rules)
            .into_iter()
            .map(|(a, b)| (atoms.resolve(a).to_string(), atoms.resolve(b).to_string()))
            .collect();
        assert_eq!(got, expected, "same pairs in the same order");
    }

    #[test]
    fn lower_dedups_across_rules() {
        let r = parse_rule("a.X => b.Y").unwrap();
        let facts = lower_rules(&[r.clone(), r]);
        assert_eq!(facts.len(), 1);
        let _ = Term::unqualified("x"); // keep Term import used
    }
}
