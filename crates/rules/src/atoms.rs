//! Interned atom symbols for the inference engine.
//!
//! The paper's Horn facts range over qualified ontology terms
//! (`carrier.Car`) plus predicate names and synthesised constants. The
//! original engine keyed its fact base by strings, so seeding from a
//! graph built a `"onto.Term"` string per endpoint per fact — the last
//! alloc-heavy seam after every other layer moved to
//! `(onto-idx, label-id)` keys. [`AtomTable`] closes it: every symbol is
//! a dense [`AtomId`] over a `(namespace, name)` key, and
//! [`AtomTable::graph_atoms`] memoises a graph's `LabelId → AtomId`
//! mapping so re-seeding from the same graph is an array lookup — no
//! string is formatted or hashed per fact.
//!
//! Design points:
//!
//! * **One symbol space.** Predicates, constants and graph terms share
//!   one id space, exactly like the string engine shared one interner.
//! * **String round-trip.** `intern("carrier.Car")` splits on the first
//!   `.` into `(namespace, name)`, so a string-interned symbol and the
//!   same term interned from a graph node resolve to the *same*
//!   [`AtomId`]. The split is bijective (rejoining with `.` restores the
//!   original string), so string equality and atom equality coincide.
//! * **Lazy display text.** Qualified symbols materialise their
//!   `"onto.Term"` form on first [`AtomTable::resolve`] (behind a
//!   `OnceLock`, so the view API stays `&self`); a table that is only
//!   ever seeded and queried by id never builds the string at all.
//! * **Graph memos survive reuse.** Memos are keyed by
//!   [`onion_graph::OntGraph::graph_id`], and a graph's interner is
//!   append-only, so a shared table (see `OnionSystem`) keeps its memos
//!   valid across repeated articulation/maintenance cycles; clones and
//!   compacted graphs get fresh ids and therefore fresh memos.

use std::fmt;
use std::sync::OnceLock;

use onion_graph::hash::FxHashMap;
use onion_graph::{LabelId, NodeId, OntGraph};

use crate::ast::Term;

/// Sentinel namespace index for unqualified symbols.
const NO_NS: u32 = u32::MAX;

/// Compact identifier for an interned atom symbol.
///
/// Ids are dense from zero and valid only for the [`AtomTable`] that
/// produced them. Predicates and constants share the space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(u32);

impl AtomId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index. Crate-internal: callers must
    /// only pass indexes obtained from a live table.
    #[inline]
    pub(crate) fn from_index(i: usize) -> AtomId {
        AtomId(i as u32)
    }
}

impl fmt::Debug for AtomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// The shared symbol table mapping strings and graph terms to
/// [`AtomId`]s (see the module docs for the design).
#[derive(Default, Clone)]
pub struct AtomTable {
    /// Namespace (ontology) strings, dense.
    ns: Vec<Box<str>>,
    ns_ids: FxHashMap<Box<str>, u32>,
    /// Local-name strings, dense, shared by all namespaces.
    names: Vec<Box<str>>,
    name_ids: FxHashMap<Box<str>, u32>,
    /// Symbol store: `(namespace | NO_NS, name)` per atom.
    syms: Vec<(u32, u32)>,
    by_key: FxHashMap<(u32, u32), AtomId>,
    /// Lazily materialised `"ns.name"` display text, parallel to
    /// `syms`; unqualified symbols never populate their slot.
    text: Vec<OnceLock<Box<str>>>,
    /// namespace → `(graph_id the memo was built against,
    /// dense LabelId.index() → AtomId.0 + 1)` memo (0 = unmapped) used
    /// by [`AtomTable::graph_atoms`]. One memo per namespace: a fresh
    /// graph identity under the same name (clone, compaction, a
    /// regenerated articulation ontology) *replaces* the stale memo
    /// instead of leaking beside it, so a long-lived shared table stays
    /// bounded by the number of distinct ontology names.
    graph_memos: FxHashMap<u32, (u64, Vec<u32>)>,
}

impl fmt::Debug for AtomTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomTable")
            .field("atoms", &self.syms.len())
            .field("namespaces", &self.ns.len())
            .field("names", &self.names.len())
            .field("graph_memos", &self.graph_memos.len())
            .finish()
    }
}

impl AtomTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct atoms interned.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Interns a namespace (ontology name), returning its dense index.
    pub fn namespace(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ns_ids.get(name) {
            return id;
        }
        let id = self.ns.len() as u32;
        let boxed: Box<str> = name.into();
        self.ns.push(boxed.clone());
        self.ns_ids.insert(boxed, id);
        id
    }

    /// Looks up a namespace index without interning.
    pub fn namespace_lookup(&self, name: &str) -> Option<u32> {
        self.ns_ids.get(name).copied()
    }

    /// Resolves a namespace index to its name.
    pub fn namespace_name(&self, ns: u32) -> Option<&str> {
        self.ns.get(ns as usize).map(AsRef::as_ref)
    }

    fn name_intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(s) {
            return id;
        }
        let id = self.names.len() as u32;
        let boxed: Box<str> = s.into();
        self.names.push(boxed.clone());
        self.name_ids.insert(boxed, id);
        id
    }

    fn intern_key(&mut self, ns: u32, name: u32) -> AtomId {
        if let Some(&id) = self.by_key.get(&(ns, name)) {
            return id;
        }
        let id = AtomId(self.syms.len() as u32);
        self.syms.push((ns, name));
        self.text.push(OnceLock::new());
        self.by_key.insert((ns, name), id);
        id
    }

    /// Interns a symbol from its textual form, splitting `"ns.name"` on
    /// the first `.` (no dot → unqualified).
    pub fn intern(&mut self, s: &str) -> AtomId {
        self.intern_parts(None, s)
    }

    /// Interns a symbol from namespace/name parts — the path rule terms
    /// take (for dot-free namespaces, no `"ns.name"` string is ever
    /// built).
    ///
    /// Parts are **canonicalised** so every spelling of the same text
    /// lands on the same atom: the canonical namespace is everything
    /// before the *first* `.` of the full `ns.name` text. A dotted
    /// ontology name (`("acme.v2", "Car")`) therefore keys as
    /// `("acme", "v2.Car")` — exactly where `intern("acme.v2.Car")`
    /// lands — preserving the string engine's whole-string equality.
    pub fn intern_parts(&mut self, ns: Option<&str>, name: &str) -> AtomId {
        match ns {
            None => match name.split_once('.') {
                Some((head, tail)) => self.intern_raw(Some(head), tail),
                None => self.intern_raw(None, name),
            },
            Some(o) => match o.split_once('.') {
                None => self.intern_raw(Some(o), name),
                Some((head, tail)) => {
                    // rare path: dotted ontology name — re-join so the
                    // canonical split matches the string form
                    let joined = format!("{tail}.{name}");
                    self.intern_raw(Some(head), &joined)
                }
            },
        }
    }

    fn intern_raw(&mut self, ns: Option<&str>, name: &str) -> AtomId {
        let ns = match ns {
            Some(o) => self.namespace(o),
            None => NO_NS,
        };
        let name = self.name_intern(name);
        self.intern_key(ns, name)
    }

    /// Interns a rule [`Term`] without joining its parts.
    pub fn intern_term(&mut self, term: &Term) -> AtomId {
        self.intern_parts(term.ontology.as_deref(), &term.name)
    }

    /// Looks up a symbol by textual form without interning.
    pub fn lookup(&self, s: &str) -> Option<AtomId> {
        self.lookup_parts(None, s)
    }

    /// Looks up by parts without interning (same canonicalisation as
    /// [`AtomTable::intern_parts`]).
    pub fn lookup_parts(&self, ns: Option<&str>, name: &str) -> Option<AtomId> {
        match ns {
            None => match name.split_once('.') {
                Some((head, tail)) => self.lookup_raw(Some(head), tail),
                None => self.lookup_raw(None, name),
            },
            Some(o) => match o.split_once('.') {
                None => self.lookup_raw(Some(o), name),
                Some((head, tail)) => {
                    let joined = format!("{tail}.{name}");
                    self.lookup_raw(Some(head), &joined)
                }
            },
        }
    }

    fn lookup_raw(&self, ns: Option<&str>, name: &str) -> Option<AtomId> {
        let ns = match ns {
            Some(o) => self.ns_ids.get(o).copied()?,
            None => NO_NS,
        };
        let name = self.name_ids.get(name).copied()?;
        self.by_key.get(&(ns, name)).copied()
    }

    /// Looks up a rule [`Term`] without interning or joining.
    pub fn lookup_term(&self, term: &Term) -> Option<AtomId> {
        self.lookup_parts(term.ontology.as_deref(), &term.name)
    }

    /// The namespace index of an atom (`None` for unqualified symbols).
    #[inline]
    pub fn namespace_of(&self, id: AtomId) -> Option<u32> {
        let (ns, _) = self.syms[id.index()];
        (ns != NO_NS).then_some(ns)
    }

    /// The local name of an atom (the part after the namespace).
    pub fn name_of(&self, id: AtomId) -> &str {
        let (_, name) = self.syms[id.index()];
        &self.names[name as usize]
    }

    /// `(namespace, name)` string parts of an atom.
    pub fn parts(&self, id: AtomId) -> (Option<&str>, &str) {
        let (ns, name) = self.syms[id.index()];
        let ns = (ns != NO_NS).then(|| self.ns[ns as usize].as_ref());
        (ns, &self.names[name as usize])
    }

    /// The textual form of an atom: `"ns.name"` for qualified symbols
    /// (materialised on first call), the bare name otherwise.
    pub fn resolve(&self, id: AtomId) -> &str {
        let (ns, name) = self.syms[id.index()];
        if ns == NO_NS {
            return &self.names[name as usize];
        }
        self.text[id.index()]
            .get_or_init(|| {
                format!("{}.{}", self.ns[ns as usize], self.names[name as usize]).into_boxed_str()
            })
            .as_ref()
    }

    /// Folds every symbol of `other` into this table, returning a remap
    /// indexed by the *other* table's `AtomId::index()`.
    ///
    /// Symbols are interned in ascending `(namespace, name)` string
    /// order, so the ids a fold assigns to novel symbols depend only on
    /// the **set** of symbols in `other` — never on the order a
    /// partitioned run happened to intern them. This is the
    /// remap-at-fixpoint contract the shard-local engine relies on: any
    /// shard/thread schedule producing the same symbol set folds into a
    /// byte-identical canonical table. Symbols already present keep
    /// their existing ids (the fold is a no-op for them).
    pub fn merge_remap(&mut self, other: &AtomTable) -> Vec<AtomId> {
        let mut order: Vec<u32> = (0..other.syms.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| other.parts(AtomId(a)).cmp(&other.parts(AtomId(b))));
        let mut remap = vec![AtomId(0); other.syms.len()];
        for i in order {
            let (ns, name) = other.parts(AtomId(i));
            remap[i as usize] = self.intern_parts(ns, name);
        }
        remap
    }

    /// A cursor interning node labels of `g` under the graph's own name
    /// as namespace. The `LabelId → AtomId` memo is kept in the table
    /// across cursors — validated against [`OntGraph::graph_id`], so a
    /// fresh identity under the same name (clone, compaction, a
    /// regenerated graph) starts clean — and seeding the same graph
    /// again hits a dense array per fact: no hashing at all.
    pub fn graph_atoms<'t, 'g>(&'t mut self, g: &'g OntGraph) -> GraphAtoms<'t, 'g> {
        // canonical namespace split for dotted graph names (see
        // `intern_parts`): "acme.v2" → namespace "acme", every label
        // prefixed "v2."
        let (ns, dotted_prefix) = match g.name().split_once('.') {
            Some((head, tail)) => (self.namespace(head), Some(format!("{tail}."))),
            None => (self.namespace(g.name()), None),
        };
        let graph_id = g.graph_id();
        let memo = match self.graph_memos.remove(&ns) {
            Some((id, memo)) if id == graph_id => memo,
            _ => Vec::new(), // no memo, or a stale graph identity
        };
        GraphAtoms { table: self, graph: g, ns, graph_id, dotted_prefix, memo }
    }
}

/// A borrowed interning cursor over one graph (see
/// [`AtomTable::graph_atoms`]). Dropping it returns the memo to the
/// table.
pub struct GraphAtoms<'t, 'g> {
    table: &'t mut AtomTable,
    graph: &'g OntGraph,
    ns: u32,
    graph_id: u64,
    /// `"tail."` of a dotted graph name, prefixed to every label so the
    /// canonical `(ns, name)` split matches the string path.
    dotted_prefix: Option<String>,
    /// `LabelId.index() → AtomId.0 + 1`; 0 = unmapped.
    memo: Vec<u32>,
}

impl GraphAtoms<'_, '_> {
    /// The atom for a node-label id of the cursor's graph.
    #[inline]
    pub fn atom(&mut self, label: LabelId) -> AtomId {
        let i = label.index();
        if let Some(&slot) = self.memo.get(i) {
            if slot != 0 {
                return AtomId(slot - 1);
            }
        }
        self.intern_slow(label)
    }

    /// The atom for a live node, `None` if `n` is deleted (its label is
    /// gone, so it contributes no facts).
    #[inline]
    pub fn node_atom(&mut self, n: NodeId) -> Option<AtomId> {
        self.graph.node_label_id(n).map(|l| self.atom(l))
    }

    #[cold]
    fn intern_slow(&mut self, label: LabelId) -> AtomId {
        let text = self.graph.interner().resolve(label);
        let name = match &self.dotted_prefix {
            Some(prefix) => {
                let joined = format!("{prefix}{text}");
                self.table.name_intern(&joined)
            }
            None => self.table.name_intern(text),
        };
        let id = self.table.intern_key(self.ns, name);
        let i = label.index();
        if self.memo.len() <= i {
            self.memo.resize(i + 1, 0);
        }
        self.memo[i] = id.0 + 1;
        id
    }
}

impl Drop for GraphAtoms<'_, '_> {
    fn drop(&mut self) {
        self.table.graph_memos.insert(self.ns, (self.graph_id, std::mem::take(&mut self.memo)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_and_parts_paths_agree() {
        let mut t = AtomTable::new();
        let a = t.intern("carrier.Car");
        let b = t.intern_parts(Some("carrier"), "Car");
        let c = t.intern_term(&Term::qualified("carrier", "Car"));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(t.resolve(a), "carrier.Car");
        assert_eq!(t.parts(a), (Some("carrier"), "Car"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unqualified_symbols_keep_their_text() {
        let mut t = AtomTable::new();
        let a = t.intern("vehicle");
        assert_eq!(t.resolve(a), "vehicle");
        assert_eq!(t.parts(a), (None, "vehicle"));
        assert_eq!(t.namespace_of(a), None);
        assert_eq!(t.intern_term(&Term::unqualified("vehicle")), a);
    }

    #[test]
    fn split_is_bijective_on_multi_dot_names() {
        let mut t = AtomTable::new();
        let a = t.intern("a.b.c");
        assert_eq!(t.parts(a), (Some("a"), "b.c"));
        assert_eq!(t.resolve(a), "a.b.c");
        assert_ne!(t.intern("a.b"), a);
        assert_ne!(t.intern("ab.c"), a);
    }

    #[test]
    fn lookup_never_interns() {
        let mut t = AtomTable::new();
        assert!(t.lookup("carrier.Car").is_none());
        assert!(t.lookup_term(&Term::qualified("carrier", "Car")).is_none());
        let a = t.intern("carrier.Car");
        assert_eq!(t.lookup("carrier.Car"), Some(a));
        assert_eq!(t.lookup_term(&Term::qualified("carrier", "Car")), Some(a));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn graph_atoms_match_string_interning() {
        let mut g = OntGraph::new("carrier");
        let car = g.ensure_node("Car").unwrap();
        let vehicle = g.ensure_node("Vehicle").unwrap();
        let mut t = AtomTable::new();
        let by_string = t.intern("carrier.Car");
        let (a, b) = {
            let mut cursor = t.graph_atoms(&g);
            (cursor.node_atom(car).unwrap(), cursor.node_atom(vehicle).unwrap())
        };
        assert_eq!(a, by_string, "graph path and string path intern the same atom");
        assert_eq!(t.resolve(b), "carrier.Vehicle");
    }

    #[test]
    fn graph_memo_survives_cursor_reuse() {
        let mut g = OntGraph::new("o");
        let n = g.ensure_node("X").unwrap();
        let mut t = AtomTable::new();
        let first = {
            let mut c = t.graph_atoms(&g);
            c.node_atom(n).unwrap()
        };
        let atoms_after_first = t.len();
        let second = {
            let mut c = t.graph_atoms(&g);
            c.node_atom(n).unwrap()
        };
        assert_eq!(first, second);
        assert_eq!(t.len(), atoms_after_first, "reuse interns nothing new");
        // a clone has a fresh graph identity: memo misses, atoms agree
        let g2 = g.clone();
        let third = {
            let mut c = t.graph_atoms(&g2);
            c.node_atom(n).unwrap()
        };
        assert_eq!(first, third, "same (ns, name) key regardless of graph identity");
    }

    #[test]
    fn dotted_namespace_names_canonicalise() {
        let mut t = AtomTable::new();
        // parts path with a dotted ontology name lands on the same atom
        // as the string path (whole-string equality, like the old
        // string-keyed engine)
        let by_parts = t.intern_parts(Some("acme.v2"), "Car");
        let by_string = t.intern("acme.v2.Car");
        let by_term = t.intern_term(&Term::qualified("acme.v2", "Car"));
        assert_eq!(by_parts, by_string);
        assert_eq!(by_parts, by_term);
        assert_eq!(t.resolve(by_parts), "acme.v2.Car");
        assert_eq!(t.lookup_parts(Some("acme.v2"), "Car"), Some(by_parts));
        assert_eq!(t.lookup_term(&Term::qualified("acme.v2", "Car")), Some(by_parts));
        // the graph path under a dotted graph name agrees too
        let mut g = OntGraph::new("acme.v2");
        let car = g.ensure_node("Car").unwrap();
        let from_graph = {
            let mut c = t.graph_atoms(&g);
            c.node_atom(car).unwrap()
        };
        assert_eq!(from_graph, by_parts);
        // unqualified parts with an embedded dot canonicalise as well
        assert_eq!(t.intern_parts(None, "a.b"), t.intern("a.b"));
    }

    #[test]
    fn graph_memos_bounded_per_namespace() {
        let mut t = AtomTable::new();
        // a fresh graph identity per cycle under the same name (the
        // repeated-articulation shape): the memo is replaced, not
        // leaked beside its predecessors
        for _ in 0..10 {
            let mut g = OntGraph::new("transport");
            let n = g.ensure_node("Vehicle").unwrap();
            let mut c = t.graph_atoms(&g);
            c.node_atom(n).unwrap();
        }
        let dbg = format!("{t:?}");
        assert!(dbg.contains("graph_memos: 1"), "one memo per namespace: {dbg}");
        assert_eq!(t.len(), 1, "one atom regardless of graph identity churn");
    }

    #[test]
    fn dead_nodes_yield_no_atom() {
        let mut g = OntGraph::new("o");
        let n = g.ensure_node("X").unwrap();
        g.delete_node(n).unwrap();
        let mut t = AtomTable::new();
        let mut c = t.graph_atoms(&g);
        assert!(c.node_atom(n).is_none());
    }

    #[test]
    fn merge_remap_is_order_insensitive() {
        // two tables interning the same symbol set in different orders
        let mut fwd = AtomTable::new();
        let mut rev = AtomTable::new();
        let symbols = ["carrier.Car", "si", "factory.Vehicle", "a.b.c", "zeta"];
        for s in symbols {
            fwd.intern(s);
        }
        for s in symbols.iter().rev() {
            rev.intern(s);
        }
        // folding either into the same canonical prefix yields the same
        // canonical table (ids assigned in ascending (ns, name) order)
        let mut canon_a = AtomTable::new();
        canon_a.intern("si");
        let mut canon_b = canon_a.clone();
        let remap_fwd = canon_a.merge_remap(&fwd);
        let remap_rev = canon_b.merge_remap(&rev);
        assert_eq!(canon_a.len(), canon_b.len());
        for i in 0..canon_a.len() {
            assert_eq!(
                canon_a.resolve(AtomId(i as u32)),
                canon_b.resolve(AtomId(i as u32)),
                "canonical tables diverge at {i}"
            );
        }
        // remaps translate faithfully: other's text == canonical text
        for s in symbols {
            assert_eq!(canon_a.resolve(remap_fwd[fwd.lookup(s).unwrap().index()]), s);
            assert_eq!(canon_b.resolve(remap_rev[rev.lookup(s).unwrap().index()]), s);
        }
    }

    #[test]
    fn debug_is_compact() {
        let mut t = AtomTable::new();
        t.intern("a.b");
        let s = format!("{t:?}");
        assert!(s.contains("atoms: 1"), "{s}");
    }
}
