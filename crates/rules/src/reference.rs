//! The **frozen pre-refactor string-keyed engine**, kept verbatim as a
//! differential baseline.
//!
//! When the production engine ([`crate::infer`]) moved from string atoms
//! to interned [`crate::atoms::AtomId`]s, this module preserved the old
//! implementation: a [`FactBase`] that interns `&str` symbols into a
//! private symbol space and the identical semi-naive / naive /
//! full-closure evaluator over them. Two consumers depend on it staying
//! byte-for-byte equivalent in behaviour:
//!
//! * the `inference_props` differential property test runs random Horn
//!   programs through both engines and asserts the derived fact sets
//!   *and* [`InferenceStats`] counters are identical;
//! * bench **B12** records the string-keyed seeded-build series as the
//!   baseline the interned path is compared against.
//!
//! Do not "improve" this module; it is a measuring stick.

use std::collections::{HashMap, HashSet};

use crate::horn::{Atom, HornClause, HornProgram, TermArg};
use crate::infer::{InferenceStats, Strategy};
use crate::{Result, RuleError};

/// A ground fact: interned predicate and argument symbols.
type Fact = (u32, Vec<u32>);

/// The string-keyed fact base of the pre-refactor engine.
#[derive(Debug, Default, Clone)]
pub struct FactBase {
    syms: Vec<Box<str>>,
    sym_ids: HashMap<Box<str>, u32>,
    facts: HashSet<Fact>,
    /// pred → list of argument tuples (insertion order)
    by_pred: HashMap<u32, Vec<Vec<u32>>>,
    /// (pred, position, symbol) → indexes into `by_pred[pred]`
    index: HashMap<(u32, u8, u32), Vec<u32>>,
}

impl FactBase {
    /// Empty fact base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a symbol (predicates and constants share one space).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.sym_ids.get(s) {
            return id;
        }
        let id = self.syms.len() as u32;
        let boxed: Box<str> = s.into();
        self.syms.push(boxed.clone());
        self.sym_ids.insert(boxed, id);
        id
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.sym_ids.get(s).copied()
    }

    /// Resolves a symbol id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.syms[id as usize]
    }

    /// Adds a fact by strings; returns true if new.
    pub fn add(&mut self, pred: &str, args: &[&str]) -> bool {
        let p = self.intern(pred);
        let a: Vec<u32> = args.iter().map(|s| self.intern(s)).collect();
        self.add_ids(p, a)
    }

    /// Adds a ground [`Atom`]; returns true if new. Panics if not ground.
    pub fn add_atom(&mut self, atom: &Atom) -> bool {
        assert!(atom.is_ground(), "add_atom requires a ground atom");
        let p = self.intern(&atom.pred);
        let args: Vec<u32> = atom
            .args
            .iter()
            .map(|a| match a {
                TermArg::Const(c) => self.intern(c),
                TermArg::Var(_) => unreachable!("ground checked"),
            })
            .collect();
        self.add_ids(p, args)
    }

    fn add_ids(&mut self, pred: u32, args: Vec<u32>) -> bool {
        let fact = (pred, args);
        if self.facts.contains(&fact) {
            return false;
        }
        let (pred, args) = fact.clone();
        let list = self.by_pred.entry(pred).or_default();
        let pos = list.len() as u32;
        for (i, &sym) in args.iter().enumerate() {
            self.index.entry((pred, i as u8, sym)).or_default().push(pos);
        }
        list.push(args);
        self.facts.insert(fact);
        true
    }

    /// Membership test by strings.
    pub fn contains(&self, pred: &str, args: &[&str]) -> bool {
        let Some(p) = self.lookup(pred) else { return false };
        let mut ids = Vec::with_capacity(args.len());
        for s in args {
            match self.lookup(s) {
                Some(id) => ids.push(id),
                None => return false,
            }
        }
        self.facts.contains(&(p, ids))
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All facts of a predicate, resolved to strings.
    pub fn facts_of(&self, pred: &str) -> Vec<Vec<&str>> {
        let Some(p) = self.lookup(pred) else { return Vec::new() };
        self.by_pred
            .get(&p)
            .map(|list| {
                list.iter().map(|args| args.iter().map(|&a| self.resolve(a)).collect()).collect()
            })
            .unwrap_or_default()
    }

    /// Binary-predicate query with optional argument constraints.
    pub fn query2(&self, pred: &str, a: Option<&str>, b: Option<&str>) -> Vec<(&str, &str)> {
        let Some(p) = self.lookup(pred) else { return Vec::new() };
        let a_id = a.map(|s| self.lookup(s));
        let b_id = b.map(|s| self.lookup(s));
        if matches!(a_id, Some(None)) || matches!(b_id, Some(None)) {
            return Vec::new(); // constrained to an unknown symbol
        }
        let list = match self.by_pred.get(&p) {
            Some(l) => l,
            None => return Vec::new(),
        };
        list.iter()
            .filter(|args| args.len() == 2)
            .filter(|args| a_id.flatten().map(|x| args[0] == x).unwrap_or(true))
            .filter(|args| b_id.flatten().map(|x| args[1] == x).unwrap_or(true))
            .map(|args| (self.resolve(args[0]), self.resolve(args[1])))
            .collect()
    }
}

/// Compiled clause: variables resolved to dense slots.
#[derive(Debug, Clone)]
struct CClause {
    head_pred: u32,
    head_args: Vec<CArg>,
    body: Vec<CAtom>,
    nvars: usize,
}

#[derive(Debug, Clone)]
struct CAtom {
    pred: u32,
    args: Vec<CArg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CArg {
    Slot(usize),
    Const(u32),
}

/// The pre-refactor forward-chaining engine over [`FactBase`].
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    program: HornProgram,
    strategy: Strategy,
    /// Abort once this many facts have been derived (0 = unlimited).
    pub max_derived: usize,
    /// Abort after this many rounds (0 = unlimited).
    pub max_iterations: usize,
}

impl InferenceEngine {
    /// Engine with the production strategy (semi-naive).
    pub fn new(program: HornProgram) -> Self {
        InferenceEngine {
            program,
            strategy: Strategy::SemiNaive,
            max_derived: 0,
            max_iterations: 0,
        }
    }

    /// Selects a strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the derivation budget.
    pub fn with_budget(mut self, max_derived: usize, max_iterations: usize) -> Self {
        self.max_derived = max_derived;
        self.max_iterations = max_iterations;
        self
    }

    fn compile(&self, fb: &mut FactBase) -> Result<Vec<CClause>> {
        let mut out = Vec::with_capacity(self.program.clauses.len());
        for clause in &self.program.clauses {
            out.push(compile_clause(clause, fb)?);
        }
        Ok(out)
    }

    /// Runs the program to fixpoint on `fb`, adding derived facts.
    pub fn run(&self, fb: &mut FactBase) -> Result<InferenceStats> {
        let clauses = self.compile(fb)?;
        // Ground-fact clauses fire once up front.
        let mut stats = InferenceStats::default();
        let mut delta: Vec<Fact> = Vec::new();
        for c in &clauses {
            if c.body.is_empty() {
                let args: Vec<u32> = c
                    .head_args
                    .iter()
                    .map(|a| match a {
                        CArg::Const(s) => *s,
                        CArg::Slot(_) => unreachable!("safety: ground head"),
                    })
                    .collect();
                if fb.add_ids(c.head_pred, args.clone()) {
                    stats.derived += 1;
                    delta.push((c.head_pred, args));
                }
            }
        }
        // Seed delta with everything for semi-naive round one.
        if self.strategy == Strategy::SemiNaive {
            delta = fb
                .by_pred
                .iter()
                .flat_map(|(&p, list)| list.iter().map(move |a| (p, a.clone())))
                .collect();
        }

        loop {
            stats.iterations += 1;
            if self.max_iterations != 0 && stats.iterations > self.max_iterations {
                return Err(RuleError::BudgetExceeded { derived: stats.derived });
            }
            // Round bookkeeping mirrors the interned engine exactly —
            // the one post-freeze addition, required because the
            // differential suite asserts InferenceStats equality
            // field-for-field (including `rounds`).
            let round_delta = match self.strategy {
                Strategy::SemiNaive => delta.len(),
                Strategy::Naive | Strategy::FullClosure => fb.len(),
            };
            let examined_before = stats.atoms_examined;
            let mut new_facts: Vec<Fact> = Vec::new();
            match self.strategy {
                Strategy::SemiNaive => {
                    let delta_set: HashSet<&Fact> = delta.iter().collect();
                    let dix = DeltaIndex::build(&delta);
                    for c in &clauses {
                        if c.body.is_empty() {
                            continue;
                        }
                        for d in 0..c.body.len() {
                            eval_clause(
                                fb,
                                c,
                                Some(DeltaView { index: &dix, set: &delta_set, position: d }),
                                false,
                                &mut new_facts,
                                &mut stats.atoms_examined,
                            );
                        }
                    }
                }
                Strategy::Naive | Strategy::FullClosure => {
                    let unindexed = self.strategy == Strategy::FullClosure;
                    for c in &clauses {
                        if c.body.is_empty() {
                            continue;
                        }
                        eval_clause(
                            fb,
                            c,
                            None,
                            unindexed,
                            &mut new_facts,
                            &mut stats.atoms_examined,
                        );
                    }
                }
            }
            let mut added: Vec<Fact> = Vec::new();
            for f in new_facts {
                if fb.add_ids(f.0, f.1.clone()) {
                    stats.derived += 1;
                    if self.max_derived != 0 && stats.derived > self.max_derived {
                        return Err(RuleError::BudgetExceeded { derived: stats.derived });
                    }
                    added.push(f);
                }
            }
            stats.rounds.push(crate::infer::RoundStats {
                delta: round_delta,
                derived: added.len(),
                examined: stats.atoms_examined - examined_before,
            });
            if added.is_empty() {
                break;
            }
            delta = added;
        }
        Ok(stats)
    }
}

fn compile_clause(clause: &HornClause, fb: &mut FactBase) -> Result<CClause> {
    if !clause.is_safe() {
        return Err(RuleError::UnsafeClause(clause.to_string()));
    }
    let mut slots: HashMap<&str, usize> = HashMap::new();
    let mut body = Vec::with_capacity(clause.body.len());
    for atom in &clause.body {
        let pred = fb.intern(&atom.pred);
        let mut args = Vec::with_capacity(atom.args.len());
        for a in &atom.args {
            match a {
                TermArg::Const(c) => args.push(CArg::Const(fb.intern(c))),
                TermArg::Var(v) => {
                    let n = slots.len();
                    let slot = *slots.entry(v.as_str()).or_insert(n);
                    args.push(CArg::Slot(slot));
                }
            }
        }
        body.push(CAtom { pred, args });
    }
    let head_pred = fb.intern(&clause.head.pred);
    let mut head_args = Vec::with_capacity(clause.head.args.len());
    for a in &clause.head.args {
        match a {
            TermArg::Const(c) => head_args.push(CArg::Const(fb.intern(c))),
            TermArg::Var(v) => {
                let slot = *slots.get(v.as_str()).expect("safety guarantees body binding");
                head_args.push(CArg::Slot(slot));
            }
        }
    }
    Ok(CClause { head_pred, head_args, nvars: slots.len(), body })
}

/// Per-round index over the delta facts (same symbol ids as the main
/// store).
struct DeltaIndex<'d> {
    facts: &'d [Fact],
    by_pred: HashMap<u32, Vec<u32>>,
    by_arg: HashMap<(u32, u8, u32), Vec<u32>>,
}

impl<'d> DeltaIndex<'d> {
    fn build(facts: &'d [Fact]) -> Self {
        let mut by_pred: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut by_arg: HashMap<(u32, u8, u32), Vec<u32>> = HashMap::new();
        for (i, (p, args)) in facts.iter().enumerate() {
            by_pred.entry(*p).or_default().push(i as u32);
            for (pos, &sym) in args.iter().enumerate() {
                by_arg.entry((*p, pos as u8, sym)).or_default().push(i as u32);
            }
        }
        DeltaIndex { facts, by_pred, by_arg }
    }

    fn candidates(&self, atom: &CAtom, env: &[Option<u32>]) -> Vec<&'d Vec<u32>> {
        let bound: Option<(u8, u32)> = atom.args.iter().enumerate().find_map(|(pos, a)| match a {
            CArg::Const(s) => Some((pos as u8, *s)),
            CArg::Slot(s) => env[*s].map(|v| (pos as u8, v)),
        });
        let idxs = match bound {
            Some((pos, sym)) => self.by_arg.get(&(atom.pred, pos, sym)),
            None => self.by_pred.get(&atom.pred),
        };
        idxs.map(|v| v.iter().map(|&i| &self.facts[i as usize].1).collect()).unwrap_or_default()
    }
}

struct DeltaView<'a, 'd> {
    index: &'a DeltaIndex<'d>,
    set: &'a HashSet<&'a Fact>,
    position: usize,
}

fn eval_clause(
    fb: &FactBase,
    c: &CClause,
    delta: Option<DeltaView<'_, '_>>,
    unindexed: bool,
    out: &mut Vec<Fact>,
    effort: &mut usize,
) {
    let mut env: Vec<Option<u32>> = vec![None; c.nvars];
    join(fb, c, 0, delta.as_ref(), unindexed, &mut env, out, effort);
}

#[allow(clippy::too_many_arguments)]
fn join(
    fb: &FactBase,
    c: &CClause,
    i: usize,
    delta: Option<&DeltaView<'_, '_>>,
    unindexed: bool,
    env: &mut Vec<Option<u32>>,
    out: &mut Vec<Fact>,
    effort: &mut usize,
) {
    if i == c.body.len() {
        let args: Vec<u32> = c
            .head_args
            .iter()
            .map(|a| match a {
                CArg::Const(s) => *s,
                CArg::Slot(s) => env[*s].expect("head slots bound (safety)"),
            })
            .collect();
        out.push((c.head_pred, args));
        return;
    }
    let atom = &c.body[i];

    let candidates: Vec<&Vec<u32>> = match delta {
        Some(dv) if dv.position == i => dv.index.candidates(atom, env),
        _ => {
            if unindexed {
                fb.by_pred
                    .iter()
                    .flat_map(|(&p, list)| list.iter().map(move |a| (p, a)))
                    .filter(|(p, _)| *p == atom.pred)
                    .map(|(_, a)| a)
                    .collect()
            } else {
                let bound: Option<(u8, u32)> =
                    atom.args.iter().enumerate().find_map(|(pos, a)| match a {
                        CArg::Const(s) => Some((pos as u8, *s)),
                        CArg::Slot(s) => env[*s].map(|v| (pos as u8, v)),
                    });
                match bound {
                    Some((pos, sym)) => {
                        let list = fb.by_pred.get(&atom.pred);
                        fb.index
                            .get(&(atom.pred, pos, sym))
                            .map(|idxs| {
                                let list = list.expect("index implies pred list");
                                idxs.iter().map(|&j| &list[j as usize]).collect()
                            })
                            .unwrap_or_default()
                    }
                    None => {
                        fb.by_pred.get(&atom.pred).map(|l| l.iter().collect()).unwrap_or_default()
                    }
                }
            }
        }
    };

    for fact_args in candidates {
        *effort += 1;
        if fact_args.len() != atom.args.len() {
            continue;
        }
        if let Some(dv) = delta {
            if i < dv.position {
                let probe: Fact = (atom.pred, fact_args.clone());
                if dv.set.contains(&probe) {
                    continue;
                }
            }
        }
        let mut trail: Vec<usize> = Vec::new();
        let mut ok = true;
        for (a, &v) in atom.args.iter().zip(fact_args.iter()) {
            match a {
                CArg::Const(s) => {
                    if *s != v {
                        ok = false;
                        break;
                    }
                }
                CArg::Slot(s) => match env[*s] {
                    Some(bound) => {
                        if bound != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*s] = Some(v);
                        trail.push(*s);
                    }
                },
            }
        }
        if ok {
            join(fb, c, i + 1, delta, unindexed, env, out, effort);
        }
        for s in trail {
            env[s] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horn::HornProgram;

    #[test]
    fn reference_engine_still_computes_closures() {
        let prog = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut fb = FactBase::new();
        for i in 0..8 {
            fb.add("p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        for strat in [Strategy::SemiNaive, Strategy::Naive, Strategy::FullClosure] {
            let mut f = fb.clone();
            InferenceEngine::new(prog.clone()).with_strategy(strat).run(&mut f).unwrap();
            assert_eq!(f.len(), 8 * 9 / 2, "{strat:?}");
        }
    }

    #[test]
    fn reference_budgets_still_fire() {
        let prog = HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut fb = FactBase::new();
        for i in 0..40 {
            fb.add("p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        let err = InferenceEngine::new(prog).with_budget(5, 0).run(&mut fb).unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { .. }));
    }
}
