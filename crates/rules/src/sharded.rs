//! A partitioned [`FactBase`] for shard-local saturation.
//!
//! The shard-parallel engine in `onion-exec` still funnels every
//! derived fact through one shared [`AtomTable`] and one global
//! [`FactBase`] at a per-round barrier. This module provides the data
//! side of the alternative: a [`ShardedFactBase`] whose partitions each
//! carry a **worker-local** [`AtomTable`] and fact store, so seeding and
//! saturation can intern and dedup without ever touching a shared
//! table, and the canonical fold happens **once, at fixpoint**, through
//! [`AtomTable::merge_remap`].
//!
//! ## Ownership
//!
//! A fact is owned by the partition `hash(subject) % shards`, where the
//! subject is the fact's first argument and the hash runs over the
//! atom's canonical `(namespace, name)` **string parts**
//! ([`owner_of_parts`]). Hashing text rather than ids makes ownership a
//! property of the symbol itself: every table in play — worker-local,
//! the engine's wire table, the canonical table — assigns the same
//! owner to the same symbol, whatever ids each table happened to hand
//! out. Facts with no arguments are owned by partition 0.
//!
//! ## The remap-at-fixpoint contract
//!
//! [`AtomTable::merge_remap`] interns the other table's symbols in
//! ascending `(namespace, name)` order, so the canonical ids assigned
//! after a partitioned run depend only on the symbol *set*, never on
//! the shard count, thread count, or interning order of the run that
//! produced them. A partitioned saturation folded through `merge_remap`
//! therefore lands on a canonical table byte-identical to the
//! sequential engine's (which interned the same set).

use std::hash::Hasher;

use onion_graph::hash::FxHasher;

use crate::atoms::{AtomId, AtomTable};
use crate::infer::{Fact, FactBase};

/// One worker's private partition: a local symbol table plus the facts
/// this partition owns, keyed by **local** atom ids (valid only against
/// `atoms`).
#[derive(Debug, Default, Clone)]
pub struct FactPartition {
    /// The worker-local symbol table. Ids here are meaningless outside
    /// this partition until remapped through [`AtomTable::merge_remap`].
    pub atoms: AtomTable,
    /// The facts this partition holds, in local ids.
    pub facts: FactBase,
    /// Symbols interned into the local table while seeding/absorbing —
    /// the per-worker share of interning work that the shard-local
    /// engine reports in `InferenceStats::worker_interned`.
    pub interned: usize,
}

/// A [`FactBase`] split into per-worker partitions, each with its own
/// [`AtomTable`] (see the module docs for ownership and the
/// remap-at-fixpoint contract).
#[derive(Debug, Default, Clone)]
pub struct ShardedFactBase {
    parts: Vec<FactPartition>,
}

impl ShardedFactBase {
    /// An empty partitioned base with `shards` partitions (min 1).
    pub fn new(shards: usize) -> Self {
        ShardedFactBase { parts: (0..shards.max(1)).map(|_| FactPartition::default()).collect() }
    }

    /// Partitions `fb` by fact ownership, re-interning every symbol
    /// into its owner's local table.
    pub fn from_fact_base(atoms: &AtomTable, fb: &FactBase, shards: usize) -> Self {
        let mut s = Self::new(shards);
        s.absorb(atoms, fb);
        s
    }

    /// The partition count.
    pub fn shards(&self) -> usize {
        self.parts.len()
    }

    /// Read access to the partitions, ascending.
    pub fn partitions(&self) -> &[FactPartition] {
        &self.parts
    }

    /// Mutable access to the partitions — the seam a parallel seeder
    /// uses to hand each pool worker its own partition.
    pub fn partitions_mut(&mut self) -> &mut [FactPartition] {
        &mut self.parts
    }

    /// Total facts across all partitions.
    pub fn total_facts(&self) -> usize {
        self.parts.iter().map(|p| p.facts.len()).sum()
    }

    /// Per-partition intern counters, ascending partition order.
    pub fn interned_per_partition(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.interned).collect()
    }

    /// Routes every fact of `fb` (resolved against `atoms`) into its
    /// owner partition, re-interning predicate and argument symbols
    /// into the owner's local table. Facts already present in their
    /// partition are left alone; each partition's intern counter grows
    /// by the symbols that were new to its table.
    pub fn absorb(&mut self, atoms: &AtomTable, fb: &FactBase) {
        let shards = self.parts.len();
        let mut scratch: Vec<Fact> = Vec::new();
        fb.facts_in_pred_order_into(&mut scratch);
        for (pred, args) in scratch.drain(..) {
            let owner = match args.first() {
                Some(&subject) => owner_of(atoms, subject, shards),
                None => 0,
            };
            let part = &mut self.parts[owner];
            let before = part.atoms.len();
            let (pns, pname) = atoms.parts(pred);
            let lp = part.atoms.intern_parts(pns, pname);
            let largs: Vec<AtomId> = args
                .iter()
                .map(|&a| {
                    let (ns, name) = atoms.parts(a);
                    part.atoms.intern_parts(ns, name)
                })
                .collect();
            part.interned += part.atoms.len() - before;
            part.facts.add_fact(lp, largs);
        }
    }
}

/// The owner partition of an atom of `atoms` (see [`owner_of_parts`]).
pub fn owner_of(atoms: &AtomTable, subject: AtomId, shards: usize) -> usize {
    let (ns, name) = atoms.parts(subject);
    owner_of_parts(ns, name, shards)
}

/// The owner partition of a symbol given its canonical string parts:
/// FxHash over the namespace bytes, a separator, and the name bytes,
/// modulo `shards`. Text-based on purpose — every table agrees on
/// ownership regardless of the ids it assigned (module docs).
pub fn owner_of_parts(ns: Option<&str>, name: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h = FxHasher::default();
    if let Some(ns) = ns {
        h.write(ns.as_bytes());
    }
    h.write_u8(0xfe);
    h.write(name.as_bytes());
    // FxHash's multiply pushes entropy into the HIGH bits; a bare
    // `% shards` with a power-of-two shard count would read only the
    // weak low bits (observed: every `n<i>` symbol landing in one
    // partition). Fold the high half down before reducing.
    let mut x = h.finish();
    x ^= x >> 32;
    x ^= x >> 16;
    (x as usize) % shards
}

/// The owner partition of every atom in `atoms`, indexed by
/// [`AtomId::index`] — precomputed once by the shard-local engine so
/// per-fact routing during saturation is an array load, not a hash.
pub fn owner_map(atoms: &AtomTable, shards: usize) -> Vec<u32> {
    (0..atoms.len())
        .map(|i| {
            let (ns, name) = atoms.parts(AtomId::from_index(i));
            owner_of_parts(ns, name, shards) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(atoms: &mut AtomTable) -> FactBase {
        let mut fb = FactBase::new();
        for (a, b) in [
            ("carrier.Car", "factory.Vehicle"),
            ("carrier.SUV", "carrier.Car"),
            ("factory.Truck", "factory.Vehicle"),
            ("x.A", "x.B"),
        ] {
            fb.add(atoms, "si", &[a, b]);
        }
        fb.add(atoms, "marker", &[]);
        fb
    }

    #[test]
    fn absorb_routes_by_subject_owner_and_preserves_the_set() {
        let mut atoms = AtomTable::new();
        let fb = sample(&mut atoms);
        for shards in [1usize, 2, 7] {
            let sfb = ShardedFactBase::from_fact_base(&atoms, &fb, shards);
            assert_eq!(sfb.shards(), shards);
            assert_eq!(sfb.total_facts(), fb.len(), "shards={shards}");
            // every fact sits in the partition its subject hashes to,
            // and resolves to the same strings as the original
            let mut resolved: Vec<String> = Vec::new();
            for (k, part) in sfb.partitions().iter().enumerate() {
                for (p, args) in part.facts.facts_in_pred_order() {
                    match args.first() {
                        Some(&s) => {
                            assert_eq!(owner_of(&part.atoms, s, shards), k, "shards={shards}")
                        }
                        None => assert_eq!(k, 0, "no-subject facts live in partition 0"),
                    }
                    let mut line = part.atoms.resolve(p).to_string();
                    for a in args {
                        line.push(' ');
                        line.push_str(part.atoms.resolve(a));
                    }
                    resolved.push(line);
                }
            }
            resolved.sort();
            let mut expected: Vec<String> = fb
                .facts_in_pred_order()
                .into_iter()
                .map(|(p, args)| {
                    let mut line = atoms.resolve(p).to_string();
                    for a in args {
                        line.push(' ');
                        line.push_str(atoms.resolve(a));
                    }
                    line
                })
                .collect();
            expected.sort();
            assert_eq!(resolved, expected, "shards={shards}");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let mut atoms = AtomTable::new();
        let fb = sample(&mut atoms);
        let sfb = ShardedFactBase::from_fact_base(&atoms, &fb, 1);
        assert_eq!(sfb.partitions()[0].facts.len(), fb.len());
        assert!(sfb.partitions()[0].interned > 0, "local table was populated");
    }

    #[test]
    fn ownership_is_table_independent() {
        // two tables assigning different ids to the same text agree on
        // the owner — ownership hashes parts, not ids
        let mut t1 = AtomTable::new();
        let mut t2 = AtomTable::new();
        t2.intern("filler.Pad"); // skew t2's id assignment
        let a1 = t1.intern("carrier.Car");
        let a2 = t2.intern("carrier.Car");
        assert_ne!(a1.index(), a2.index());
        for shards in [2usize, 7, 64] {
            assert_eq!(owner_of(&t1, a1, shards), owner_of(&t2, a2, shards));
        }
    }

    #[test]
    fn owner_map_matches_per_atom_hashing() {
        let mut atoms = AtomTable::new();
        let _ = sample(&mut atoms);
        let map = owner_map(&atoms, 7);
        assert_eq!(map.len(), atoms.len());
        for i in 0..atoms.len() {
            assert_eq!(map[i] as usize, owner_of(&atoms, AtomId::from_index(i), 7));
        }
    }

    #[test]
    fn interned_counters_track_local_tables() {
        let mut atoms = AtomTable::new();
        let fb = sample(&mut atoms);
        let sfb = ShardedFactBase::from_fact_base(&atoms, &fb, 4);
        let counters = sfb.interned_per_partition();
        assert_eq!(counters.len(), 4);
        for (k, part) in sfb.partitions().iter().enumerate() {
            assert_eq!(counters[k], part.atoms.len(), "absorb interned every local symbol once");
        }
    }
}
