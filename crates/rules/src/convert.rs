//! Conversion (normalisation) functions for functional rules.
//!
//! §4.1 "Functional Rules": "Different ontologies often contain terms
//! that represent the same concept, but are expressed in a different
//! metric space. Normalization functions, that take in a set of input
//! parameters and perform the desired conversion are written in a
//! standard programming language and provided by the expert." The paper's
//! example converts car prices between Dutch Guilders, Pound Sterling and
//! the Euro (`DGToEuroFn`, `PSToEuroFn`, `EuroToPSFn`).
//!
//! [`ConversionRegistry`] holds named converters with optional declared
//! inverses; the query processor uses them "to transform terms to and
//! from the articulation ontology in order to answer queries involving
//! the prices of vehicles".

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::atoms::{AtomId, AtomTable};
use crate::{Result, RuleError};

/// A named scalar conversion function.
#[derive(Clone)]
pub struct Converter {
    name: String,
    inverse_name: Option<String>,
    f: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
}

impl Converter {
    /// Creates a converter.
    pub fn new(
        name: &str,
        inverse_name: Option<&str>,
        f: impl Fn(f64) -> f64 + Send + Sync + 'static,
    ) -> Self {
        Converter {
            name: name.to_string(),
            inverse_name: inverse_name.map(str::to_string),
            f: Arc::new(f),
        }
    }

    /// The converter's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared inverse function name, if any.
    pub fn inverse_name(&self) -> Option<&str> {
        self.inverse_name.as_deref()
    }

    /// Applies the conversion.
    pub fn apply(&self, x: f64) -> f64 {
        (self.f)(x)
    }
}

impl fmt::Debug for Converter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Converter({})", self.name)
    }
}

/// Registry of conversion functions, keyed by name.
///
/// ```
/// let registry = onion_rules::ConversionRegistry::standard();
/// // 2.20371 Dutch Guilders were fixed at exactly 1 Euro
/// let eur = registry.apply("DGToEuroFn", 2.20371).unwrap();
/// assert!((eur - 1.0).abs() < 1e-12);
/// let back = registry.apply_inverse("DGToEuroFn", eur).unwrap();
/// assert!((back - 2.20371).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConversionRegistry {
    converters: BTreeMap<String, Converter>,
}

impl ConversionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry used by the paper's running example and the
    /// reproduction's benchmarks: the **fixed euro conversion rates**
    /// (the paper predates floating rates against the euro — the Dutch
    /// guilder was irrevocably fixed at 2.20371 NLG/EUR in 1999) plus a
    /// period-plausible sterling rate and common unit conversions.
    pub fn standard() -> Self {
        let mut r = Self::new();
        // currencies (per 1 EUR)
        const NLG_PER_EUR: f64 = 2.20371;
        const GBP_PER_EUR: f64 = 0.6533; // ~1999 market rate
        r.register_pair("DGToEuroFn", "EuroToDGFn", NLG_PER_EUR);
        r.register_pair("PSToEuroFn", "EuroToPSFn", GBP_PER_EUR);
        // units
        r.register_pair("LbToKgFn", "KgToLbFn", 1.0 / 0.45359237);
        r.register_pair("MiToKmFn", "KmToMiFn", 1.0 / 1.609344);
        r
    }

    /// Registers a converter (replacing any existing one of that name).
    pub fn register(&mut self, c: Converter) {
        self.converters.insert(c.name().to_string(), c);
    }

    /// Registers a linear pair `forward(x) = x / units_per_target` and
    /// its inverse, wired to each other by name.
    ///
    /// `units_per_target` is how many source units one target unit is
    /// worth (e.g. 2.20371 guilders per euro ⇒ `DGToEuroFn(x) = x /
    /// 2.20371`).
    pub fn register_pair(&mut self, forward: &str, backward: &str, units_per_target: f64) {
        let k = units_per_target;
        self.register(Converter::new(forward, Some(backward), move |x| x / k));
        self.register(Converter::new(backward, Some(forward), move |x| x * k));
    }

    /// Looks up a converter.
    pub fn get(&self, name: &str) -> Option<&Converter> {
        self.converters.get(name)
    }

    /// Looks up a converter by an interned function-name atom — the
    /// id-path view used when rules are processed on [`AtomId`]s.
    pub fn get_atom(&self, atoms: &AtomTable, function: AtomId) -> Option<&Converter> {
        self.converters.get(atoms.resolve(function))
    }

    /// Applies the converter named by an interned atom to `x`.
    pub fn apply_atom(&self, atoms: &AtomTable, function: AtomId, x: f64) -> Result<f64> {
        self.get_atom(atoms, function)
            .map(|c| c.apply(x))
            .ok_or_else(|| RuleError::UnknownFunction(atoms.resolve(function).to_string()))
    }

    /// Applies `name` to `x`, erroring if unregistered.
    pub fn apply(&self, name: &str, x: f64) -> Result<f64> {
        self.get(name)
            .map(|c| c.apply(x))
            .ok_or_else(|| RuleError::UnknownFunction(name.to_string()))
    }

    /// Applies the registered inverse of `name` to `x`.
    pub fn apply_inverse(&self, name: &str, x: f64) -> Result<f64> {
        let c = self.get(name).ok_or_else(|| RuleError::UnknownFunction(name.to_string()))?;
        let inv = c
            .inverse_name()
            .ok_or_else(|| RuleError::UnknownFunction(format!("inverse of {name}")))?;
        self.apply(inv, x)
    }

    /// Composes a chain of conversions left to right.
    pub fn apply_chain(&self, names: &[&str], x: f64) -> Result<f64> {
        let mut v = x;
        for n in names {
            v = self.apply(n, v)?;
        }
        Ok(v)
    }

    /// True if every converter's declared inverse exists and round-trips
    /// `probe` to within `tol` relative error — a rule-set sanity check
    /// run by conflict detection.
    pub fn check_inverses(&self, probe: f64, tol: f64) -> Vec<String> {
        let mut bad = Vec::new();
        for (name, c) in &self.converters {
            if let Some(inv) = c.inverse_name() {
                match self.get(inv) {
                    None => bad.push(format!("{name}: inverse {inv} not registered")),
                    Some(ic) => {
                        let rt = ic.apply(c.apply(probe));
                        let err = ((rt - probe) / probe).abs();
                        if err > tol {
                            bad.push(format!(
                                "{name}∘{inv} drifts: {probe} -> {rt} (rel err {err:.2e})"
                            ));
                        }
                    }
                }
            }
        }
        bad
    }

    /// Registered converter names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.converters.keys().map(String::as_str).collect()
    }

    /// Number of converters.
    pub fn len(&self) -> usize {
        self.converters.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.converters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guilder_euro_fixed_rate() {
        let r = ConversionRegistry::standard();
        let eur = r.apply("DGToEuroFn", 2.20371).unwrap();
        assert!((eur - 1.0).abs() < 1e-12);
        let nlg = r.apply("EuroToDGFn", 1.0).unwrap();
        assert!((nlg - 2.20371).abs() < 1e-12);
    }

    #[test]
    fn sterling_roundtrip() {
        let r = ConversionRegistry::standard();
        let x = 12345.67;
        let eur = r.apply("PSToEuroFn", x).unwrap();
        let back = r.apply("EuroToPSFn", eur).unwrap();
        assert!((back - x).abs() / x < 1e-12);
    }

    #[test]
    fn apply_inverse_uses_declared_pair() {
        let r = ConversionRegistry::standard();
        let eur = r.apply("DGToEuroFn", 100.0).unwrap();
        let back = r.apply_inverse("DGToEuroFn", eur).unwrap();
        assert!((back - 100.0).abs() < 1e-9);
    }

    #[test]
    fn atom_lookup_matches_string_lookup() {
        let r = ConversionRegistry::standard();
        let mut atoms = AtomTable::new();
        let f = atoms.intern("DGToEuroFn");
        assert_eq!(r.get_atom(&atoms, f).unwrap().name(), "DGToEuroFn");
        let eur = r.apply_atom(&atoms, f, 2.20371).unwrap();
        assert!((eur - 1.0).abs() < 1e-12);
        let missing = atoms.intern("NoSuchFn");
        assert!(matches!(r.apply_atom(&atoms, missing, 1.0), Err(RuleError::UnknownFunction(_))));
    }

    #[test]
    fn unknown_function_errors() {
        let r = ConversionRegistry::standard();
        assert!(matches!(r.apply("NoSuchFn", 1.0), Err(RuleError::UnknownFunction(_))));
        assert!(r.apply_inverse("NoSuchFn", 1.0).is_err());
    }

    #[test]
    fn converter_without_inverse() {
        let mut r = ConversionRegistry::new();
        r.register(Converter::new("CelsiusToKelvinFn", None, |c| c + 273.15));
        assert_eq!(r.apply("CelsiusToKelvinFn", 0.0).unwrap(), 273.15);
        assert!(r.apply_inverse("CelsiusToKelvinFn", 0.0).is_err());
    }

    #[test]
    fn chain_composition() {
        let r = ConversionRegistry::standard();
        // guilders -> euro -> sterling
        let gbp = r.apply_chain(&["DGToEuroFn", "EuroToPSFn"], 220.371).unwrap();
        assert!((gbp - 100.0 * 0.6533).abs() < 1e-9);
        assert!(r.apply_chain(&["DGToEuroFn", "Nope"], 1.0).is_err());
        assert_eq!(r.apply_chain(&[], 5.0).unwrap(), 5.0);
    }

    #[test]
    fn check_inverses_all_good_in_standard() {
        let r = ConversionRegistry::standard();
        assert!(r.check_inverses(123.456, 1e-9).is_empty());
    }

    #[test]
    fn check_inverses_flags_drift_and_missing() {
        let mut r = ConversionRegistry::new();
        r.register(Converter::new("bad", Some("badInv"), |x| x * 2.0));
        r.register(Converter::new("badInv", Some("bad"), |x| x / 3.0)); // wrong
        r.register(Converter::new("orphan", Some("ghost"), |x| x));
        let problems = r.check_inverses(10.0, 1e-9);
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("ghost")));
    }

    #[test]
    fn names_sorted() {
        let r = ConversionRegistry::standard();
        let names = r.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), r.len());
    }

    #[test]
    fn registry_replaces_on_same_name() {
        let mut r = ConversionRegistry::new();
        r.register(Converter::new("f", None, |x| x + 1.0));
        r.register(Converter::new("f", None, |x| x + 2.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.apply("f", 0.0).unwrap(), 2.0);
    }
}
