//! Rule-set conflict and consistency analysis.
//!
//! The paper charges the model with providing "a basis for the logical
//! inference necessary for knowledge composition and for the detection
//! of errors in the articulation rules" (§1), with the expert
//! "responsible to correct inconsistencies in the suggested articulation"
//! (§2.4). This module surfaces the mechanically detectable problems so
//! the (simulated) expert can rule on them:
//!
//! * **equivalence cycles** — implication cycles `A ⇒ … ⇒ A` collapse
//!   distinct terms into one semantic class; often intended (the paper's
//!   `factory.Vehicle ⇔ transport.Vehicle`), but worth reporting;
//! * **disjointness violations** — a derived implication `A ⇒ B` where
//!   the expert declared `A` and `B` disjoint;
//! * **dangling functional rules** — conversion functions that are not
//!   registered;
//! * **redundant rules** — implications already derivable from the rest
//!   of the set (transitivity).

use onion_graph::hash::FxHashSet;
use onion_graph::traverse::{tarjan_scc, EdgeFilter};
use onion_graph::OntGraph;

use crate::ast::{ArticulationRule, RuleSet};
use crate::atoms::{AtomId, AtomTable};
use crate::convert::ConversionRegistry;

/// One reported finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// Terms mutually implied — they form one equivalence class.
    EquivalenceCycle {
        /// The terms in the cycle (sorted).
        terms: Vec<String>,
    },
    /// `a ⇒ b` is derivable although declared disjoint.
    DisjointnessViolation {
        /// Implying term.
        from: String,
        /// Implied term.
        to: String,
    },
    /// A functional rule references an unregistered function.
    MissingConversion {
        /// The function name.
        function: String,
    },
    /// A simple implication is derivable from the others.
    RedundantRule {
        /// Display form of the redundant rule.
        rule: String,
    },
}

/// Declared disjointness constraints (unordered term pairs).
///
/// Pairs are keyed by interned [`AtomId`]s over a private [`AtomTable`]:
/// `declare` interns, `contains` only looks up — a membership probe
/// allocates nothing and hashes two `u32`s instead of building owned
/// `String` keys per call (the transitive-closure violation sweep in
/// [`analyze`] probes once per derived implication pair).
#[derive(Debug, Default)]
pub struct Disjointness {
    atoms: AtomTable,
    pairs: FxHashSet<(AtomId, AtomId)>,
}

impl Disjointness {
    /// No constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `a` and `b` disjoint (order-insensitive).
    pub fn declare(&mut self, a: &str, b: &str) {
        let x = self.atoms.intern(a);
        let y = self.atoms.intern(b);
        self.pairs.insert((x.min(y), x.max(y)));
    }

    /// Are `a`,`b` declared disjoint?
    pub fn contains(&self, a: &str, b: &str) -> bool {
        let (Some(x), Some(y)) = (self.atoms.lookup(a), self.atoms.lookup(b)) else {
            return false; // an undeclared term is disjoint from nothing
        };
        self.pairs.contains(&(x.min(y), x.max(y)))
    }

    /// Number of declared pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Builds the implication graph over qualified term names: one node per
/// term, one `si` edge per adjacent pair in every implication chain
/// (boolean structure flattened to its member terms, matching how the
/// articulation generator wires synthesised classes).
pub fn implication_graph(rules: &RuleSet) -> OntGraph {
    // terms are interned once; their qualified text materialises once
    // per distinct term instead of one String join per occurrence
    let mut atoms = AtomTable::new();
    let mut g = OntGraph::new("implications");
    for rule in rules.iter() {
        if let ArticulationRule::Implication { chain } = rule {
            for pair in chain.windows(2) {
                for l in pair[0].terms() {
                    for r in pair[1].terms() {
                        let (li, ri) = (atoms.intern_term(l), atoms.intern_term(r));
                        let _ = g.ensure_edge_by_labels(atoms.resolve(li), "si", atoms.resolve(ri));
                    }
                }
            }
        }
    }
    g
}

/// Analyses a rule set; findings are ordered deterministically.
pub fn analyze(
    rules: &RuleSet,
    conversions: &ConversionRegistry,
    disjoint: &Disjointness,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let g = implication_graph(rules);

    // 1. equivalence cycles (SCCs of size > 1)
    let mut cycles: Vec<Vec<String>> = tarjan_scc(&g, &EdgeFilter::All)
        .into_iter()
        .filter(|c| c.len() > 1)
        .map(|c| {
            let mut terms: Vec<String> =
                c.into_iter().map(|n| g.node_label(n).expect("live").to_string()).collect();
            terms.sort();
            terms
        })
        .collect();
    cycles.sort();
    for terms in cycles {
        findings.push(Finding::EquivalenceCycle { terms });
    }

    // 2. disjointness violations against the transitive implication closure
    if !disjoint.is_empty() {
        let pairs = onion_graph::closure::transitive_pairs(&g, &EdgeFilter::All);
        let mut violations: Vec<(String, String)> = pairs
            .into_iter()
            .map(|(a, b)| {
                (
                    g.node_label(a).expect("live").to_string(),
                    g.node_label(b).expect("live").to_string(),
                )
            })
            .filter(|(a, b)| disjoint.contains(a, b))
            .collect();
        violations.sort();
        violations.dedup();
        for (from, to) in violations {
            findings.push(Finding::DisjointnessViolation { from, to });
        }
    }

    // 3. missing conversion functions
    let mut missing: Vec<String> = rules
        .iter()
        .filter_map(|r| match r {
            ArticulationRule::Functional { function, .. }
                if conversions.get(function).is_none() =>
            {
                Some(function.clone())
            }
            _ => None,
        })
        .collect();
    missing.sort();
    missing.dedup();
    for function in missing {
        findings.push(Finding::MissingConversion { function });
    }

    // 4. redundant simple implications: edge derivable without itself
    let mut redundant = Vec::new();
    for rule in rules.iter() {
        if !rule.is_simple_implication() {
            continue;
        }
        if let ArticulationRule::Implication { chain } = rule {
            let from = chain[0].terms()[0].to_string();
            let to = chain[1].terms()[0].to_string();
            // remove the direct edge, test reachability
            let mut g2 = g.clone();
            if g2.delete_edge_by_labels(&from, "si", &to).is_ok() {
                let (a, b) = (
                    g2.node_by_label(&from).expect("node exists"),
                    g2.node_by_label(&to).expect("node exists"),
                );
                if onion_graph::traverse::has_path(&g2, a, b, &EdgeFilter::All) {
                    redundant.push(rule.to_string());
                }
            }
        }
    }
    redundant.sort();
    for rule in redundant {
        findings.push(Finding::RedundantRule { rule });
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;

    fn rules(src: &str) -> RuleSet {
        parse_rules(src).unwrap()
    }

    #[test]
    fn clean_ruleset_has_no_findings() {
        let rs = rules("carrier.Car => factory.Vehicle\nfactory.Truck => factory.Vehicle\n");
        let f = analyze(&rs, &ConversionRegistry::standard(), &Disjointness::new());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn detects_equivalence_cycle() {
        let rs = rules("a.X => b.Y\nb.Y => a.X\n");
        let f = analyze(&rs, &ConversionRegistry::standard(), &Disjointness::new());
        assert_eq!(f, vec![Finding::EquivalenceCycle { terms: vec!["a.X".into(), "b.Y".into()] }]);
    }

    #[test]
    fn detects_longer_cycle() {
        let rs = rules("a.X => b.Y\nb.Y => c.Z\nc.Z => a.X\n");
        let f = analyze(&rs, &ConversionRegistry::standard(), &Disjointness::new());
        assert!(matches!(&f[0], Finding::EquivalenceCycle { terms } if terms.len() == 3));
    }

    #[test]
    fn detects_disjointness_violation_transitively() {
        let rs = rules("a.Car => b.Mid\nb.Mid => c.Scrap\n");
        let mut dj = Disjointness::new();
        dj.declare("a.Car", "c.Scrap");
        let f = analyze(&rs, &ConversionRegistry::standard(), &dj);
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::DisjointnessViolation { from, to }
                if from == "a.Car" && to == "c.Scrap"
        )));
    }

    #[test]
    fn disjointness_is_symmetric() {
        let mut dj = Disjointness::new();
        dj.declare("b", "a");
        assert!(dj.contains("a", "b"));
        assert!(dj.contains("b", "a"));
        assert_eq!(dj.len(), 1);
    }

    #[test]
    fn detects_missing_conversion() {
        let rs = rules("NoSuchFn(): a.Price => b.Euro\n");
        let f = analyze(&rs, &ConversionRegistry::standard(), &Disjointness::new());
        assert_eq!(f, vec![Finding::MissingConversion { function: "NoSuchFn".into() }]);
        // registered one is fine
        let rs = rules("DGToEuroFn(): a.Price => b.Euro\n");
        let f = analyze(&rs, &ConversionRegistry::standard(), &Disjointness::new());
        assert!(f.is_empty());
    }

    #[test]
    fn detects_redundant_rule() {
        let rs = rules("a.X => b.Y\nb.Y => c.Z\na.X => c.Z\n");
        let f = analyze(&rs, &ConversionRegistry::standard(), &Disjointness::new());
        assert_eq!(f, vec![Finding::RedundantRule { rule: "a.X => c.Z".into() }]);
    }

    #[test]
    fn conjunction_terms_enter_graph() {
        let rs = rules("(f.A & f.B) => c.T\n");
        let g = implication_graph(&rs);
        assert!(g.has_edge("f.A", "si", "c.T"));
        assert!(g.has_edge("f.B", "si", "c.T"));
    }

    #[test]
    fn cascade_builds_chain_edges() {
        let rs = rules("a.X => m.Mid => b.Y\n");
        let g = implication_graph(&rs);
        assert!(g.has_edge("a.X", "si", "m.Mid"));
        assert!(g.has_edge("m.Mid", "si", "b.Y"));
        assert!(!g.has_edge("a.X", "si", "b.Y"), "no shortcut edge");
    }
}
