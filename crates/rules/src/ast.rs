//! Abstract syntax of articulation rules (paper §4.1).

use std::fmt;

/// A qualified ontology term, e.g. `carrier.Car`.
///
/// The ontology part is optional while a rule is being written against
/// an implicit context (the paper's ONION viewer resolves names by click
/// and drag; the textual syntax prefixes terms "as a consequence of a
/// linear syntax").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term {
    /// The ontology the term belongs to, if qualified.
    pub ontology: Option<String>,
    /// The term (node label) inside that ontology.
    pub name: String,
}

impl Term {
    /// A qualified term `ontology.name`.
    pub fn qualified(ontology: &str, name: &str) -> Self {
        Term { ontology: Some(ontology.to_string()), name: name.to_string() }
    }

    /// An unqualified term.
    pub fn unqualified(name: &str) -> Self {
        Term { ontology: None, name: name.to_string() }
    }

    /// True if the term is qualified with `ontology`.
    pub fn in_ontology(&self, ontology: &str) -> bool {
        self.ontology.as_deref() == Some(ontology)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ontology {
            Some(o) => write!(f, "{}.{}", o, self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A boolean combination of terms appearing on either side of `⇒`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleExpr {
    /// A single term.
    Term(Term),
    /// Conjunction `(a ∧ b ∧ …)`.
    And(Vec<RuleExpr>),
    /// Disjunction `(a ∨ b ∨ …)`.
    Or(Vec<RuleExpr>),
}

impl RuleExpr {
    /// Convenience constructor for a term expression.
    pub fn term(t: Term) -> Self {
        RuleExpr::Term(t)
    }

    /// All terms mentioned, left to right.
    pub fn terms(&self) -> Vec<&Term> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a Term>) {
        match self {
            RuleExpr::Term(t) => out.push(t),
            RuleExpr::And(xs) | RuleExpr::Or(xs) => {
                for x in xs {
                    x.collect_terms(out);
                }
            }
        }
    }

    /// True if the expression is a single bare term.
    pub fn is_simple(&self) -> bool {
        matches!(self, RuleExpr::Term(_))
    }

    /// The paper's default label for a synthesised class node: the
    /// predicate text (§4.1 "The default label for N is the predicate
    /// text"), rendered compactly (`CargoCarrierVehicle` style for
    /// conjunctions of simple terms, `CarsTrucks` for disjunctions).
    pub fn default_label(&self) -> String {
        match self {
            RuleExpr::Term(t) => t.name.clone(),
            RuleExpr::And(xs) | RuleExpr::Or(xs) => {
                xs.iter().map(|x| x.default_label()).collect::<Vec<_>>().join("")
            }
        }
    }
}

impl fmt::Display for RuleExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleExpr::Term(t) => write!(f, "{t}"),
            RuleExpr::And(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            RuleExpr::Or(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One articulation rule.
#[derive(Debug, Clone, PartialEq)]
pub enum ArticulationRule {
    /// `e₁ ⇒ e₂ ⇒ … ⇒ eₙ` — semantic implication, possibly cascaded
    /// (n > 2 introduces intermediate articulation terms, §4.1).
    Implication {
        /// The implication chain, length ≥ 2.
        chain: Vec<RuleExpr>,
    },
    /// `F(): a ⇒ b` — a functional rule whose conversion function `F`
    /// normalises values of `a` into the metric space of `b` (§4.1
    /// "Functional Rules").
    Functional {
        /// Registered conversion-function name.
        function: String,
        /// Source term.
        from: Term,
        /// Target term.
        to: Term,
    },
}

impl ArticulationRule {
    /// A simple two-term implication.
    pub fn implies(lhs: RuleExpr, rhs: RuleExpr) -> Self {
        ArticulationRule::Implication { chain: vec![lhs, rhs] }
    }

    /// A simple term-to-term implication.
    pub fn term_implies(lhs: Term, rhs: Term) -> Self {
        Self::implies(RuleExpr::Term(lhs), RuleExpr::Term(rhs))
    }

    /// All terms the rule mentions.
    pub fn terms(&self) -> Vec<&Term> {
        match self {
            ArticulationRule::Implication { chain } => {
                chain.iter().flat_map(|e| e.terms()).collect()
            }
            ArticulationRule::Functional { from, to, .. } => vec![from, to],
        }
    }

    /// True for a plain `term ⇒ term` rule.
    pub fn is_simple_implication(&self) -> bool {
        match self {
            ArticulationRule::Implication { chain } => {
                chain.len() == 2 && chain.iter().all(RuleExpr::is_simple)
            }
            _ => false,
        }
    }
}

impl fmt::Display for ArticulationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArticulationRule::Implication { chain } => {
                for (i, e) in chain.iter().enumerate() {
                    if i > 0 {
                        write!(f, " => ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            ArticulationRule::Functional { function, from, to } => {
                write!(f, "{function}(): {from} => {to}")
            }
        }
    }
}

/// An ordered collection of articulation rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// The rules, in declaration order.
    pub rules: Vec<ArticulationRule>,
}

impl RuleSet {
    /// Empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule, skipping exact duplicates. Returns whether added.
    pub fn push(&mut self, rule: ArticulationRule) -> bool {
        if self.rules.contains(&rule) {
            return false;
        }
        self.rules.push(rule);
        true
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates the rules.
    pub fn iter(&self) -> impl Iterator<Item = &ArticulationRule> {
        self.rules.iter()
    }

    /// Merges another rule set, deduplicating; returns how many were new.
    pub fn extend_dedup(&mut self, other: &RuleSet) -> usize {
        let mut added = 0;
        for r in &other.rules {
            if self.push(r.clone()) {
                added += 1;
            }
        }
        added
    }

    /// All ontology names referenced by qualified terms, sorted unique.
    pub fn ontologies(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .rules
            .iter()
            .flat_map(|r| r.terms())
            .filter_map(|t| t.ontology.as_deref())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_display() {
        assert_eq!(Term::qualified("carrier", "Car").to_string(), "carrier.Car");
        assert_eq!(Term::unqualified("Car").to_string(), "Car");
        assert!(Term::qualified("carrier", "Car").in_ontology("carrier"));
        assert!(!Term::unqualified("Car").in_ontology("carrier"));
    }

    #[test]
    fn expr_terms_in_order() {
        let e = RuleExpr::And(vec![
            RuleExpr::term(Term::qualified("factory", "CargoCarrier")),
            RuleExpr::term(Term::qualified("factory", "Vehicle")),
        ]);
        let names: Vec<&str> = e.terms().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["CargoCarrier", "Vehicle"]);
        assert!(!e.is_simple());
    }

    #[test]
    fn default_labels_match_paper_examples() {
        // §4.1: CargoCarrier ∧ Vehicle gets node CargoCarrierVehicle
        let and = RuleExpr::And(vec![
            RuleExpr::term(Term::qualified("factory", "CargoCarrier")),
            RuleExpr::term(Term::qualified("factory", "Vehicle")),
        ]);
        assert_eq!(and.default_label(), "CargoCarrierVehicle");
        // §4.1: Cars ∨ Trucks gets node CarsTrucks
        let or = RuleExpr::Or(vec![
            RuleExpr::term(Term::qualified("carrier", "Cars")),
            RuleExpr::term(Term::qualified("carrier", "Trucks")),
        ]);
        assert_eq!(or.default_label(), "CarsTrucks");
    }

    #[test]
    fn rule_display_roundtrips_shapes() {
        let r = ArticulationRule::term_implies(
            Term::qualified("carrier", "Car"),
            Term::qualified("factory", "Vehicle"),
        );
        assert_eq!(r.to_string(), "carrier.Car => factory.Vehicle");
        assert!(r.is_simple_implication());

        let f = ArticulationRule::Functional {
            function: "DGToEuroFn".into(),
            from: Term::qualified("carrier", "DutchGuilders"),
            to: Term::qualified("transport", "Euro"),
        };
        assert_eq!(f.to_string(), "DGToEuroFn(): carrier.DutchGuilders => transport.Euro");
        assert!(!f.is_simple_implication());
    }

    #[test]
    fn cascaded_rule_not_simple() {
        let r = ArticulationRule::Implication {
            chain: vec![
                RuleExpr::term(Term::qualified("carrier", "Car")),
                RuleExpr::term(Term::qualified("transport", "PassengerCar")),
                RuleExpr::term(Term::qualified("factory", "Vehicle")),
            ],
        };
        assert!(!r.is_simple_implication());
        assert_eq!(r.terms().len(), 3);
        assert_eq!(r.to_string(), "carrier.Car => transport.PassengerCar => factory.Vehicle");
    }

    #[test]
    fn ruleset_dedups() {
        let mut rs = RuleSet::new();
        let r =
            ArticulationRule::term_implies(Term::qualified("a", "X"), Term::qualified("b", "Y"));
        assert!(rs.push(r.clone()));
        assert!(!rs.push(r));
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn ruleset_extend_dedup_counts_new() {
        let mut a = RuleSet::new();
        a.push(ArticulationRule::term_implies(
            Term::qualified("a", "X"),
            Term::qualified("b", "Y"),
        ));
        let mut b = RuleSet::new();
        b.push(ArticulationRule::term_implies(
            Term::qualified("a", "X"),
            Term::qualified("b", "Y"),
        ));
        b.push(ArticulationRule::term_implies(
            Term::qualified("a", "Z"),
            Term::qualified("b", "W"),
        ));
        assert_eq!(a.extend_dedup(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn ruleset_ontologies_sorted_unique() {
        let mut rs = RuleSet::new();
        rs.push(ArticulationRule::term_implies(
            Term::qualified("carrier", "Car"),
            Term::qualified("factory", "Vehicle"),
        ));
        rs.push(ArticulationRule::term_implies(
            Term::qualified("factory", "Truck"),
            Term::unqualified("Thing"),
        ));
        assert_eq!(rs.ontologies(), vec!["carrier", "factory"]);
    }
}
