//! Forward-chaining inference over Horn programs, keyed by interned
//! [`AtomId`]s.
//!
//! §4.1 motivates restricting articulation rules to Horn clauses so that
//! "a much lighter (and faster) inference engine" can be plugged in. We
//! provide three strategies whose contrast is experiment **B6**:
//!
//! * [`Strategy::SemiNaive`] — delta-driven evaluation with per-argument
//!   fact indexes; the "lighter and faster" engine the paper envisages;
//! * [`Strategy::Naive`] — re-evaluates every clause against the full
//!   fact base each round (still indexed);
//! * [`Strategy::FullClosure`] — the deliberately heavyweight stand-in
//!   for a full first-order prover: no indexes, every body atom scans the
//!   entire fact base every round (see DESIGN.md substitution table).
//!
//! All strategies compute the same least fixpoint; they differ only in
//! work done, which [`InferenceStats`] exposes (`atoms_examined` is the
//! effort proxy reported by bench B6).
//!
//! Symbols live in an external [`AtomTable`] rather than inside the fact
//! base, so one table can back many fact bases (the articulation
//! generator reuses the system's shared table across runs) and seeding
//! from a graph goes through [`AtomTable::graph_atoms`] without ever
//! formatting or hashing a string per fact. The string-accepting methods
//! here are the thin display/test view the parser boundary needs; the
//! hot paths are the `*_fact`/`*_ids` variants. The pre-refactor
//! string-keyed engine survives as [`crate::reference`] for differential
//! testing and the B12 baseline.

use std::collections::{HashMap, HashSet};

use crate::atoms::{AtomId, AtomTable};
use crate::horn::{Atom, HornClause, HornProgram, TermArg};
use crate::{Result, RuleError};

/// A ground fact: interned predicate and argument atoms.
///
/// Public so `onion-exec` can shuttle per-round deltas between the
/// engine and its worker pool without re-encoding.
pub type Fact = (AtomId, Vec<AtomId>);

/// A deduplicated set of ground facts with per-argument indexes.
///
/// Facts are tuples of [`AtomId`]s resolved against a caller-owned
/// [`AtomTable`]; the base itself stores no strings.
#[derive(Debug, Default, Clone)]
pub struct FactBase {
    facts: HashSet<Fact>,
    /// pred → list of argument tuples (insertion order)
    by_pred: HashMap<AtomId, Vec<Vec<AtomId>>>,
    /// (pred, position, symbol) → indexes into `by_pred[pred]`
    index: HashMap<(AtomId, u8, AtomId), Vec<u32>>,
}

impl FactBase {
    /// Empty fact base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fact by strings (interning through `atoms`); returns true
    /// if new.
    pub fn add(&mut self, atoms: &mut AtomTable, pred: &str, args: &[&str]) -> bool {
        let p = atoms.intern(pred);
        let a: Vec<AtomId> = args.iter().map(|s| atoms.intern(s)).collect();
        self.add_fact(p, a)
    }

    /// Adds a ground [`Atom`]; returns true if new. Panics if not ground.
    pub fn add_atom(&mut self, atoms: &mut AtomTable, atom: &Atom) -> bool {
        assert!(atom.is_ground(), "add_atom requires a ground atom");
        let p = atoms.intern(&atom.pred);
        let args: Vec<AtomId> = atom
            .args
            .iter()
            .map(|a| match a {
                TermArg::Const(c) => atoms.intern(c),
                TermArg::Var(_) => unreachable!("ground checked"),
            })
            .collect();
        self.add_fact(p, args)
    }

    /// Adds a fact by pre-interned atoms — the zero-allocation seeding
    /// path; returns true if new.
    pub fn add_fact(&mut self, pred: AtomId, args: Vec<AtomId>) -> bool {
        let fact = (pred, args);
        if self.facts.contains(&fact) {
            return false;
        }
        let (pred, args) = fact.clone();
        let list = self.by_pred.entry(pred).or_default();
        let pos = list.len() as u32;
        for (i, &sym) in args.iter().enumerate() {
            self.index.entry((pred, i as u8, sym)).or_default().push(pos);
        }
        list.push(args);
        self.facts.insert(fact);
        true
    }

    /// Membership test by strings (never interns).
    pub fn contains(&self, atoms: &AtomTable, pred: &str, args: &[&str]) -> bool {
        let Some(p) = atoms.lookup(pred) else { return false };
        let mut ids = Vec::with_capacity(args.len());
        for s in args {
            match atoms.lookup(s) {
                Some(id) => ids.push(id),
                None => return false,
            }
        }
        self.facts.contains(&(p, ids))
    }

    /// Membership test by pre-interned atoms.
    pub fn contains_fact(&self, pred: AtomId, args: &[AtomId]) -> bool {
        // allocation-free probe would need a borrowed key; fact tuples
        // are short so the Vec clone here is cheaper than a custom key
        self.facts.contains(&(pred, args.to_vec()))
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All facts of a predicate, resolved to strings — display/test view.
    pub fn facts_of<'a>(&'a self, atoms: &'a AtomTable, pred: &str) -> Vec<Vec<&'a str>> {
        let Some(p) = atoms.lookup(pred) else { return Vec::new() };
        self.by_pred
            .get(&p)
            .map(|list| {
                list.iter().map(|args| args.iter().map(|&a| atoms.resolve(a)).collect()).collect()
            })
            .unwrap_or_default()
    }

    /// Binary-predicate query with optional argument constraints,
    /// resolved to strings — display/test view.
    pub fn query2<'a>(
        &'a self,
        atoms: &'a AtomTable,
        pred: &str,
        a: Option<&str>,
        b: Option<&str>,
    ) -> Vec<(&'a str, &'a str)> {
        let Some(p) = atoms.lookup(pred) else { return Vec::new() };
        let a_id = a.map(|s| atoms.lookup(s));
        let b_id = b.map(|s| atoms.lookup(s));
        if matches!(a_id, Some(None)) || matches!(b_id, Some(None)) {
            return Vec::new(); // constrained to an unknown symbol
        }
        self.query2_ids(p, a_id.flatten(), b_id.flatten())
            .into_iter()
            .map(|(x, y)| (atoms.resolve(x), atoms.resolve(y)))
            .collect()
    }

    /// All facts in the canonical deterministic order: predicates by
    /// ascending atom id, then per-predicate insertion order.
    ///
    /// `by_pred` is a `HashMap` whose iteration order is seeded
    /// per-process, so every path that needs a reproducible fact
    /// sequence — semi-naive round-one delta seeding, the parallel
    /// engine's work-unit grid in `onion-exec` — goes through this
    /// instead of iterating the map directly.
    pub fn facts_in_pred_order(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        self.facts_in_pred_order_into(&mut out);
        out
    }

    /// Scratch-buffer variant of [`FactBase::facts_in_pred_order`]:
    /// clears `out` and refills it, reusing its allocation. Hot callers
    /// (the engines re-seed a delta sequence per run, the shard-local
    /// engine once per partition) keep one buffer alive instead of
    /// allocating a fresh `Vec` each time.
    pub fn facts_in_pred_order_into(&self, out: &mut Vec<Fact>) {
        out.clear();
        out.reserve(self.facts.len());
        let mut preds: Vec<AtomId> = self.by_pred.keys().copied().collect();
        preds.sort_unstable_by_key(|p| p.index());
        for p in preds {
            for args in &self.by_pred[&p] {
                out.push((p, args.clone()));
            }
        }
    }

    /// Binary-predicate query over pre-interned atoms — the id-path
    /// variant the articulation generator filters on.
    pub fn query2_ids(
        &self,
        pred: AtomId,
        a: Option<AtomId>,
        b: Option<AtomId>,
    ) -> Vec<(AtomId, AtomId)> {
        let list = match self.by_pred.get(&pred) {
            Some(l) => l,
            None => return Vec::new(),
        };
        list.iter()
            .filter(|args| args.len() == 2)
            .filter(|args| a.map(|x| args[0] == x).unwrap_or(true))
            .filter(|args| b.map(|x| args[1] == x).unwrap_or(true))
            .map(|args| (args[0], args[1]))
            .collect()
    }
}

/// Evaluation strategy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Delta-driven, indexed — the production engine.
    SemiNaive,
    /// Full re-evaluation per round, indexed.
    Naive,
    /// Full re-evaluation, **no indexes** — the heavyweight baseline.
    FullClosure,
}

/// Work and outcome counters for one inference run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferenceStats {
    /// Fixpoint rounds executed.
    pub iterations: usize,
    /// New facts derived.
    pub derived: usize,
    /// Candidate facts examined during joins — the effort proxy.
    pub atoms_examined: usize,
    /// Per-round breakdown; `rounds.len() == iterations` (the final
    /// entry is the empty round that proves the fixpoint, unless the
    /// run aborted on budget) and the `derived` fields sum to
    /// `derived` minus ground-clause fires.
    pub rounds: Vec<RoundStats>,
    /// Per-worker count of facts that crossed a merge boundary. The
    /// sequential engines leave this empty; `onion-exec`'s parallel
    /// engine records one entry (every derived fact funnels through
    /// the single per-round merge barrier); the shard-local engine
    /// records one entry per partition (arrivals scanned at that
    /// owner's local dedup — the same stream, distributed). Summing
    /// the vector is engine-independent; its *shape* shows where the
    /// merge work happened.
    pub worker_merge_facts: Vec<usize>,
    /// Per-worker count of symbols interned into worker-local atom
    /// tables during partition seeding. Empty for engines that intern
    /// straight into the canonical table.
    pub worker_interned: Vec<usize>,
}

/// Counters for one fixpoint round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Facts the round joined against: the delta carried into the
    /// round (semi-naive) or the whole fact base (naive/full-closure).
    pub delta: usize,
    /// New facts the round added.
    pub derived: usize,
    /// Candidate facts examined during the round's joins.
    pub examined: usize,
}

/// Compiled clause: variables resolved to dense slots.
#[derive(Debug, Clone)]
struct CClause {
    head_pred: AtomId,
    head_args: Vec<CArg>,
    body: Vec<CAtom>,
    nvars: usize,
}

#[derive(Debug, Clone)]
struct CAtom {
    pred: AtomId,
    args: Vec<CArg>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CArg {
    Slot(usize),
    Const(AtomId),
}

/// A forward-chaining engine for one program.
///
/// ```
/// use onion_rules::atoms::AtomTable;
/// use onion_rules::horn::HornProgram;
/// use onion_rules::infer::{FactBase, InferenceEngine};
///
/// let program = HornProgram::parse("si(X, Z) :- si(X, Y), si(Y, Z).").unwrap();
/// let mut atoms = AtomTable::new();
/// let mut facts = FactBase::new();
/// facts.add(&mut atoms, "si", &["car", "vehicle"]);
/// facts.add(&mut atoms, "si", &["vehicle", "transportation"]);
/// InferenceEngine::new(program).run(&mut atoms, &mut facts).unwrap();
/// assert!(facts.contains(&atoms, "si", &["car", "transportation"]));
/// ```
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    program: HornProgram,
    strategy: Strategy,
    /// Abort once this many facts have been derived (0 = unlimited).
    pub max_derived: usize,
    /// Abort after this many rounds (0 = unlimited).
    pub max_iterations: usize,
}

impl InferenceEngine {
    /// Engine with the production strategy (semi-naive).
    pub fn new(program: HornProgram) -> Self {
        InferenceEngine {
            program,
            strategy: Strategy::SemiNaive,
            max_derived: 0,
            max_iterations: 0,
        }
    }

    /// Selects a strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the derivation budget.
    pub fn with_budget(mut self, max_derived: usize, max_iterations: usize) -> Self {
        self.max_derived = max_derived;
        self.max_iterations = max_iterations;
        self
    }

    /// Runs the program to fixpoint on `fb`, adding derived facts.
    /// Clause predicates and constants are interned through `atoms` —
    /// the only interning an inference run performs.
    pub fn run(&self, atoms: &mut AtomTable, fb: &mut FactBase) -> Result<InferenceStats> {
        let compiled = CompiledProgram::compile(&self.program, atoms)?;
        // Ground-fact clauses fire once up front.
        let mut stats = InferenceStats::default();
        let mut delta: Vec<Fact> = compiled.fire_ground(fb);
        stats.derived = delta.len();
        // Seed delta with everything for semi-naive round one, in the
        // canonical pred-then-insertion order so the round-one delta
        // sequence is reproducible across processes.
        if self.strategy == Strategy::SemiNaive {
            delta = fb.facts_in_pred_order();
        }

        loop {
            stats.iterations += 1;
            if self.max_iterations != 0 && stats.iterations > self.max_iterations {
                return Err(RuleError::BudgetExceeded { derived: stats.derived });
            }
            let round_delta = match self.strategy {
                Strategy::SemiNaive => delta.len(),
                Strategy::Naive | Strategy::FullClosure => fb.len(),
            };
            let examined_before = stats.atoms_examined;
            let mut new_facts: Vec<Fact> = Vec::new();
            match self.strategy {
                Strategy::SemiNaive => {
                    let dix = DeltaIndex::build(&delta);
                    for c in &compiled.clauses {
                        if c.body.is_empty() {
                            continue;
                        }
                        for d in 0..c.body.len() {
                            eval_clause(
                                fb,
                                c,
                                Some(DeltaView { index: &dix, position: d }),
                                false,
                                &mut new_facts,
                                &mut stats.atoms_examined,
                            );
                        }
                    }
                }
                Strategy::Naive | Strategy::FullClosure => {
                    let unindexed = self.strategy == Strategy::FullClosure;
                    for c in &compiled.clauses {
                        if c.body.is_empty() {
                            continue;
                        }
                        eval_clause(
                            fb,
                            c,
                            None,
                            unindexed,
                            &mut new_facts,
                            &mut stats.atoms_examined,
                        );
                    }
                }
            }
            let mut added: Vec<Fact> = Vec::new();
            for f in new_facts {
                if fb.add_fact(f.0, f.1.clone()) {
                    stats.derived += 1;
                    if self.max_derived != 0 && stats.derived > self.max_derived {
                        return Err(RuleError::BudgetExceeded { derived: stats.derived });
                    }
                    added.push(f);
                }
            }
            stats.rounds.push(RoundStats {
                delta: round_delta,
                derived: added.len(),
                examined: stats.atoms_examined - examined_before,
            });
            if added.is_empty() {
                break;
            }
            delta = added;
        }
        record_run_metrics(&stats);
        Ok(stats)
    }
}

/// Reports one finished inference run to the observability registry
/// (strictly observational — shared by the sequential engine here and
/// the shard-parallel engine in `onion-exec`).
pub fn record_run_metrics(stats: &InferenceStats) {
    onion_obs::count!("onion_inference_runs_total");
    onion_obs::count!("onion_inference_rounds_total", stats.iterations);
    onion_obs::count!("onion_inference_derived_total", stats.derived);
    if onion_obs::enabled() {
        for r in &stats.rounds {
            onion_obs::observe_val!("onion_inference_round_delta", r.delta);
        }
    }
}

/// A Horn program compiled against an [`AtomTable`]: variables resolved
/// to dense slots, predicates and constants interned.
///
/// [`InferenceEngine::run`] compiles on entry and keeps the result
/// private; `onion-exec`'s parallel engine compiles once up front and
/// then drives [`CompiledProgram::eval_delta_range`] work units across
/// its pool — the compiled form is `Sync`, so workers share one copy.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    clauses: Vec<CClause>,
}

impl CompiledProgram {
    /// Compiles every clause of `program`, interning through `atoms`.
    pub fn compile(program: &HornProgram, atoms: &mut AtomTable) -> Result<CompiledProgram> {
        let mut clauses = Vec::with_capacity(program.clauses.len());
        for clause in &program.clauses {
            clauses.push(compile_clause(clause, atoms)?);
        }
        Ok(CompiledProgram { clauses })
    }

    /// Fires every ground-fact (empty-body) clause into `fb`; returns
    /// the facts that were new.
    pub fn fire_ground(&self, fb: &mut FactBase) -> Vec<Fact> {
        let mut fired = Vec::new();
        for c in &self.clauses {
            if c.body.is_empty() {
                let args: Vec<AtomId> = c
                    .head_args
                    .iter()
                    .map(|a| match a {
                        CArg::Const(s) => *s,
                        CArg::Slot(_) => unreachable!("safety: ground head"),
                    })
                    .collect();
                if fb.add_fact(c.head_pred, args.clone()) {
                    fired.push((c.head_pred, args));
                }
            }
        }
        fired
    }

    /// `(clause index, body length)` for every clause with a non-empty
    /// body — the per-round work-unit grid a parallel driver partitions
    /// into `(clause, delta position, delta range)` units.
    pub fn rule_shapes(&self) -> Vec<(usize, usize)> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.body.is_empty())
            .map(|(i, c)| (i, c.body.len()))
            .collect()
    }

    /// Evaluates one semi-naive work unit: clause `clause` with the
    /// delta at body position `position`, restricted to delta facts
    /// whose index falls in `lo..hi`.
    ///
    /// The delta atom is evaluated *outermost* (delta-first), then the
    /// remaining body atoms join in clause order against the full
    /// store, with the standard semi-naive skip rule (atoms before
    /// `position` must not match delta facts). Because every candidate
    /// examined and every head emitted belongs to exactly one delta
    /// index, partitioning `0..delta.len()` into disjoint ranges
    /// changes neither the union of emitted facts nor the summed
    /// `effort` — the invariant the parallel engine's determinism
    /// contract rests on.
    #[allow(clippy::too_many_arguments)]
    pub fn eval_delta_range(
        &self,
        fb: &FactBase,
        dix: &DeltaIndex<'_>,
        clause: usize,
        position: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<Fact>,
        effort: &mut usize,
    ) {
        let c = &self.clauses[clause];
        let atom = &c.body[position];
        let mut env: Vec<Option<AtomId>> = vec![None; c.nvars];
        let idxs = dix.pred_indices(atom.pred);
        // index lists are built in ascending order — binary-search the
        // unit's window instead of scanning the whole predicate list
        let start = idxs.partition_point(|&i| (i as usize) < lo);
        let end = idxs.partition_point(|&i| (i as usize) < hi);
        for &fi in &idxs[start..end] {
            *effort += 1;
            let fact_args = &dix.facts[fi as usize].1;
            if fact_args.len() != atom.args.len() {
                continue;
            }
            let mut trail: Vec<usize> = Vec::new();
            let mut ok = true;
            for (a, &v) in atom.args.iter().zip(fact_args.iter()) {
                match a {
                    CArg::Const(s) => {
                        if *s != v {
                            ok = false;
                            break;
                        }
                    }
                    CArg::Slot(s) => match env[*s] {
                        Some(bound) => {
                            if bound != v {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            env[*s] = Some(v);
                            trail.push(*s);
                        }
                    },
                }
            }
            if ok {
                join_skip(fb, c, 0, position, dix, &mut env, out, effort);
            }
            for s in trail {
                env[s] = None;
            }
        }
    }
}

fn compile_clause(clause: &HornClause, atoms: &mut AtomTable) -> Result<CClause> {
    if !clause.is_safe() {
        return Err(RuleError::UnsafeClause(clause.to_string()));
    }
    let mut slots: HashMap<&str, usize> = HashMap::new();
    let mut body = Vec::with_capacity(clause.body.len());
    for atom in &clause.body {
        let pred = atoms.intern(&atom.pred);
        let mut args = Vec::with_capacity(atom.args.len());
        for a in &atom.args {
            match a {
                TermArg::Const(c) => args.push(CArg::Const(atoms.intern(c))),
                TermArg::Var(v) => {
                    let n = slots.len();
                    let slot = *slots.entry(v.as_str()).or_insert(n);
                    args.push(CArg::Slot(slot));
                }
            }
        }
        body.push(CAtom { pred, args });
    }
    let head_pred = atoms.intern(&clause.head.pred);
    let mut head_args = Vec::with_capacity(clause.head.args.len());
    for a in &clause.head.args {
        match a {
            TermArg::Const(c) => head_args.push(CArg::Const(atoms.intern(c))),
            TermArg::Var(v) => {
                let slot = *slots.get(v.as_str()).expect("safety guarantees body binding");
                head_args.push(CArg::Slot(slot));
            }
        }
    }
    Ok(CClause { head_pred, head_args, nvars: slots.len(), body })
}

/// Per-round index over the delta facts (same atom ids as the main
/// store), giving the delta-constrained body position the same
/// index-driven candidate generation as the full store. Public so the
/// parallel engine in `onion-exec` can build it once per round and
/// share it (read-only) across work units.
pub struct DeltaIndex<'d> {
    facts: &'d [Fact],
    set: HashSet<&'d Fact>,
    by_pred: HashMap<AtomId, Vec<u32>>,
    by_arg: HashMap<(AtomId, u8, AtomId), Vec<u32>>,
}

impl<'d> DeltaIndex<'d> {
    /// Indexes `facts` by predicate and by every argument position.
    pub fn build(facts: &'d [Fact]) -> Self {
        let mut set: HashSet<&'d Fact> = HashSet::with_capacity(facts.len());
        let mut by_pred: HashMap<AtomId, Vec<u32>> = HashMap::new();
        let mut by_arg: HashMap<(AtomId, u8, AtomId), Vec<u32>> = HashMap::new();
        for (i, fact) in facts.iter().enumerate() {
            let (p, args) = fact;
            set.insert(fact);
            by_pred.entry(*p).or_default().push(i as u32);
            for (pos, &sym) in args.iter().enumerate() {
                by_arg.entry((*p, pos as u8, sym)).or_default().push(i as u32);
            }
        }
        DeltaIndex { facts, set, by_pred, by_arg }
    }

    /// Number of indexed delta facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True if the delta is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Candidates for `atom` under `env`: tightest index available.
    fn candidates(&self, atom: &CAtom, env: &[Option<AtomId>]) -> Vec<&'d Vec<AtomId>> {
        let bound: Option<(u8, AtomId)> =
            atom.args.iter().enumerate().find_map(|(pos, a)| match a {
                CArg::Const(s) => Some((pos as u8, *s)),
                CArg::Slot(s) => env[*s].map(|v| (pos as u8, v)),
            });
        let idxs = match bound {
            Some((pos, sym)) => self.by_arg.get(&(atom.pred, pos, sym)),
            None => self.by_pred.get(&atom.pred),
        };
        idxs.map(|v| v.iter().map(|&i| &self.facts[i as usize].1).collect()).unwrap_or_default()
    }

    /// Ascending delta indices of facts with predicate `pred`.
    fn pred_indices(&self, pred: AtomId) -> &[u32] {
        self.by_pred.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is the fact a member of this round's delta?
    fn contains(&self, fact: &Fact) -> bool {
        self.set.contains(fact)
    }
}

/// The semi-naive restriction handed down the join: body atom
/// `position` draws candidates from the delta only.
struct DeltaView<'a, 'd> {
    index: &'a DeltaIndex<'d>,
    position: usize,
}

/// Evaluates one clause, appending head instantiations to `out`.
///
/// `delta`: when present, body atom `delta.position` is restricted to
/// delta facts (semi-naive). `unindexed`: scan everything (full-closure
/// baseline).
fn eval_clause(
    fb: &FactBase,
    c: &CClause,
    delta: Option<DeltaView<'_, '_>>,
    unindexed: bool,
    out: &mut Vec<Fact>,
    effort: &mut usize,
) {
    let mut env: Vec<Option<AtomId>> = vec![None; c.nvars];
    join(fb, c, 0, delta.as_ref(), unindexed, &mut env, out, effort);
}

#[allow(clippy::too_many_arguments)]
fn join(
    fb: &FactBase,
    c: &CClause,
    i: usize,
    delta: Option<&DeltaView<'_, '_>>,
    unindexed: bool,
    env: &mut Vec<Option<AtomId>>,
    out: &mut Vec<Fact>,
    effort: &mut usize,
) {
    if i == c.body.len() {
        emit_head(c, env, out);
        return;
    }
    let atom = &c.body[i];

    // Enumerate candidate facts for this atom.
    let candidates: Vec<&Vec<AtomId>> = match delta {
        Some(dv) if dv.position == i => dv.index.candidates(atom, env),
        _ => fb_candidates(fb, atom, env, unindexed),
    };

    for fact_args in candidates {
        *effort += 1;
        if fact_args.len() != atom.args.len() {
            continue;
        }
        // semi-naive duplicate avoidance: atoms before the delta position
        // must NOT match delta facts (they were covered when that
        // position was the delta). We approximate the standard stratified
        // scheme by skipping delta facts at positions < d.
        if let Some(dv) = delta {
            if i < dv.position {
                let probe: Fact = (atom.pred, fact_args.clone());
                if dv.index.contains(&probe) {
                    continue;
                }
            }
        }
        // unify
        let mut trail: Vec<usize> = Vec::new();
        let mut ok = true;
        for (a, &v) in atom.args.iter().zip(fact_args.iter()) {
            match a {
                CArg::Const(s) => {
                    if *s != v {
                        ok = false;
                        break;
                    }
                }
                CArg::Slot(s) => match env[*s] {
                    Some(bound) => {
                        if bound != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*s] = Some(v);
                        trail.push(*s);
                    }
                },
            }
        }
        if ok {
            join(fb, c, i + 1, delta, unindexed, env, out, effort);
        }
        for s in trail {
            env[s] = None;
        }
    }
}

/// The delta-first companion of [`join`], used by
/// [`CompiledProgram::eval_delta_range`]: body atom `skip` was already
/// bound to a delta fact by the caller, the remaining atoms join in
/// clause order against the full store. Atoms before `skip` apply the
/// same semi-naive skip rule as [`join`], so the two evaluation orders
/// derive the identical per-round fact set.
#[allow(clippy::too_many_arguments)]
fn join_skip(
    fb: &FactBase,
    c: &CClause,
    i: usize,
    skip: usize,
    dix: &DeltaIndex<'_>,
    env: &mut Vec<Option<AtomId>>,
    out: &mut Vec<Fact>,
    effort: &mut usize,
) {
    if i == c.body.len() {
        emit_head(c, env, out);
        return;
    }
    if i == skip {
        join_skip(fb, c, i + 1, skip, dix, env, out, effort);
        return;
    }
    let atom = &c.body[i];
    for fact_args in fb_candidates(fb, atom, env, false) {
        *effort += 1;
        if fact_args.len() != atom.args.len() {
            continue;
        }
        if i < skip {
            let probe: Fact = (atom.pred, fact_args.clone());
            if dix.contains(&probe) {
                continue;
            }
        }
        let mut trail: Vec<usize> = Vec::new();
        let mut ok = true;
        for (a, &v) in atom.args.iter().zip(fact_args.iter()) {
            match a {
                CArg::Const(s) => {
                    if *s != v {
                        ok = false;
                        break;
                    }
                }
                CArg::Slot(s) => match env[*s] {
                    Some(bound) => {
                        if bound != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[*s] = Some(v);
                        trail.push(*s);
                    }
                },
            }
        }
        if ok {
            join_skip(fb, c, i + 1, skip, dix, env, out, effort);
        }
        for s in trail {
            env[s] = None;
        }
    }
}

/// Instantiates the clause head under `env` and appends it to `out`.
fn emit_head(c: &CClause, env: &[Option<AtomId>], out: &mut Vec<Fact>) {
    let args: Vec<AtomId> = c
        .head_args
        .iter()
        .map(|a| match a {
            CArg::Const(s) => *s,
            CArg::Slot(s) => env[*s].expect("head slots bound (safety)"),
        })
        .collect();
    out.push((c.head_pred, args));
}

/// Candidate facts for `atom` from the main store under `env`: the
/// tightest available index, or a full scan for the full-closure
/// baseline.
fn fb_candidates<'f>(
    fb: &'f FactBase,
    atom: &CAtom,
    env: &[Option<AtomId>],
    unindexed: bool,
) -> Vec<&'f Vec<AtomId>> {
    if unindexed {
        // full-closure: scan EVERYTHING, filter by predicate
        return fb
            .by_pred
            .iter()
            .flat_map(|(&p, list)| list.iter().map(move |a| (p, a)))
            .filter(|(p, _)| *p == atom.pred)
            .map(|(_, a)| a)
            .collect();
    }
    // use the tightest available index
    let bound: Option<(u8, AtomId)> = atom.args.iter().enumerate().find_map(|(pos, a)| match a {
        CArg::Const(s) => Some((pos as u8, *s)),
        CArg::Slot(s) => env[*s].map(|v| (pos as u8, v)),
    });
    match bound {
        Some((pos, sym)) => {
            let list = fb.by_pred.get(&atom.pred);
            fb.index
                .get(&(atom.pred, pos, sym))
                .map(|idxs| {
                    let list = list.expect("index implies pred list");
                    idxs.iter().map(|&j| &list[j as usize]).collect()
                })
                .unwrap_or_default()
        }
        None => fb.by_pred.get(&atom.pred).map(|l| l.iter().collect()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horn::HornProgram;

    fn transitivity() -> HornProgram {
        HornProgram::parse("p(X, Z) :- p(X, Y), p(Y, Z).").unwrap()
    }

    fn chain_fb(n: usize) -> (AtomTable, FactBase) {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for i in 0..n {
            fb.add(&mut atoms, "p", &[&format!("n{i}"), &format!("n{}", i + 1)]);
        }
        (atoms, fb)
    }

    #[test]
    fn factbase_dedup_and_query() {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        assert!(fb.add(&mut atoms, "p", &["a", "b"]));
        assert!(!fb.add(&mut atoms, "p", &["a", "b"]));
        assert!(fb.contains(&atoms, "p", &["a", "b"]));
        assert!(!fb.contains(&atoms, "p", &["b", "a"]));
        assert!(!fb.contains(&atoms, "q", &["a", "b"]));
        assert_eq!(fb.len(), 1);
        fb.add(&mut atoms, "p", &["a", "c"]);
        let from_a = fb.query2(&atoms, "p", Some("a"), None);
        assert_eq!(from_a.len(), 2);
        assert_eq!(fb.query2(&atoms, "p", Some("a"), Some("c")), vec![("a", "c")]);
        assert!(fb.query2(&atoms, "p", Some("zz"), None).is_empty());
        assert_eq!(fb.facts_of(&atoms, "p").len(), 2);
        assert!(fb.facts_of(&atoms, "nope").is_empty());
    }

    #[test]
    fn fact_path_and_string_path_coincide() {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let p = atoms.intern("si");
        let a = atoms.intern("carrier.Car");
        let b = atoms.intern("factory.Vehicle");
        assert!(fb.add_fact(p, vec![a, b]));
        assert!(fb.contains(&atoms, "si", &["carrier.Car", "factory.Vehicle"]));
        assert!(fb.contains_fact(p, &[a, b]));
        assert!(!fb.add(&mut atoms, "si", &["carrier.Car", "factory.Vehicle"]));
        assert_eq!(fb.query2_ids(p, Some(a), None), vec![(a, b)]);
    }

    #[test]
    fn transitive_closure_all_strategies_agree() {
        let n = 12;
        let expected = n * (n + 1) / 2; // pairs (i<j) over chain of n edges
        for strat in [Strategy::SemiNaive, Strategy::Naive, Strategy::FullClosure] {
            let (mut atoms, mut fb) = chain_fb(n);
            let stats = InferenceEngine::new(transitivity())
                .with_strategy(strat)
                .run(&mut atoms, &mut fb)
                .unwrap();
            assert_eq!(fb.len(), expected, "strategy {strat:?}");
            assert_eq!(stats.derived, expected - n, "strategy {strat:?}");
        }
    }

    #[test]
    fn seminaive_examines_fewer_atoms_than_fullclosure() {
        let n = 24;
        let (mut a1, mut fb1) = chain_fb(n);
        let s1 = InferenceEngine::new(transitivity())
            .with_strategy(Strategy::SemiNaive)
            .run(&mut a1, &mut fb1)
            .unwrap();
        let (mut a2, mut fb2) = chain_fb(n);
        let s2 = InferenceEngine::new(transitivity())
            .with_strategy(Strategy::FullClosure)
            .run(&mut a2, &mut fb2)
            .unwrap();
        assert_eq!(fb1.len(), fb2.len());
        assert!(
            s1.atoms_examined < s2.atoms_examined / 2,
            "semi-naive {} vs full-closure {}",
            s1.atoms_examined,
            s2.atoms_examined
        );
    }

    #[test]
    fn ground_fact_clauses_fire() {
        let prog =
            HornProgram::parse("p(a, b).\n p(b, c).\n p(X, Z) :- p(X, Y), p(Y, Z).").unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let stats = InferenceEngine::new(prog).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "p", &["a", "c"]));
        assert_eq!(stats.derived, 3);
    }

    #[test]
    fn symmetric_rule() {
        let prog = HornProgram::parse("r(Y, X) :- r(X, Y).").unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        fb.add(&mut atoms, "r", &["a", "b"]);
        InferenceEngine::new(prog).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "r", &["b", "a"]));
        assert_eq!(fb.len(), 2);
    }

    #[test]
    fn projection_between_predicates() {
        let prog = HornProgram::parse("si(X, Y) :- subclassof(X, Y).").unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        fb.add(&mut atoms, "subclassof", &["car", "vehicle"]);
        InferenceEngine::new(prog).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "si", &["car", "vehicle"]));
    }

    #[test]
    fn constants_in_body_filter() {
        let prog = HornProgram::parse("special(X) :- p(X, vehicle).").unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        fb.add(&mut atoms, "p", &["car", "vehicle"]);
        fb.add(&mut atoms, "p", &["price", "money"]);
        InferenceEngine::new(prog).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "special", &["car"]));
        assert!(!fb.contains(&atoms, "special", &["price"]));
    }

    #[test]
    fn three_atom_join() {
        let prog =
            HornProgram::parse("grandparent(X, Z) :- parent(X, Y), parent(Y, Z), person(X, X).")
                .unwrap();
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        fb.add(&mut atoms, "parent", &["a", "b"]);
        fb.add(&mut atoms, "parent", &["b", "c"]);
        fb.add(&mut atoms, "person", &["a", "a"]);
        InferenceEngine::new(prog).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "grandparent", &["a", "c"]));
        // b has no person fact, so nothing from b
        assert_eq!(fb.facts_of(&atoms, "grandparent").len(), 1);
    }

    #[test]
    fn cyclic_facts_terminate() {
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        fb.add(&mut atoms, "p", &["a", "b"]);
        fb.add(&mut atoms, "p", &["b", "a"]);
        let stats = InferenceEngine::new(transitivity()).run(&mut atoms, &mut fb).unwrap();
        // closure of a 2-cycle: all four ordered pairs
        assert_eq!(fb.len(), 4);
        assert!(stats.iterations < 10);
    }

    #[test]
    fn budget_exceeded_derived() {
        let (mut atoms, mut fb) = chain_fb(50);
        let err = InferenceEngine::new(transitivity())
            .with_budget(10, 0)
            .run(&mut atoms, &mut fb)
            .unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { derived } if derived > 10));
    }

    #[test]
    fn budget_exceeded_iterations() {
        let (mut atoms, mut fb) = chain_fb(50);
        let err = InferenceEngine::new(transitivity())
            .with_budget(0, 2)
            .run(&mut atoms, &mut fb)
            .unwrap_err();
        assert!(matches!(err, RuleError::BudgetExceeded { .. }));
    }

    #[test]
    fn empty_program_is_noop() {
        let (mut atoms, mut fb) = chain_fb(3);
        let before = fb.len();
        let stats = InferenceEngine::new(HornProgram::new()).run(&mut atoms, &mut fb).unwrap();
        assert_eq!(fb.len(), before);
        assert_eq!(stats.derived, 0);
    }

    #[test]
    fn standard_program_on_ontology_facts() {
        use crate::properties::RelationRegistry;
        let prog = HornProgram::standard(&RelationRegistry::onion_default());
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        fb.add(&mut atoms, "subclassof", &["suv", "car"]);
        fb.add(&mut atoms, "subclassof", &["car", "vehicle"]);
        InferenceEngine::new(prog).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "subclassof", &["suv", "vehicle"]), "transitivity");
        assert!(fb.contains(&atoms, "si", &["suv", "car"]), "subclass implies si");
        assert!(fb.contains(&atoms, "si", &["suv", "vehicle"]), "si closed transitively");
    }

    #[test]
    fn diamond_derivation_no_duplicates() {
        // a->b, a->c, b->d, c->d: a->d derivable two ways, counted once
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        for (x, y) in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")] {
            fb.add(&mut atoms, "p", &[x, y]);
        }
        let stats = InferenceEngine::new(transitivity()).run(&mut atoms, &mut fb).unwrap();
        assert!(fb.contains(&atoms, "p", &["a", "d"]));
        assert_eq!(stats.derived, 1);
        assert_eq!(fb.len(), 5);
    }

    #[test]
    fn shared_table_backs_many_fact_bases() {
        // the OnionSystem reuse shape: one table, fresh fact bases
        let mut atoms = AtomTable::new();
        let mut fb1 = FactBase::new();
        fb1.add(&mut atoms, "p", &["a", "b"]);
        InferenceEngine::new(transitivity()).run(&mut atoms, &mut fb1).unwrap();
        let interned = atoms.len();
        let mut fb2 = FactBase::new();
        fb2.add(&mut atoms, "p", &["a", "b"]);
        InferenceEngine::new(transitivity()).run(&mut atoms, &mut fb2).unwrap();
        assert_eq!(atoms.len(), interned, "second identical run interns nothing new");
        assert_eq!(fb1.len(), fb2.len());
    }
}
