//! # onion-rules
//!
//! The articulation-rule machinery of the ONION reproduction (paper §4).
//!
//! Articulation rules take the form `P ⇒ Q` where `P`, `Q` are (in
//! general) graph-pattern predicates; the common cases the paper walks
//! through are:
//!
//! * **simple semantic implication** `carrier.Car ⇒ factory.Vehicle`;
//! * **cascaded** rules `carrier.Car ⇒ transport.PassengerCar ⇒
//!   factory.Vehicle`, introducing a new articulation term;
//! * **conjunction** `(factory.CargoCarrier ∧ factory.Vehicle) ⇒
//!   carrier.Trucks`;
//! * **disjunction** `factory.Vehicle ⇒ (carrier.Cars ∨ carrier.Trucks)`;
//! * **functional rules** `DGToEuroFn(): carrier.DutchGuilders ⇒
//!   transport.Euro` carrying a conversion function.
//!
//! This crate provides the rule [`ast`], a [`parser`] for the textual
//! syntax above (`&`/`|` spellings for ∧/∨), the [`horn`] clause form the
//! paper adopts "for performance reasons" (§4.1), two forward-chaining
//! [`infer`] engines (semi-naive, plus a deliberately heavyweight
//! full-closure baseline used by experiment B6), relation-property
//! declarations ([`properties`]) such as the transitivity of
//! `SubclassOf`, the conversion-function registry ([`convert`]), and
//! rule-set [`conflict`] detection.
//!
//! Inference runs over interned [`atoms`]: an [`AtomTable`] maps rule
//! terms, predicates and graph nodes to dense [`atoms::AtomId`]s, and
//! the [`infer::FactBase`] stores only ids — the parser and the rule AST
//! stay string-typed (text is the expert-facing boundary), while
//! everything from `FactBase` seeding to unification joins compares
//! `u32`s. The pre-refactor string-keyed engine is preserved verbatim in
//! [`mod@reference`] as a differential baseline.

pub mod ast;
pub mod atoms;
pub mod conflict;
pub mod convert;
pub mod horn;
pub mod infer;
pub mod parser;
pub mod properties;
pub mod reference;
pub mod sharded;

pub use ast::{ArticulationRule, RuleExpr, RuleSet, Term};
pub use atoms::{AtomId, AtomTable};
pub use convert::{ConversionRegistry, Converter};
pub use horn::{Atom, HornClause, HornProgram, TermArg};
pub use infer::{
    CompiledProgram, DeltaIndex, Fact, FactBase, InferenceEngine, InferenceStats, RoundStats,
    Strategy,
};
pub use parser::parse_rules;
pub use properties::{RelationProperties, RelationRegistry};
pub use sharded::{FactPartition, ShardedFactBase};

/// Errors for rule parsing and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// Syntax error with line number and message.
    Parse {
        /// 1-based line.
        line: usize,
        /// Description.
        msg: String,
    },
    /// A functional rule references an unregistered conversion function.
    UnknownFunction(String),
    /// A Horn clause is unsafe (head variable absent from the body).
    UnsafeClause(String),
    /// Inference exceeded the configured iteration budget.
    BudgetExceeded {
        /// Facts derived before giving up.
        derived: usize,
    },
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleError::Parse { line, msg } => write!(f, "rule parse error at line {line}: {msg}"),
            RuleError::UnknownFunction(n) => write!(f, "unknown conversion function {n:?}"),
            RuleError::UnsafeClause(c) => write!(f, "unsafe Horn clause: {c}"),
            RuleError::BudgetExceeded { derived } => {
                write!(f, "inference budget exceeded after deriving {derived} facts")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RuleError>;
