//! # onion-viewer
//!
//! Text-mode substitute for the ONION viewer GUI (paper §2.2). The
//! original is "a graphical user interface … A domain expert initiates a
//! session by calling into view the ontologies of interest", can refine
//! them, import more, drop some, and drive articulation. This crate
//! provides:
//!
//! * [`ascii`] — tree renderings of ontologies and articulations for the
//!   terminal (plus DOT output via `onion_graph::dot` for real graphics);
//! * [`session`] — a scripted, replayable session model exposing the
//!   same verbs the GUI offers (load / import / drop / articulate /
//!   show), so examples and tests can drive "viewer workflows"
//!   deterministically.

pub mod ascii;
pub mod dot_clusters;
pub mod session;

pub use ascii::{render_articulation, render_ontology};
pub use dot_clusters::unified_to_dot;
pub use session::{Session, SessionCommand};
