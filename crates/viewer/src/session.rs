//! Scripted viewer sessions.
//!
//! §2.2 describes the expert's workflow: call ontologies into view,
//! refine, "import additional ontologies into the system, drop an
//! ontology from further consideration and, most importantly, specify
//! articulation rules", or "call upon the articulation generator to
//! visualize possible semantic bridges". [`Session`] replays that
//! workflow from a command list, producing a transcript.

use std::collections::BTreeMap;

use onion_articulate::{AcceptAll, Articulation, ArticulationEngine, MatcherPipeline};
use onion_lexicon::Lexicon;
use onion_ontology::Ontology;
use onion_rules::{parse_rules, RuleSet};

use crate::ascii;

/// One viewer action.
#[derive(Debug, Clone)]
pub enum SessionCommand {
    /// Bring an ontology into view (boxed: ontologies dwarf the other
    /// command payloads).
    Load(Box<Ontology>),
    /// Import from the adjacency-list text format.
    ImportText(String),
    /// Drop an ontology from consideration.
    Drop(String),
    /// Add expert articulation rules (textual syntax).
    AddRules(String),
    /// Run the articulation engine between two loaded ontologies.
    Articulate {
        /// Left ontology name.
        left: String,
        /// Right ontology name.
        right: String,
    },
    /// Render an ontology into the transcript.
    Show(String),
    /// Render the current articulation into the transcript.
    ShowArticulation,
}

/// A replayable expert session.
pub struct Session {
    lexicon: Lexicon,
    ontologies: BTreeMap<String, Ontology>,
    rules: RuleSet,
    articulation: Option<Articulation>,
    transcript: String,
}

impl Session {
    /// New session with the lexicon SKAT should consult.
    pub fn new(lexicon: Lexicon) -> Self {
        Session {
            lexicon,
            ontologies: BTreeMap::new(),
            rules: RuleSet::new(),
            articulation: None,
            transcript: String::new(),
        }
    }

    /// Loaded ontology names.
    pub fn loaded(&self) -> Vec<&str> {
        self.ontologies.keys().map(String::as_str).collect()
    }

    /// The current articulation, if one was generated.
    pub fn articulation(&self) -> Option<&Articulation> {
        self.articulation.as_ref()
    }

    /// The session transcript so far.
    pub fn transcript(&self) -> &str {
        &self.transcript
    }

    fn log(&mut self, line: impl AsRef<str>) {
        self.transcript.push_str(line.as_ref());
        if !line.as_ref().ends_with('\n') {
            self.transcript.push('\n');
        }
    }

    /// Executes one command; errors are logged into the transcript and
    /// returned.
    pub fn execute(&mut self, cmd: SessionCommand) -> Result<(), String> {
        match cmd {
            SessionCommand::Load(o) => {
                self.log(format!("> load {}", o.name()));
                self.ontologies.insert(o.name().to_string(), *o);
                Ok(())
            }
            SessionCommand::ImportText(text) => {
                self.log("> import (text)");
                match onion_ontology::import::from_text(&text) {
                    Ok(o) => {
                        self.log(format!("  imported {}", o.name()));
                        self.ontologies.insert(o.name().to_string(), o);
                        Ok(())
                    }
                    Err(e) => {
                        let msg = format!("  import failed: {e}");
                        self.log(&msg);
                        Err(msg)
                    }
                }
            }
            SessionCommand::Drop(name) => {
                self.log(format!("> drop {name}"));
                if self.ontologies.remove(&name).is_none() {
                    let msg = format!("  no ontology named {name:?}");
                    self.log(&msg);
                    return Err(msg);
                }
                Ok(())
            }
            SessionCommand::AddRules(text) => {
                self.log("> add rules");
                match parse_rules(&text) {
                    Ok(rs) => {
                        let added = self.rules.extend_dedup(&rs);
                        self.log(format!("  {added} new rule(s)"));
                        Ok(())
                    }
                    Err(e) => {
                        let msg = format!("  rule parse failed: {e}");
                        self.log(&msg);
                        Err(msg)
                    }
                }
            }
            SessionCommand::Articulate { left, right } => {
                self.log(format!("> articulate {left} {right}"));
                let (Some(l), Some(r)) = (self.ontologies.get(&left), self.ontologies.get(&right))
                else {
                    let msg = "  both ontologies must be loaded".to_string();
                    self.log(&msg);
                    return Err(msg);
                };
                let engine =
                    ArticulationEngine::new(MatcherPipeline::standard(self.lexicon.clone()));
                match engine.run(l, r, &mut AcceptAll, self.rules.clone()) {
                    Ok((art, report)) => {
                        self.log(format!(
                            "  {} rounds, {} proposed, {} accepted; {} bridges",
                            report.rounds,
                            report.proposed,
                            report.accepted,
                            art.bridges.len()
                        ));
                        self.articulation = Some(art);
                        Ok(())
                    }
                    Err(e) => {
                        let msg = format!("  articulation failed: {e}");
                        self.log(&msg);
                        Err(msg)
                    }
                }
            }
            SessionCommand::Show(name) => {
                self.log(format!("> show {name}"));
                match self.ontologies.get(&name) {
                    Some(o) => {
                        let text = ascii::render_ontology(o);
                        self.log(text);
                        Ok(())
                    }
                    None => {
                        let msg = format!("  no ontology named {name:?}");
                        self.log(&msg);
                        Err(msg)
                    }
                }
            }
            SessionCommand::ShowArticulation => {
                self.log("> show articulation");
                match &self.articulation {
                    Some(a) => {
                        let text = ascii::render_articulation(a);
                        self.log(text);
                        Ok(())
                    }
                    None => {
                        let msg = "  no articulation generated yet".to_string();
                        self.log(&msg);
                        Err(msg)
                    }
                }
            }
        }
    }

    /// Runs a whole script, stopping at the first error.
    pub fn run(&mut self, script: Vec<SessionCommand>) -> Result<(), String> {
        for cmd in script {
            self.execute(cmd)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_lexicon::builtin::transport_lexicon;
    use onion_ontology::examples::{carrier, factory};

    #[test]
    fn full_session_workflow() {
        let mut s = Session::new(transport_lexicon());
        s.run(vec![
            SessionCommand::Load(Box::new(carrier())),
            SessionCommand::Load(Box::new(factory())),
            SessionCommand::AddRules(
                "DGToEuroFn(): carrier.DutchGuilders => transport.Euro\n".into(),
            ),
            SessionCommand::Articulate { left: "carrier".into(), right: "factory".into() },
            SessionCommand::Show("carrier".into()),
            SessionCommand::ShowArticulation,
        ])
        .unwrap();
        assert_eq!(s.loaded(), vec!["carrier", "factory"]);
        let art = s.articulation().unwrap();
        assert!(!art.bridges.is_empty());
        assert!(art.ontology.defines("Euro"), "expert rule included");
        let t = s.transcript();
        assert!(t.contains("> articulate carrier factory"));
        assert!(t.contains("accepted"));
        assert!(t.contains("ontology transport"));
    }

    #[test]
    fn import_and_drop() {
        let mut s = Session::new(transport_lexicon());
        s.execute(SessionCommand::ImportText(
            "ontology depot\nedge Shed SubclassOf Building\n".into(),
        ))
        .unwrap();
        assert_eq!(s.loaded(), vec!["depot"]);
        s.execute(SessionCommand::Drop("depot".into())).unwrap();
        assert!(s.loaded().is_empty());
    }

    #[test]
    fn errors_are_logged_and_returned() {
        let mut s = Session::new(transport_lexicon());
        assert!(s.execute(SessionCommand::Drop("ghost".into())).is_err());
        assert!(s.execute(SessionCommand::Show("ghost".into())).is_err());
        assert!(s.execute(SessionCommand::ShowArticulation).is_err());
        assert!(s.execute(SessionCommand::AddRules("not a rule".into())).is_err());
        assert!(s
            .execute(SessionCommand::Articulate { left: "a".into(), right: "b".into() })
            .is_err());
        assert!(s.execute(SessionCommand::ImportText("garbage here".into())).is_err());
        let t = s.transcript();
        assert!(t.contains("no ontology named"));
        assert!(t.contains("rule parse failed"));
    }
}
