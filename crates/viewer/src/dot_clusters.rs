//! Clustered DOT rendering of a unified ontology — the Fig. 2 layout:
//! each source ontology in its own box, the articulation ontology in the
//! centre, bridges crossing between clusters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use onion_graph::OntGraph;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn abbrev(label: &str) -> &str {
    match label {
        "SubclassOf" => "S",
        "AttributeOf" => "A",
        "InstanceOf" => "I",
        "SemanticImplication" | "SIBridge" => "SI",
        other => other,
    }
}

/// Renders a unified graph (qualified `onto.Term` labels) as a DOT
/// digraph with one cluster per ontology namespace. Edges within a
/// namespace use solid arrows; cross-namespace edges (the bridges) are
/// dashed, as in the paper's figure.
pub fn unified_to_dot(unified: &OntGraph) -> String {
    // namespace -> (node id, local label)
    let mut clusters: BTreeMap<String, Vec<(usize, String)>> = BTreeMap::new();
    for n in unified.nodes() {
        let (ns, local) = match n.label.split_once('.') {
            Some((o, l)) if !o.is_empty() && !l.is_empty() => (o.to_string(), l.to_string()),
            _ => ("_unqualified".to_string(), n.label.to_string()),
        };
        clusters.entry(ns).or_default().push((n.id.index(), local));
    }

    let mut out = String::from("digraph unified {\n");
    out.push_str("  rankdir=BT;\n  node [shape=box, fontname=\"Helvetica\"];\n");
    for (i, (ns, nodes)) in clusters.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{i} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(ns));
        out.push_str("    style=rounded;\n");
        for (id, local) in nodes {
            let _ = writeln!(out, "    n{id} [label=\"{}\"];", escape(local));
        }
        out.push_str("  }\n");
    }
    for e in unified.edges() {
        let s = unified.node_label(e.src).expect("live");
        let d = unified.node_label(e.dst).expect("live");
        let ns = |l: &str| l.split_once('.').map(|(o, _)| o.to_string()).unwrap_or_default();
        let style = if ns(s) == ns(d) { "solid" } else { "dashed" };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\", style={}];",
            e.src.index(),
            e.dst.index(),
            escape(abbrev(e.label)),
            style
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    #[test]
    fn fig2_unified_renders_three_clusters() {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        let u = art.unified(&[&c, &f]).unwrap();
        let dot = unified_to_dot(&u);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"carrier\""));
        assert!(dot.contains("label=\"factory\""));
        assert!(dot.contains("label=\"transport\""));
        // bridges dashed, internal edges solid, SIBridge abbreviated
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        assert!(dot.contains("label=\"SI\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn unqualified_nodes_get_their_own_cluster() {
        let mut g = OntGraph::new("u");
        g.ensure_edge_by_labels("a.X", "S", "loose").unwrap();
        let dot = unified_to_dot(&g);
        assert!(dot.contains("label=\"_unqualified\""));
        assert!(dot.contains("style=dashed"), "cross-cluster edge");
    }
}
