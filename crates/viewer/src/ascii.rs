//! ASCII renderings of ontologies and articulations.

use std::collections::HashSet;
use std::fmt::Write as _;

use onion_articulate::Articulation;
use onion_graph::{rel, NodeId};
use onion_ontology::Ontology;

/// Renders the subclass forest of an ontology with attribute and
/// instance annotations, as the viewer would show it:
///
/// ```text
/// ontology carrier
/// └─ Transportation
///    ├─ Cars  [Price, Owner]  {MyCar}
///    │  └─ SUV
///    └─ Trucks  [Model, Owner, Price]
/// ```
pub fn render_ontology(o: &Ontology) -> String {
    let g = o.graph();
    let mut out = format!("ontology {}\n", o.name());
    // roots: nodes with no outgoing SubclassOf edge that head a hierarchy,
    // plus isolated class nodes that are not attributes/instances
    let mut is_attr_or_inst: HashSet<NodeId> = HashSet::new();
    for e in g.edges() {
        if e.label == rel::ATTRIBUTE_OF || e.label == rel::INSTANCE_OF {
            is_attr_or_inst.insert(e.src);
        }
    }
    let mut roots: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.out_neighbors(n, rel::SUBCLASS_OF).next().is_none())
        .filter(|n| !is_attr_or_inst.contains(n))
        .collect();
    roots.sort_by_key(|&n| g.node_label(n).map(str::to_string));
    let count = roots.len();
    for (i, root) in roots.into_iter().enumerate() {
        render_node(o, root, "", i + 1 == count, &mut out, &mut HashSet::new());
    }
    out
}

fn render_node(
    o: &Ontology,
    n: NodeId,
    prefix: &str,
    last: bool,
    out: &mut String,
    on_path: &mut HashSet<NodeId>,
) {
    let g = o.graph();
    let label = g.node_label(n).expect("live");
    let connector = if last { "└─ " } else { "├─ " };
    let mut line = format!("{prefix}{connector}{label}");
    let attrs = o.attributes_of(label);
    if !attrs.is_empty() {
        let _ = write!(line, "  [{}]", attrs.join(", "));
    }
    let insts = o.instances_of(label);
    if !insts.is_empty() {
        let _ = write!(line, "  {{{}}}", insts.join(", "));
    }
    out.push_str(&line);
    out.push('\n');
    if !on_path.insert(n) {
        out.push_str(&format!("{prefix}   (cycle)\n"));
        return;
    }
    let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
    let mut children: Vec<NodeId> = g.in_neighbors(n, rel::SUBCLASS_OF).collect();
    children.sort_by_key(|&c| g.node_label(c).map(str::to_string));
    let total = children.len();
    for (i, c) in children.into_iter().enumerate() {
        render_node(o, c, &child_prefix, i + 1 == total, out, on_path);
    }
    on_path.remove(&n);
}

/// Renders an articulation: its ontology tree followed by the bridge
/// list grouped by kind.
pub fn render_articulation(a: &Articulation) -> String {
    let mut out = render_ontology(&a.ontology);
    out.push_str(&format!("bridges ({}):\n", a.bridges.len()));
    let mut bridges: Vec<String> =
        a.bridges.iter().map(|b| format!("  {} ({:?})", b, b.kind)).collect();
    bridges.sort();
    for b in bridges {
        out.push_str(&b);
        out.push('\n');
    }
    out.push_str(&format!("rules ({}):\n", a.rules.len()));
    for r in a.rules.iter() {
        out.push_str(&format!("  {r}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_ontology::examples::{carrier, factory, fig2_rules};
    use onion_ontology::OntologyBuilder;

    #[test]
    fn renders_hierarchy_with_annotations() {
        let c = carrier();
        let text = render_ontology(&c);
        assert!(text.starts_with("ontology carrier\n"));
        assert!(text.contains("Transportation"));
        assert!(text.contains("└─ SUV") || text.contains("├─ SUV"));
        assert!(text.contains("[") && text.contains("Price"), "attributes listed");
        assert!(text.contains("{MyCar}"), "instances listed");
        // child indented under parent
        let cars_line = text.lines().find(|l| l.contains("Cars")).unwrap();
        let suv_line = text.lines().find(|l| l.contains("SUV")).unwrap();
        let indent = |l: &str| l.chars().take_while(|c| !c.is_alphanumeric()).count();
        assert!(indent(suv_line) > indent(cars_line));
    }

    #[test]
    fn renders_cycles_without_hanging() {
        let o = OntologyBuilder::new("weird")
            .class_under("A", "B")
            .class_under("B", "A")
            .build()
            .unwrap();
        let text = render_ontology(&o);
        // both nodes are non-roots (each has an outgoing subclass edge), so
        // the forest is empty — but rendering must not hang or panic
        assert!(text.starts_with("ontology weird"));
    }

    #[test]
    fn renders_articulation_with_bridges() {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        let text = render_articulation(&art);
        assert!(text.contains("ontology transport"));
        assert!(text.contains("bridges ("));
        assert!(text.contains("SIBridge"));
        assert!(text.contains("rules ("));
        assert!(text.contains("DGToEuroFn"));
    }

    #[test]
    fn empty_ontology_renders_header_only() {
        let o = OntologyBuilder::new("empty").build().unwrap();
        assert_eq!(render_ontology(&o), "ontology empty\n");
    }
}
