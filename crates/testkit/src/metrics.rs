//! Precision/recall against planted ground truth.

use std::collections::HashSet;

use onion_rules::ArticulationRule;

/// Precision/recall/F1 summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrMetrics {
    /// Proposals that are in the truth.
    pub true_positives: usize,
    /// Proposals not in the truth.
    pub false_positives: usize,
    /// Truth pairs never proposed.
    pub false_negatives: usize,
}

impl PrMetrics {
    /// `tp / (tp + fp)`, 1.0 when nothing was proposed.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`, 1.0 when the truth is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Scores simple-implication rules against truth pairs (either
/// direction of a pair counts — the articulation makes them equivalent).
pub fn precision_recall(
    rules: &[ArticulationRule],
    truth: &HashSet<(String, String)>,
) -> PrMetrics {
    let mut found: HashSet<(String, String)> = HashSet::new();
    let mut false_positives = 0usize;
    for rule in rules {
        if !rule.is_simple_implication() {
            continue; // compound rules are not pair claims
        }
        let terms = rule.terms();
        let pair = (terms[0].to_string(), terms[1].to_string());
        let rev = (pair.1.clone(), pair.0.clone());
        if truth.contains(&pair) {
            found.insert(pair);
        } else if truth.contains(&rev) {
            found.insert(rev);
        } else {
            false_positives += 1;
        }
    }
    PrMetrics {
        true_positives: found.len(),
        false_positives,
        false_negatives: truth.len() - found.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_rules::Term;

    fn rule(a: &str, b: &str) -> ArticulationRule {
        let (ao, an) = a.split_once('.').unwrap();
        let (bo, bn) = b.split_once('.').unwrap();
        ArticulationRule::term_implies(Term::qualified(ao, an), Term::qualified(bo, bn))
    }

    fn truth(pairs: &[(&str, &str)]) -> HashSet<(String, String)> {
        pairs.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect()
    }

    #[test]
    fn perfect_score() {
        let t = truth(&[("l.A", "r.B")]);
        let m = precision_recall(&[rule("l.A", "r.B")], &t);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn reverse_direction_counts() {
        let t = truth(&[("l.A", "r.B")]);
        let m = precision_recall(&[rule("r.B", "l.A")], &t);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 0);
    }

    #[test]
    fn false_positive_and_negative() {
        let t = truth(&[("l.A", "r.B"), ("l.C", "r.D")]);
        let m = precision_recall(&[rule("l.A", "r.B"), rule("l.X", "r.Y")], &t);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
    }

    #[test]
    fn duplicates_counted_once() {
        let t = truth(&[("l.A", "r.B")]);
        let m = precision_recall(&[rule("l.A", "r.B"), rule("l.A", "r.B")], &t);
        assert_eq!(m.true_positives, 1);
    }

    #[test]
    fn empty_cases() {
        let m = precision_recall(&[], &truth(&[]));
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        let m = precision_recall(&[], &truth(&[("l.A", "r.B")]));
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }
}
