//! Filesystem fixtures: unique-per-test temp directories.
//!
//! The durability suites (WAL round-trips, kill-and-restart recovery
//! proptests, the B13 bench) all need scratch directories that are (a)
//! unique per test so parallel test threads never collide, and (b)
//! removed when the test ends, even on panic (drop still runs during
//! unwinding). [`TempDir`] is that: a directory under the system temp
//! root named by tag, pid, and a process-wide counter.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temp directory, deleted on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    cleanup: bool,
}

impl TempDir {
    /// Creates `{system-temp}/onion-{tag}-{pid}-{n}`, which is
    /// guaranteed fresh: the per-process counter `n` never repeats and
    /// the pid separates concurrent processes.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("onion-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path, cleanup: true }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, rel: impl AsRef<Path>) -> PathBuf {
        self.path.join(rel)
    }

    /// Disables cleanup (debugging a failing test: the directory
    /// survives for inspection).
    pub fn keep(mut self) -> PathBuf {
        self.cleanup = false;
        self.path.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if self.cleanup {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_cleaned_up() {
        let a = TempDir::new("fs");
        let b = TempDir::new("fs");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.join("x.txt"), b"content").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop removes the tree including contents");
        drop(b);
    }

    #[test]
    fn keep_disables_cleanup() {
        let d = TempDir::new("fs-keep");
        let path = d.keep();
        assert!(path.is_dir());
        std::fs::remove_dir_all(&path).unwrap();
    }
}
