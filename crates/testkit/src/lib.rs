//! # onion-testkit
//!
//! Workload substrate for the ONION reproduction's tests and benchmarks:
//!
//! * [`gen`] — seeded synthetic ontology generation (class forests with
//!   configurable size, branching, attribute/instance density);
//! * [`overlap`] — pairs of ontologies sharing a planted concept subset
//!   with per-side renaming, plus the matching ground-truth
//!   correspondence and a lexicon that knows the renames (drives the
//!   precision/recall measurements of experiment B2);
//! * [`workload`] — update streams with a tunable articulation-locality
//!   knob (experiments B1/B8) and query workloads (B4);
//! * [`baseline`] — the **GlobalMerge** integrator: the build-one-giant-
//!   schema approach the paper argues against (§1), used as the
//!   comparison point in B1/B4/B7;
//! * [`metrics`] — precision/recall against planted truth.

pub mod baseline;
pub mod fs;
pub mod gen;
pub mod infer;
pub mod metrics;
pub mod overlap;
pub mod workload;

pub use baseline::GlobalMerge;
pub use gen::{generate_dag, generate_graph, generate_ontology, GraphSpec, OntologySpec};
pub use infer::{deep_chain_ontology, seed_subclass_facts, seed_subclass_facts_strings};
pub use metrics::{precision_recall, PrMetrics};
pub use overlap::{overlap_pair, OverlapPair, OverlapSpec};
pub use workload::{closure_sources, random_queries, update_stream, UpdateSpec};
