//! Fact-base seeding helpers for inference tests and bench B12.
//!
//! Both functions seed `subclassof(src, dst)` facts — one per live
//! `SubclassOf` edge of the ontology's graph, endpoints qualified by the
//! ontology name — exactly the way the articulation generator's
//! inference expansion does. The two paths exist to be *compared*:
//!
//! * [`seed_subclass_facts`] drives the interned engine through
//!   [`AtomTable::graph_atoms`] — no string is formatted or hashed per
//!   fact;
//! * [`seed_subclass_facts_strings`] replays the pre-refactor string
//!   path (`format!("{onto}.{label}")` per endpoint) into the frozen
//!   [`mod@reference`] fact base.
//!
//! The `inference_props` suite asserts the two fact sets are identical;
//! B12 records their build-time gap.

use onion_graph::rel;
use onion_ontology::Ontology;
use onion_rules::infer::FactBase;
use onion_rules::{reference, AtomTable};

/// Seeds `fb` with one interned `subclassof` fact per live subclass
/// edge; returns how many facts were added.
pub fn seed_subclass_facts(onto: &Ontology, atoms: &mut AtomTable, fb: &mut FactBase) -> usize {
    let g = onto.graph();
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return 0 };
    let pred = atoms.intern("subclassof");
    let mut cursor = atoms.graph_atoms(g);
    let mut added = 0;
    for (_, src, lid, dst) in g.edge_entries() {
        if lid != sub {
            continue;
        }
        let (Some(s), Some(d)) = (cursor.node_atom(src), cursor.node_atom(dst)) else { continue };
        if fb.add_fact(pred, vec![s, d]) {
            added += 1;
        }
    }
    added
}

/// Seeds the string-keyed reference fact base the pre-refactor way;
/// returns how many facts were added.
pub fn seed_subclass_facts_strings(onto: &Ontology, fb: &mut reference::FactBase) -> usize {
    let g = onto.graph();
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return 0 };
    let mut added = 0;
    for (_, src, lid, dst) in g.edge_entries() {
        if lid != sub {
            continue;
        }
        let (Some(sl), Some(dl)) = (g.node_label(src), g.node_label(dst)) else { continue };
        let s = format!("{}.{}", g.name(), sl);
        let d = format!("{}.{}", g.name(), dl);
        if fb.add("subclassof", &[&s, &d]) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_ontology, OntologySpec};

    #[test]
    fn interned_and_string_seeding_agree() {
        let onto = generate_ontology(&OntologySpec::sized("seedcheck", 7, 80));
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let n1 = seed_subclass_facts(&onto, &mut atoms, &mut fb);
        let mut sref = reference::FactBase::new();
        let n2 = seed_subclass_facts_strings(&onto, &mut sref);
        assert_eq!(n1, n2);
        assert_eq!(fb.len(), sref.len());
        let mut a: Vec<(String, String)> = fb
            .query2(&atoms, "subclassof", None, None)
            .into_iter()
            .map(|(x, y)| (x.to_string(), y.to_string()))
            .collect();
        let mut b: Vec<(String, String)> = sref
            .query2("subclassof", None, None)
            .into_iter()
            .map(|(x, y)| (x.to_string(), y.to_string()))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "both paths seed the identical fact set");
    }
}
