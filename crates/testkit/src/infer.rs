//! Fact-base seeding helpers for inference tests and bench B12.
//!
//! Both functions seed `subclassof(src, dst)` facts — one per live
//! `SubclassOf` edge of the ontology's graph, endpoints qualified by the
//! ontology name — exactly the way the articulation generator's
//! inference expansion does. The two paths exist to be *compared*:
//!
//! * [`seed_subclass_facts`] drives the interned engine through
//!   [`AtomTable::graph_atoms`] — no string is formatted or hashed per
//!   fact;
//! * [`seed_subclass_facts_strings`] replays the pre-refactor string
//!   path (`format!("{onto}.{label}")` per endpoint) into the frozen
//!   [`mod@reference`] fact base.
//!
//! The `inference_props` suite asserts the two fact sets are identical;
//! B12 records their build-time gap.

use onion_graph::rel;
use onion_ontology::{Ontology, OntologyBuilder};
use onion_rules::infer::FactBase;
use onion_rules::{reference, AtomTable};

/// A deep-hierarchy ontology: `chains` disjoint `SubclassOf` chains,
/// each `depth` classes deep, hanging off one shared root —
/// `chains × depth + 1` classes in total, class `c{i}_{j}` being the
/// `j`-th link of chain `i`.
///
/// This is the adversarial shape for saturation: transitive closure
/// over a depth-`d` chain derives `Θ(d²)` facts, and a naive engine
/// re-derives all of them every round while semi-naive's per-round
/// delta shrinks to the frontier. The `seminaive_props` regression
/// test and bench B12's deep tier both build on this, pinning round
/// counts and per-round deltas via [`InferenceStats`]
/// (semi-naive doubles the reachable path length each round, so the
/// fixpoint lands in `O(log depth)` rounds).
///
/// [`InferenceStats`]: onion_rules::InferenceStats
pub fn deep_chain_ontology(name: &str, chains: usize, depth: usize) -> Ontology {
    let mut builder = OntologyBuilder::new(name).class("Root");
    for c in 0..chains {
        let mut parent = "Root".to_string();
        for j in 0..depth {
            let label = format!("c{c}_{j}");
            builder = builder.class_under(&label, &parent);
            parent = label;
        }
    }
    builder.build().expect("deep-chain ontology is consistent by construction")
}

/// Seeds `fb` with one interned `subclassof` fact per live subclass
/// edge; returns how many facts were added.
pub fn seed_subclass_facts(onto: &Ontology, atoms: &mut AtomTable, fb: &mut FactBase) -> usize {
    let g = onto.graph();
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return 0 };
    let pred = atoms.intern("subclassof");
    let mut cursor = atoms.graph_atoms(g);
    let mut added = 0;
    for (_, src, lid, dst) in g.edge_entries() {
        if lid != sub {
            continue;
        }
        let (Some(s), Some(d)) = (cursor.node_atom(src), cursor.node_atom(dst)) else { continue };
        if fb.add_fact(pred, vec![s, d]) {
            added += 1;
        }
    }
    added
}

/// Seeds the string-keyed reference fact base the pre-refactor way;
/// returns how many facts were added.
pub fn seed_subclass_facts_strings(onto: &Ontology, fb: &mut reference::FactBase) -> usize {
    let g = onto.graph();
    let Some(sub) = g.label_id(rel::SUBCLASS_OF) else { return 0 };
    let mut added = 0;
    for (_, src, lid, dst) in g.edge_entries() {
        if lid != sub {
            continue;
        }
        let (Some(sl), Some(dl)) = (g.node_label(src), g.node_label(dst)) else { continue };
        let s = format!("{}.{}", g.name(), sl);
        let d = format!("{}.{}", g.name(), dl);
        if fb.add("subclassof", &[&s, &d]) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_ontology, OntologySpec};

    #[test]
    fn deep_chain_seeds_one_edge_per_class() {
        let onto = deep_chain_ontology("deep", 3, 5);
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let n = seed_subclass_facts(&onto, &mut atoms, &mut fb);
        assert_eq!(n, 3 * 5, "every non-root class contributes exactly one subclass edge");
    }

    #[test]
    fn interned_and_string_seeding_agree() {
        let onto = generate_ontology(&OntologySpec::sized("seedcheck", 7, 80));
        let mut atoms = AtomTable::new();
        let mut fb = FactBase::new();
        let n1 = seed_subclass_facts(&onto, &mut atoms, &mut fb);
        let mut sref = reference::FactBase::new();
        let n2 = seed_subclass_facts_strings(&onto, &mut sref);
        assert_eq!(n1, n2);
        assert_eq!(fb.len(), sref.len());
        let mut a: Vec<(String, String)> = fb
            .query2(&atoms, "subclassof", None, None)
            .into_iter()
            .map(|(x, y)| (x.to_string(), y.to_string()))
            .collect();
        let mut b: Vec<(String, String)> = sref
            .query2("subclassof", None, None)
            .into_iter()
            .map(|(x, y)| (x.to_string(), y.to_string()))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "both paths seed the identical fact set");
    }
}
