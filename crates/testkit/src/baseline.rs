//! The **GlobalMerge** baseline: one unified global schema.
//!
//! §1 of the paper: "Previous work on information integration and on
//! schema integration has been based on the construction of a unified
//! database schema. However, unification of schemas does not scale well
//! since broad schema integration leads to huge and difficult-to-
//! maintain schemas." This module implements that strawman faithfully so
//! the benchmarks can measure the contrast:
//!
//! * build: merge every source graph into one global graph, unifying
//!   nodes whose labels are equal or known-synonymous (the same signals
//!   ONION's matchers use — the comparison is about *architecture*, not
//!   matcher quality);
//! * maintain: any source change invalidates the merge; the baseline
//!   re-merges from scratch (it has no difference operator to scope the
//!   work);
//! * query: answered directly against the global graph's merged classes.

use std::collections::HashMap;

use onion_graph::{rel, OntGraph};
use onion_lexicon::normalize::normalize;
use onion_lexicon::Lexicon;
use onion_ontology::Ontology;

/// The global unified schema.
#[derive(Debug)]
pub struct GlobalMerge {
    graph: OntGraph,
    /// qualified source term -> merged global label
    mapping: HashMap<String, String>,
    merges: usize,
}

impl GlobalMerge {
    /// Builds the global schema from `sources`, unifying labels that are
    /// equal after normalisation or synonymous per `lexicon`.
    pub fn build(sources: &[&Ontology], lexicon: &Lexicon) -> GlobalMerge {
        let mut graph = OntGraph::new("global");
        let mut mapping: HashMap<String, String> = HashMap::new();
        // canonical label per concept: first-seen label wins
        let mut canon_by_norm: HashMap<String, String> = HashMap::new();
        let mut merges = 0usize;

        for o in sources {
            let g = o.graph();
            for n in g.nodes() {
                let qualified = format!("{}.{}", o.name(), n.label);
                let norm = normalize(n.label);
                // 1. direct normalised-label hit
                let canon = if let Some(c) = canon_by_norm.get(&norm) {
                    merges += 1;
                    c.clone()
                } else {
                    // 2. synonym hit against existing canonical concepts
                    let syn = lexicon
                        .synonyms_of(n.label)
                        .into_iter()
                        .find_map(|s| canon_by_norm.get(s).cloned());
                    match syn {
                        Some(c) => {
                            merges += 1;
                            c
                        }
                        None => n.label.to_string(),
                    }
                };
                canon_by_norm.insert(norm, canon.clone());
                // register synonym forms so later sources can hit them
                graph.ensure_node(&canon).expect("labels are non-empty");
                mapping.insert(qualified, canon);
            }
        }
        for o in sources {
            let g = o.graph();
            for e in g.edges() {
                let s = &mapping[&format!("{}.{}", o.name(), g.node_label(e.src).expect("live"))];
                let d = &mapping[&format!("{}.{}", o.name(), g.node_label(e.dst).expect("live"))];
                if s != d {
                    let _ = graph.ensure_edge_by_labels(s, e.label, d);
                } // merged self-edges are dropped
            }
        }
        GlobalMerge { graph, mapping, merges }
    }

    /// The merged global graph.
    pub fn graph(&self) -> &OntGraph {
        &self.graph
    }

    /// How a qualified source term maps into the global schema.
    pub fn global_label(&self, source: &str, term: &str) -> Option<&str> {
        self.mapping.get(&format!("{source}.{term}")).map(String::as_str)
    }

    /// Number of cross-source node unifications performed.
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// The maintenance story: rebuild everything (the baseline has no
    /// incremental path — that is the point of the comparison).
    pub fn rebuild(sources: &[&Ontology], lexicon: &Lexicon) -> GlobalMerge {
        Self::build(sources, lexicon)
    }

    /// All global classes a term's instances belong to: the merged class
    /// and its transitive superclasses (used by the B4 query baseline).
    pub fn classes_of(&self, source: &str, term: &str) -> Vec<String> {
        let Some(global) = self.global_label(source, term) else {
            return Vec::new();
        };
        let Some(n) = self.graph.node_by_label(global) else {
            return Vec::new();
        };
        let mut v: Vec<String> = onion_graph::closure::ancestors(&self.graph, n, rel::SUBCLASS_OF)
            .into_iter()
            .map(|m| self.graph.node_label(m).expect("live").to_string())
            .collect();
        v.push(global.to_string());
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_lexicon::builtin::transport_lexicon;
    use onion_ontology::examples::{carrier, factory};

    #[test]
    fn merges_identical_and_synonymous_labels() {
        let c = carrier();
        let f = factory();
        let lex = transport_lexicon();
        let gm = GlobalMerge::build(&[&c, &f], &lex);
        // Transportation appears in both, merged once
        assert_eq!(gm.global_label("carrier", "Transportation"), Some("Transportation"));
        assert_eq!(gm.global_label("factory", "Transportation"), Some("Transportation"));
        assert!(gm.merges() > 0);
        // node count strictly below the sum
        assert!(gm.graph().node_count() < c.term_count() + f.term_count());
    }

    #[test]
    fn synonym_merge_via_lexicon() {
        let c = carrier();
        let f = factory();
        let lex = transport_lexicon();
        let gm = GlobalMerge::build(&[&c, &f], &lex);
        // carrier.Trucks and factory.Truck normalise to the same lemma
        let ct = gm.global_label("carrier", "Trucks").unwrap();
        let ft = gm.global_label("factory", "Truck").unwrap();
        assert_eq!(ct, ft);
    }

    #[test]
    fn edges_carried_over() {
        let c = carrier();
        let f = factory();
        let gm = GlobalMerge::build(&[&c, &f], &transport_lexicon());
        let suv = gm.global_label("carrier", "SUV").unwrap().to_string();
        let cars = gm.global_label("carrier", "Cars").unwrap().to_string();
        assert!(gm.graph().has_edge(&suv, "SubclassOf", &cars));
    }

    #[test]
    fn rebuild_equals_build() {
        let c = carrier();
        let f = factory();
        let lex = transport_lexicon();
        let a = GlobalMerge::build(&[&c, &f], &lex);
        let b = GlobalMerge::rebuild(&[&c, &f], &lex);
        assert!(a.graph().same_shape(b.graph()));
    }

    #[test]
    fn classes_of_include_superclasses() {
        let c = carrier();
        let f = factory();
        let gm = GlobalMerge::build(&[&c, &f], &transport_lexicon());
        let classes = gm.classes_of("carrier", "SUV");
        assert!(classes.iter().any(|x| x.contains("Cars") || x.contains("Car")), "{classes:?}");
        assert!(gm.classes_of("carrier", "Ghost").is_empty());
    }
}
