//! Controlled-overlap ontology pairs with planted ground truth.
//!
//! Experiment B2 needs pairs of ontologies that share a known fraction
//! of concepts, where the shared concepts may be *renamed* differently
//! on each side (so exact label matching alone cannot find them, but a
//! lexicon that knows the synonym pairs can). The generator plants:
//!
//! * `concepts × overlap` shared concepts, each appearing in both
//!   ontologies (same meaning, possibly different label);
//! * the remaining concepts split between the two sides;
//! * a ground-truth list of qualified-term pairs;
//! * a lexicon whose synsets cover exactly the planted renames.

use onion_lexicon::generator::pseudo_word;
use onion_lexicon::Lexicon;
use onion_ontology::{Ontology, OntologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for an overlapping pair.
#[derive(Debug, Clone)]
pub struct OverlapSpec {
    /// RNG seed.
    pub seed: u64,
    /// Total distinct concepts across both sides.
    pub concepts: usize,
    /// Fraction of concepts present in both ontologies (0..=1).
    pub overlap: f64,
    /// Probability that a shared concept is *renamed* on the second side
    /// (found only via the lexicon).
    pub rename_prob: f64,
    /// Maximum children per class in each tree.
    pub max_children: usize,
}

impl Default for OverlapSpec {
    fn default() -> Self {
        OverlapSpec { seed: 42, concepts: 100, overlap: 0.2, rename_prob: 0.5, max_children: 5 }
    }
}

/// A generated pair plus its planted truth.
#[derive(Debug)]
pub struct OverlapPair {
    /// First ontology (named `left`).
    pub left: Ontology,
    /// Second ontology (named `right`).
    pub right: Ontology,
    /// Ground-truth equivalences as qualified strings
    /// `("left.X", "right.Y")`.
    pub truth: Vec<(String, String)>,
    /// Lexicon covering the planted renames (synonym per renamed pair).
    pub lexicon: Lexicon,
}

impl OverlapPair {
    /// Ground truth as a set for membership checks.
    pub fn truth_set(&self) -> std::collections::HashSet<(String, String)> {
        self.truth.iter().cloned().collect()
    }
}

fn unique_label(
    rng: &mut StdRng,
    used: &mut std::collections::HashSet<String>,
    ord: usize,
) -> String {
    loop {
        let w = pseudo_word(rng);
        let mut chars = w.chars();
        let first = chars.next().map(|c| c.to_uppercase().to_string()).unwrap_or_default();
        let label = format!("{first}{}{ord}", chars.as_str());
        if used.insert(label.clone()) {
            return label;
        }
    }
}

/// Generates an overlapping pair per `spec`.
pub fn overlap_pair(spec: &OverlapSpec) -> OverlapPair {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut used = std::collections::HashSet::new();
    let shared_n = ((spec.concepts as f64) * spec.overlap.clamp(0.0, 1.0)).round() as usize;
    let rest = spec.concepts - shared_n;
    let left_only_n = rest / 2;
    let right_only_n = rest - left_only_n;

    let mut lexicon = Lexicon::new();
    let mut truth = Vec::with_capacity(shared_n);

    // planted shared concepts: (left label, right label)
    let mut shared: Vec<(String, String)> = Vec::with_capacity(shared_n);
    for i in 0..shared_n {
        let l = unique_label(&mut rng, &mut used, i);
        let r = if rng.gen_bool(spec.rename_prob.clamp(0.0, 1.0)) {
            let r = unique_label(&mut rng, &mut used, i);
            lexicon.add_synset([l.as_str(), r.as_str()], None);
            r
        } else {
            l.clone()
        };
        truth.push((format!("left.{l}"), format!("right.{r}")));
        shared.push((l, r));
    }
    let left_only: Vec<String> =
        (0..left_only_n).map(|i| unique_label(&mut rng, &mut used, shared_n + i)).collect();
    let right_only: Vec<String> = (0..right_only_n)
        .map(|i| unique_label(&mut rng, &mut used, shared_n + left_only_n + i))
        .collect();

    let left = build_tree(
        "left",
        shared.iter().map(|(l, _)| l.clone()).chain(left_only).collect(),
        spec.max_children,
        &mut rng,
    );
    let right = build_tree(
        "right",
        shared.iter().map(|(_, r)| r.clone()).chain(right_only).collect(),
        spec.max_children,
        &mut rng,
    );
    OverlapPair { left, right, truth, lexicon }
}

fn build_tree(
    name: &str,
    mut labels: Vec<String>,
    max_children: usize,
    rng: &mut StdRng,
) -> Ontology {
    // shuffle so shared concepts scatter through the hierarchy
    for i in (1..labels.len()).rev() {
        let j = rng.gen_range(0..=i);
        labels.swap(i, j);
    }
    let mut builder = OntologyBuilder::new(name).class("Root");
    let mut nodes = vec!["Root".to_string()];
    let mut child_count = vec![0usize];
    for label in labels {
        let mut parent = rng.gen_range(0..nodes.len());
        let mut guard = 0;
        while child_count[parent] >= max_children && guard < 32 {
            parent = rng.gen_range(0..nodes.len());
            guard += 1;
        }
        builder = builder.class_under(&label, &nodes[parent].clone());
        child_count[parent] += 1;
        nodes.push(label);
        child_count.push(0);
    }
    builder.build().expect("generated tree is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = overlap_pair(&OverlapSpec::default());
        let b = overlap_pair(&OverlapSpec::default());
        assert_eq!(a.truth, b.truth);
        assert!(a.left.graph().same_shape(b.left.graph()));
        assert!(a.right.graph().same_shape(b.right.graph()));
    }

    #[test]
    fn overlap_fraction_respected() {
        let spec = OverlapSpec { concepts: 200, overlap: 0.25, ..Default::default() };
        let p = overlap_pair(&spec);
        assert_eq!(p.truth.len(), 50);
        // each ontology holds shared + its half of the rest + Root
        assert_eq!(p.left.term_count(), 50 + 75 + 1);
        assert_eq!(p.right.term_count(), 50 + 75 + 1);
    }

    #[test]
    fn truth_terms_exist() {
        let p = overlap_pair(&OverlapSpec::default());
        for (l, r) in &p.truth {
            let ln = l.strip_prefix("left.").unwrap();
            let rn = r.strip_prefix("right.").unwrap();
            assert!(p.left.defines(ln), "left missing {ln}");
            assert!(p.right.defines(rn), "right missing {rn}");
        }
    }

    #[test]
    fn renamed_pairs_covered_by_lexicon() {
        let spec = OverlapSpec { rename_prob: 1.0, ..Default::default() };
        let p = overlap_pair(&spec);
        for (l, r) in &p.truth {
            let ln = l.strip_prefix("left.").unwrap();
            let rn = r.strip_prefix("right.").unwrap();
            assert_ne!(ln, rn, "rename_prob 1.0 renames everything");
            assert!(p.lexicon.are_synonyms(ln, rn), "lexicon should know {ln} ~ {rn}");
        }
    }

    #[test]
    fn no_renames_means_shared_labels() {
        let spec = OverlapSpec { rename_prob: 0.0, ..Default::default() };
        let p = overlap_pair(&spec);
        for (l, r) in &p.truth {
            assert_eq!(l.strip_prefix("left.").unwrap(), r.strip_prefix("right.").unwrap());
        }
        assert_eq!(p.lexicon.synset_count(), 0);
    }

    #[test]
    fn zero_overlap_is_disjoint() {
        let spec = OverlapSpec { overlap: 0.0, ..Default::default() };
        let p = overlap_pair(&spec);
        assert!(p.truth.is_empty());
    }
}
