//! Seeded synthetic ontology generation.

use onion_lexicon::generator::pseudo_word;
use onion_ontology::{Ontology, OntologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for one synthetic ontology.
#[derive(Debug, Clone)]
pub struct OntologySpec {
    /// Ontology name.
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Number of classes (excluding the single root).
    pub classes: usize,
    /// Maximum children per class; the tree is built by attaching each
    /// new class under a uniformly random earlier class with spare
    /// capacity, giving naturally varied depth.
    pub max_children: usize,
    /// Expected attributes per class.
    pub attr_density: f64,
    /// Expected instances per *leaf* class.
    pub instance_density: f64,
}

impl OntologySpec {
    /// A spec with sensible defaults for `classes` classes.
    pub fn sized(name: &str, seed: u64, classes: usize) -> Self {
        OntologySpec {
            name: name.to_string(),
            seed,
            classes,
            max_children: 6,
            attr_density: 0.5,
            instance_density: 0.3,
        }
    }
}

/// Generates class labels: a pseudo-word plus a disambiguating ordinal
/// (labels must be unique within a consistent ontology).
pub fn class_label(rng: &mut StdRng, ordinal: usize) -> String {
    let w = pseudo_word(rng);
    let mut chars = w.chars();
    let first = chars.next().map(|c| c.to_uppercase().to_string()).unwrap_or_default();
    format!("{first}{}{ordinal}", chars.as_str())
}

/// Generates an ontology per `spec`. Equal specs generate identical
/// ontologies.
pub fn generate_ontology(spec: &OntologySpec) -> Ontology {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let root = "Root".to_string();
    let mut builder = OntologyBuilder::new(&spec.name).class(&root);
    let mut nodes: Vec<String> = vec![root];
    let mut child_count: Vec<usize> = vec![0];

    for i in 0..spec.classes {
        let label = class_label(&mut rng, i);
        // pick a parent with spare capacity
        let mut parent_idx = rng.gen_range(0..nodes.len());
        let mut guard = 0;
        while child_count[parent_idx] >= spec.max_children && guard < 32 {
            parent_idx = rng.gen_range(0..nodes.len());
            guard += 1;
        }
        builder = builder.class_under(&label, &nodes[parent_idx].clone());
        child_count[parent_idx] += 1;
        nodes.push(label);
        child_count.push(0);

        // attributes
        if rng.gen_bool(spec.attr_density.clamp(0.0, 1.0)) {
            let attr = format!("attr_{}", pseudo_word(&mut rng));
            builder = builder.attr(&attr, &nodes[nodes.len() - 1].clone());
        }
    }
    // instances on leaves
    let leaves: Vec<String> = nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| child_count[i] == 0)
        .map(|(_, l)| l.clone())
        .collect();
    for (i, leaf) in leaves.iter().enumerate() {
        if rng.gen_bool(spec.instance_density.clamp(0.0, 1.0)) {
            builder = builder.instance(&format!("inst_{i}"), leaf);
        }
    }
    builder.build().expect("generated ontology is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = OntologySpec::sized("t", 7, 50);
        let a = generate_ontology(&spec);
        let b = generate_ontology(&spec);
        assert!(a.graph().same_shape(b.graph()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_ontology(&OntologySpec::sized("t", 1, 50));
        let b = generate_ontology(&OntologySpec::sized("t", 2, 50));
        assert!(!a.graph().same_shape(b.graph()));
    }

    #[test]
    fn class_count_respected() {
        let o = generate_ontology(&OntologySpec::sized("t", 3, 120));
        // classes + root (+ attributes + instances on top)
        let subclass_edges = o.graph().edges().filter(|e| e.label == "SubclassOf").count();
        assert_eq!(subclass_edges, 120, "every class has exactly one parent");
    }

    #[test]
    fn generated_ontology_is_consistent() {
        let o = generate_ontology(&OntologySpec::sized("t", 11, 200));
        assert!(onion_ontology::consistency::check(&o).is_empty());
    }

    #[test]
    fn branching_capped() {
        let spec = OntologySpec { max_children: 2, ..OntologySpec::sized("t", 5, 60) };
        let o = generate_ontology(&spec);
        let g = o.graph();
        for n in g.node_ids() {
            let kids = g.in_neighbors(n, "SubclassOf").count();
            // the capacity guard is probabilistic with a retry bound, so
            // allow a small overflow margin
            assert!(kids <= 4, "node has {kids} children");
        }
    }

    #[test]
    fn densities_zero_give_bare_taxonomy() {
        let spec = OntologySpec {
            attr_density: 0.0,
            instance_density: 0.0,
            ..OntologySpec::sized("t", 9, 40)
        };
        let o = generate_ontology(&spec);
        assert!(o.graph().edges().all(|e| e.label == "SubclassOf"));
    }
}
