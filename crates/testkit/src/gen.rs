//! Seeded synthetic ontology generation.

use onion_graph::{rel, OntGraph};
use onion_lexicon::generator::pseudo_word;
use onion_ontology::{Ontology, OntologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for one synthetic ontology.
#[derive(Debug, Clone)]
pub struct OntologySpec {
    /// Ontology name.
    pub name: String,
    /// RNG seed.
    pub seed: u64,
    /// Number of classes (excluding the single root).
    pub classes: usize,
    /// Maximum children per class; the tree is built by attaching each
    /// new class under a uniformly random earlier class with spare
    /// capacity, giving naturally varied depth.
    pub max_children: usize,
    /// Expected attributes per class.
    pub attr_density: f64,
    /// Expected instances per *leaf* class.
    pub instance_density: f64,
}

impl OntologySpec {
    /// A spec with sensible defaults for `classes` classes.
    pub fn sized(name: &str, seed: u64, classes: usize) -> Self {
        OntologySpec {
            name: name.to_string(),
            seed,
            classes,
            max_children: 6,
            attr_density: 0.5,
            instance_density: 0.3,
        }
    }
}

/// Generates class labels: a pseudo-word plus a disambiguating ordinal
/// (labels must be unique within a consistent ontology).
pub fn class_label(rng: &mut StdRng, ordinal: usize) -> String {
    let w = pseudo_word(rng);
    let mut chars = w.chars();
    let first = chars.next().map(|c| c.to_uppercase().to_string()).unwrap_or_default();
    format!("{first}{}{ordinal}", chars.as_str())
}

/// Generates an ontology per `spec`. Equal specs generate identical
/// ontologies.
pub fn generate_ontology(spec: &OntologySpec) -> Ontology {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let root = "Root".to_string();
    let mut builder = OntologyBuilder::new(&spec.name).class(&root);
    let mut nodes: Vec<String> = vec![root];
    let mut child_count: Vec<usize> = vec![0];

    for i in 0..spec.classes {
        let label = class_label(&mut rng, i);
        // pick a parent with spare capacity
        let mut parent_idx = rng.gen_range(0..nodes.len());
        let mut guard = 0;
        while child_count[parent_idx] >= spec.max_children && guard < 32 {
            parent_idx = rng.gen_range(0..nodes.len());
            guard += 1;
        }
        builder = builder.class_under(&label, &nodes[parent_idx].clone());
        child_count[parent_idx] += 1;
        nodes.push(label);
        child_count.push(0);

        // attributes
        if rng.gen_bool(spec.attr_density.clamp(0.0, 1.0)) {
            let attr = format!("attr_{}", pseudo_word(&mut rng));
            builder = builder.attr(&attr, &nodes[nodes.len() - 1].clone());
        }
    }
    // instances on leaves
    let leaves: Vec<String> = nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| child_count[i] == 0)
        .map(|(_, l)| l.clone())
        .collect();
    for (i, leaf) in leaves.iter().enumerate() {
        if rng.gen_bool(spec.instance_density.clamp(0.0, 1.0)) {
            builder = builder.instance(&format!("inst_{i}"), leaf);
        }
    }
    builder.build().expect("generated ontology is well-formed")
}

/// Parameters for a raw labeled graph (graph-layer benches and the
/// id/string API equivalence tests). Unlike [`OntologySpec`] this
/// produces a bare [`OntGraph`]: a `SubclassOf` attachment tree plus
/// random cross edges drawn from a small verb alphabet, so per-node
/// incident lists mix many edge labels — the worst case for label-
/// filtered traversal.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// RNG seed.
    pub seed: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// Total number of edges to aim for (tree edges included; duplicate
    /// draws are skipped, so the realised count can fall slightly short).
    pub edges: usize,
    /// Number of distinct non-`SubclassOf` edge labels.
    pub verb_labels: usize,
}

impl GraphSpec {
    /// A spec with the default verb alphabet.
    pub fn sized(seed: u64, nodes: usize, edges: usize) -> Self {
        GraphSpec { seed, nodes, edges, verb_labels: 8 }
    }

    /// The 10k-node / 50k-edge tier used by the perf baseline
    /// (`BENCH_onion.json`).
    pub fn tier_10k() -> Self {
        Self::sized(97, 10_000, 50_000)
    }
}

/// Generates a labeled graph per `spec`. Equal specs generate identical
/// graphs. Node `C0` is the root of the `SubclassOf` tree; every other
/// node has exactly one `SubclassOf` edge to an earlier node, and the
/// remaining edge budget is spent on random verb-labeled cross edges.
pub fn generate_graph(spec: &GraphSpec) -> OntGraph {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut g = OntGraph::new(format!("synth{}k", spec.nodes / 1000));
    let ids: Vec<_> =
        (0..spec.nodes).map(|i| g.add_node(&format!("C{i}")).expect("unique labels")).collect();
    for i in 1..spec.nodes {
        let parent = rng.gen_range(0..i);
        g.add_edge(ids[i], rel::SUBCLASS_OF, ids[parent]).expect("fresh tree edge");
    }
    let verbs: Vec<String> = (0..spec.verb_labels.max(1)).map(|i| format!("verb{i}")).collect();
    let budget = spec.edges.saturating_sub(spec.nodes.saturating_sub(1));
    for _ in 0..budget {
        let s = ids[rng.gen_range(0..spec.nodes)];
        let d = ids[rng.gen_range(0..spec.nodes)];
        let label = &verbs[rng.gen_range(0..verbs.len())];
        // set semantics: a duplicate triple draw is simply skipped
        let _ = g.ensure_edge(s, label, d);
    }
    g
}

/// A random `SubclassOf` DAG: the attachment tree of
/// [`generate_graph`] plus `extra` redundant subclass edges, each from a
/// node to a strictly earlier one — acyclic by construction, with the
/// transitive redundancy `transitive_reduce` exists to remove.
pub fn generate_dag(seed: u64, nodes: usize, extra: usize) -> OntGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = OntGraph::new("dag");
    let ids: Vec<_> =
        (0..nodes).map(|i| g.add_node(&format!("D{i}")).expect("unique labels")).collect();
    for i in 1..nodes {
        let parent = rng.gen_range(0..i);
        g.add_edge(ids[i], rel::SUBCLASS_OF, ids[parent]).expect("fresh tree edge");
    }
    for _ in 0..extra {
        let i = rng.gen_range(1..nodes.max(2));
        let j = rng.gen_range(0..i);
        let _ = g.ensure_edge(ids[i], rel::SUBCLASS_OF, ids[j]);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let spec = OntologySpec::sized("t", 7, 50);
        let a = generate_ontology(&spec);
        let b = generate_ontology(&spec);
        assert!(a.graph().same_shape(b.graph()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_ontology(&OntologySpec::sized("t", 1, 50));
        let b = generate_ontology(&OntologySpec::sized("t", 2, 50));
        assert!(!a.graph().same_shape(b.graph()));
    }

    #[test]
    fn class_count_respected() {
        let o = generate_ontology(&OntologySpec::sized("t", 3, 120));
        // classes + root (+ attributes + instances on top)
        let subclass_edges = o.graph().edges().filter(|e| e.label == "SubclassOf").count();
        assert_eq!(subclass_edges, 120, "every class has exactly one parent");
    }

    #[test]
    fn generated_ontology_is_consistent() {
        let o = generate_ontology(&OntologySpec::sized("t", 11, 200));
        assert!(onion_ontology::consistency::check(&o).is_empty());
    }

    #[test]
    fn branching_capped() {
        let spec = OntologySpec { max_children: 2, ..OntologySpec::sized("t", 5, 60) };
        let o = generate_ontology(&spec);
        let g = o.graph();
        for n in g.node_ids() {
            let kids = g.in_neighbors(n, "SubclassOf").count();
            // the capacity guard is probabilistic with a retry bound, so
            // allow a small overflow margin
            assert!(kids <= 4, "node has {kids} children");
        }
    }

    #[test]
    fn dag_is_acyclic() {
        let g = generate_dag(13, 200, 300);
        let filter = onion_graph::traverse::EdgeFilter::label(onion_graph::rel::SUBCLASS_OF);
        assert!(onion_graph::traverse::topo_sort(&g, &filter).is_ok());
        assert!(g.edge_count() > 199, "tree plus at least some extras");
    }

    #[test]
    fn graph_tier_is_deterministic_and_sized() {
        let spec = GraphSpec::sized(5, 500, 2500);
        let a = generate_graph(&spec);
        let b = generate_graph(&spec);
        assert!(a.same_shape(&b));
        assert_eq!(a.node_count(), 500);
        // duplicate draws may shave a little off the budget
        assert!(a.edge_count() > 2300, "edges: {}", a.edge_count());
        assert!(a.edge_count() <= 2500);
    }

    #[test]
    fn graph_tier_tree_is_connected_under_subclass() {
        let g = generate_graph(&GraphSpec::sized(9, 300, 300));
        let root = g.node_by_label("C0").unwrap();
        let desc = onion_graph::closure::descendants(&g, root, onion_graph::rel::SUBCLASS_OF);
        assert_eq!(desc.len(), 299, "every non-root node reaches the root");
    }

    #[test]
    fn densities_zero_give_bare_taxonomy() {
        let spec = OntologySpec {
            attr_density: 0.0,
            instance_density: 0.0,
            ..OntologySpec::sized("t", 9, 40)
        };
        let o = generate_ontology(&spec);
        assert!(o.graph().edges().all(|e| e.label == "SubclassOf"));
    }
}
