//! Update streams and query workloads.

use onion_articulate::Articulation;
use onion_graph::ops::GraphOp;
use onion_graph::{NodeId, OntGraph};
use onion_lexicon::generator::pseudo_word;
use onion_ontology::Ontology;
use onion_query::{CmpOp, Query, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for an update stream against one source ontology.
#[derive(Debug, Clone)]
pub struct UpdateSpec {
    /// RNG seed.
    pub seed: u64,
    /// Number of ops to emit.
    pub ops: usize,
    /// Fraction of ops targeting articulation-bridged terms (the
    /// "locality" knob of experiments B1/B8). 0.0 = all updates land in
    /// the ontology's independent region; 1.0 = every update touches the
    /// articulation.
    pub bridged_fraction: f64,
    /// Fraction of ops that are deletions (rest are additions).
    pub delete_fraction: f64,
}

impl Default for UpdateSpec {
    fn default() -> Self {
        UpdateSpec { seed: 42, ops: 100, bridged_fraction: 0.1, delete_fraction: 0.2 }
    }
}

/// Generates a stream of ops against `source`, splitting targets between
/// articulation-bridged terms and independent terms per
/// `spec.bridged_fraction`.
///
/// Additions attach fresh leaf classes under an existing target class;
/// deletions remove previously-added leaves (so the stream is always
/// applicable in order). The ops are **label-addressed** [`GraphOp`]s
/// replayable via `onion_graph::ops::apply_all`.
pub fn update_stream(
    source: &Ontology,
    articulation: &Articulation,
    spec: &UpdateSpec,
) -> Vec<GraphOp> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let bridged: Vec<String> =
        articulation.bridged_terms(source.name()).into_iter().map(str::to_string).collect();
    let all: Vec<String> = source.graph().nodes().map(|n| n.label.to_string()).collect();
    let independent: Vec<String> = all.iter().filter(|l| !bridged.contains(l)).cloned().collect();

    let mut ops = Vec::with_capacity(spec.ops);
    let mut added: Vec<String> = Vec::new();
    for i in 0..spec.ops {
        let delete = !added.is_empty() && rng.gen_bool(spec.delete_fraction.clamp(0.0, 1.0));
        if delete {
            let idx = rng.gen_range(0..added.len());
            let label = added.swap_remove(idx);
            ops.push(GraphOp::node_delete(label));
            continue;
        }
        let target_bridged =
            !bridged.is_empty() && rng.gen_bool(spec.bridged_fraction.clamp(0.0, 1.0));
        let pool = if target_bridged { &bridged } else { &independent };
        let parent = if pool.is_empty() {
            all[rng.gen_range(0..all.len())].clone()
        } else {
            pool[rng.gen_range(0..pool.len())].clone()
        };
        let label = format!("New{}{}", pseudo_word(&mut rng), i);
        ops.push(GraphOp::node_add_with(
            label.clone(),
            vec![("SubclassOf".to_string(), parent)],
            vec![],
        ));
        added.push(label);
    }
    ops
}

/// Generates random queries over the articulation's classes: each picks
/// a class uniformly and optionally adds a numeric condition on a
/// uniform attribute name.
pub fn random_queries(
    articulation: &Articulation,
    attr: &str,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes: Vec<String> =
        articulation.ontology.graph().nodes().map(|n| n.label.to_string()).collect();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if classes.is_empty() {
            break;
        }
        let class = &classes[rng.gen_range(0..classes.len())];
        let mut q = Query::all(class).select(attr);
        if rng.gen_bool(0.5) {
            let bound = rng.gen_range(100.0..50_000.0_f64).round();
            q = q.filter(attr, CmpOp::Lt, Value::Num(bound));
        }
        out.push(q);
    }
    out
}

/// A deterministic multi-source set for parallel-closure workloads:
/// `count` live node ids drawn uniformly (with replacement across the
/// live set, deduplicated, order preserved) from `g`. Equal inputs give
/// equal source sets, so batch results are comparable across runs and
/// thread counts.
pub fn closure_sources(g: &OntGraph, count: usize, seed: u64) -> Vec<NodeId> {
    let live: Vec<NodeId> = g.node_ids().collect();
    if live.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(count.min(live.len()));
    let mut attempts = 0;
    while out.len() < count.min(live.len()) && attempts < count * 8 {
        attempts += 1;
        let n = live[rng.gen_range(0..live.len())];
        if seen.insert(n) {
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_articulate::ArticulationGenerator;
    use onion_graph::ops::apply_all;
    use onion_ontology::examples::{carrier, factory, fig2_rules};

    fn setup() -> (Ontology, Articulation) {
        let c = carrier();
        let f = factory();
        let art = ArticulationGenerator::new().generate(&fig2_rules(), &[&c, &f]).unwrap();
        (c, art)
    }

    #[test]
    fn stream_is_deterministic_and_applicable() {
        let (c, art) = setup();
        let spec = UpdateSpec::default();
        let s1 = update_stream(&c, &art, &spec);
        let s2 = update_stream(&c, &art, &spec);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), spec.ops);
        // replays cleanly onto a copy of the source
        let mut g = c.graph().clone();
        apply_all(&mut g, &s1).unwrap();
    }

    #[test]
    fn bridged_fraction_zero_avoids_articulation() {
        let (c, art) = setup();
        let spec = UpdateSpec { bridged_fraction: 0.0, ops: 200, ..Default::default() };
        let ops = update_stream(&c, &art, &spec);
        let (relevant, _) = onion_articulate::maintain::triage(&art, "carrier", &ops);
        assert!(relevant.is_empty(), "{} relevant ops", relevant.len());
    }

    #[test]
    fn bridged_fraction_one_targets_articulation() {
        let (c, art) = setup();
        let spec = UpdateSpec {
            bridged_fraction: 1.0,
            delete_fraction: 0.0,
            ops: 50,
            ..Default::default()
        };
        let ops = update_stream(&c, &art, &spec);
        let (relevant, _) = onion_articulate::maintain::triage(&art, "carrier", &ops);
        assert_eq!(relevant.len(), 50);
    }

    #[test]
    fn deletions_only_remove_added_nodes() {
        let (c, art) = setup();
        let spec = UpdateSpec { delete_fraction: 0.5, ops: 100, ..Default::default() };
        let ops = update_stream(&c, &art, &spec);
        for op in &ops {
            if let GraphOp::NodeDelete { label, .. } = op {
                assert!(label.starts_with("New"), "deletes only touch generated nodes");
            }
        }
    }

    #[test]
    fn closure_sources_are_deterministic_live_and_distinct() {
        let g = crate::gen::generate_graph(&crate::gen::GraphSpec::sized(3, 200, 800));
        let a = closure_sources(&g, 64, 9);
        let b = closure_sources(&g, 64, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), a.len());
        assert!(a.iter().all(|&n| g.is_live_node(n)));
    }

    #[test]
    fn queries_target_articulation_classes() {
        let (_, art) = setup();
        let qs = random_queries(&art, "Price", 20, 7);
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert!(art.ontology.defines(&q.class));
            assert_eq!(q.select, vec!["Price"]);
        }
        // deterministic
        assert_eq!(qs, random_queries(&art, "Price", 20, 7));
    }
}
