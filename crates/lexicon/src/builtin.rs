//! The built-in transportation-domain lexicon.
//!
//! Covers the vocabulary of the paper's Fig. 2 running example (carrier /
//! factory / transportation ontologies) plus common automotive synonyms,
//! so SKAT-style matchers can propose the bridges the paper's expert
//! confirms. This is the reproduction's substitute for consulting
//! WordNet (DESIGN.md §3 substitution table).

use crate::lexicon::Lexicon;

/// Builds the transportation-domain lexicon.
pub fn transport_lexicon() -> Lexicon {
    let mut l = Lexicon::new();

    // --- core vehicle taxonomy ------------------------------------------
    let conveyance =
        l.add_synset(["transportation", "transport", "conveyance"], Some("moving people or goods"));
    let vehicle = l.add_synset(["vehicle"], Some("a conveyance that transports"));
    let car = l.add_synset(
        ["car", "automobile", "auto", "passenger car", "motorcar"],
        Some("a motor vehicle with four wheels"),
    );
    let truck = l.add_synset(["truck", "lorry", "goods vehicle"], Some("carries cargo"));
    let suv = l.add_synset(["suv", "sport utility vehicle"], None);
    let carrier =
        l.add_synset(["carrier", "cargo carrier", "hauler"], Some("an entity that carries goods"));
    l.add_hypernym(vehicle, conveyance);
    l.add_hypernym(car, vehicle);
    l.add_hypernym(truck, vehicle);
    l.add_hypernym(suv, car);
    l.add_hypernym(truck, carrier);

    // --- goods & logistics ----------------------------------------------
    let goods = l.add_synset(["goods", "cargo", "freight", "merchandise"], None);
    let factory = l.add_synset(["factory", "plant", "manufactory", "works"], None);
    let organization = l.add_synset(["organization", "organisation"], None);
    l.add_hypernym(factory, organization);
    let _ = goods;

    // --- people -----------------------------------------------------------
    let person = l.add_synset(["person", "individual", "human"], None);
    let owner = l.add_synset(["owner", "possessor", "proprietor"], None);
    let driver = l.add_synset(["driver", "chauffeur", "operator"], None);
    let buyer = l.add_synset(["buyer", "purchaser", "customer", "client"], None);
    l.add_hypernym(owner, person);
    l.add_hypernym(driver, person);
    l.add_hypernym(buyer, person);

    // --- commerce ----------------------------------------------------------
    let price = l.add_synset(["price", "cost", "monetary value"], None);
    let money = l.add_synset(["money", "currency"], None);
    l.add_hypernym(price, money);
    let euro = l.add_synset(["euro"], Some("EU currency"));
    let guilder = l.add_synset(["dutch guilder", "guilder", "gulden", "nlg"], None);
    let sterling = l.add_synset(["pound sterling", "sterling", "gbp", "ps"], None);
    l.add_hypernym(euro, money);
    l.add_hypernym(guilder, money);
    l.add_hypernym(sterling, money);

    // --- misc attributes ----------------------------------------------------
    l.add_synset(["weight", "mass"], None);
    l.add_synset(["model", "make"], None);

    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_fig2_vocabulary() {
        let l = transport_lexicon();
        for term in [
            "Transportation",
            "Vehicle",
            "Car",
            "Trucks",
            "CargoCarrier",
            "Goods",
            "Price",
            "Owner",
            "Driver",
            "Buyer",
            "Person",
            "Factory",
            "SUV",
            "Weight",
            "Model",
            "PassengerCar",
        ] {
            assert!(l.contains(term), "lexicon should know {term:?}");
        }
    }

    #[test]
    fn key_synonym_pairs() {
        let l = transport_lexicon();
        assert!(l.are_synonyms("Car", "Automobile"));
        assert!(l.are_synonyms("Truck", "Lorry"));
        assert!(l.are_synonyms("Goods", "Cargo"));
        assert!(l.are_synonyms("Transportation", "Transport"));
        assert!(l.are_synonyms("PassengerCar", "Car"), "compound normalisation");
        assert!(l.are_synonyms("GoodsVehicle", "Truck"));
        assert!(!l.are_synonyms("Car", "Truck"));
    }

    #[test]
    fn key_hypernym_pairs() {
        let l = transport_lexicon();
        assert!(l.is_hypernym_of("Vehicle", "Car"));
        assert!(l.is_hypernym_of("Vehicle", "SUV"), "transitive through Car");
        assert!(l.is_hypernym_of("Transportation", "Truck"));
        assert!(l.is_hypernym_of("Person", "Driver"));
        assert!(l.is_hypernym_of("Money", "Euro"));
        assert!(!l.is_hypernym_of("Car", "Vehicle"));
    }

    #[test]
    fn currency_synonyms_for_functional_rules() {
        let l = transport_lexicon();
        assert!(l.are_synonyms("PS", "PoundSterling"));
        assert!(l.are_synonyms("DutchGuilders", "guilder"));
    }

    #[test]
    fn sibling_distance_small() {
        let l = transport_lexicon();
        let d = l.hypernym_distance("Car", "Truck").unwrap();
        assert_eq!(d, 2);
    }
}
