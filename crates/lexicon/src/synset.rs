//! Synonym sets (synsets) — the WordNet unit of meaning.

use std::fmt;

/// Identifier of a synset within one [`crate::Lexicon`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SynsetId(pub(crate) u32);

impl SynsetId {
    /// Raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SynsetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Syn{}", self.0)
    }
}

/// A set of words sharing one meaning, with an optional gloss.
///
/// Words are stored in normalised form (see [`crate::normalize`]); the
/// lexicon performs normalisation on lookup so callers can use raw
/// ontology labels like `CargoCarrier`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Synset {
    /// Normalised member words.
    pub words: Vec<String>,
    /// Short definition, if any.
    pub gloss: Option<String>,
}

impl Synset {
    /// Creates a synset from raw words (already normalised by the caller).
    pub fn new(words: Vec<String>, gloss: Option<String>) -> Self {
        Synset { words, gloss }
    }

    /// True if the normalised `word` is a member.
    pub fn contains(&self, word: &str) -> bool {
        self.words.iter().any(|w| w == word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_member() {
        let s =
            Synset::new(vec!["car".into(), "automobile".into()], Some("a motor vehicle".into()));
        assert!(s.contains("car"));
        assert!(s.contains("automobile"));
        assert!(!s.contains("truck"));
    }

    #[test]
    fn synset_id_debug() {
        assert_eq!(format!("{:?}", SynsetId(3)), "Syn3");
        assert_eq!(SynsetId(3).index(), 3);
    }
}
