//! The lexicon: synsets plus hypernym links, with WordNet-style queries.

use std::collections::{HashMap, HashSet, VecDeque};

use onion_graph::LabelEquiv;

use crate::normalize::normalize;
use crate::synset::{Synset, SynsetId};

/// A semantic lexicon: synonym sets connected by hypernym ("is a kind
/// of") links, queried through normalised words.
///
/// This is the reproduction's WordNet stand-in (see crate docs). The API
/// surface is exactly what SKAT-style matchers need:
///
/// * [`Lexicon::are_synonyms`] — share a synset?
/// * [`Lexicon::is_hypernym_of`] — transitive hypernymy between words;
/// * [`Lexicon::synonyms_of`] — expansion for candidate generation.
#[derive(Debug, Default, Clone)]
pub struct Lexicon {
    synsets: Vec<Synset>,
    /// normalised word → synsets containing it
    index: HashMap<String, Vec<SynsetId>>,
    /// hyponym synset → hypernym synsets (direct)
    hypernyms: HashMap<SynsetId, Vec<SynsetId>>,
}

impl Lexicon {
    /// Creates an empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of synsets.
    pub fn synset_count(&self) -> usize {
        self.synsets.len()
    }

    /// Number of distinct indexed words.
    pub fn word_count(&self) -> usize {
        self.index.len()
    }

    /// Adds a synset from raw (unnormalised) words; returns its id.
    /// Duplicate words within the synset are deduplicated after
    /// normalisation; empty normalisations are dropped.
    pub fn add_synset<I, S>(&mut self, words: I, gloss: Option<&str>) -> SynsetId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut norm: Vec<String> =
            words.into_iter().map(|w| normalize(w.as_ref())).filter(|w| !w.is_empty()).collect();
        norm.sort();
        norm.dedup();
        let id = SynsetId(self.synsets.len() as u32);
        for w in &norm {
            self.index.entry(w.clone()).or_default().push(id);
        }
        self.synsets.push(Synset::new(norm, gloss.map(str::to_string)));
        id
    }

    /// Declares `hypo`'s meaning to be a kind of `hyper`'s meaning.
    pub fn add_hypernym(&mut self, hypo: SynsetId, hyper: SynsetId) {
        let entry = self.hypernyms.entry(hypo).or_default();
        if !entry.contains(&hyper) {
            entry.push(hyper);
        }
    }

    /// The synset ids containing the normalised form of `word`.
    pub fn synsets_of(&self, word: &str) -> &[SynsetId] {
        self.index.get(&normalize(word)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The synset value for an id.
    pub fn synset(&self, id: SynsetId) -> &Synset {
        &self.synsets[id.index()]
    }

    /// True if the lexicon knows the word at all.
    pub fn contains(&self, word: &str) -> bool {
        !self.synsets_of(word).is_empty()
    }

    /// All synonyms of `word` (members of any synset containing it,
    /// excluding the normalised word itself), deduplicated and sorted.
    pub fn synonyms_of(&self, word: &str) -> Vec<&str> {
        let me = normalize(word);
        let mut out: Vec<&str> = self
            .synsets_of(word)
            .iter()
            .flat_map(|&s| self.synset(s).words.iter())
            .map(String::as_str)
            .filter(|w| *w != me)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Do two raw labels share a synset (after normalisation)?
    /// Identical normalised forms count as synonymous.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let na = normalize(a);
        let nb = normalize(b);
        if na == nb && !na.is_empty() {
            return true;
        }
        let sa = self.synsets_of(a);
        if sa.is_empty() {
            return false;
        }
        let sb: HashSet<SynsetId> = self.synsets_of(b).iter().copied().collect();
        sa.iter().any(|s| sb.contains(s))
    }

    /// Direct hypernym synsets of `s`.
    pub fn direct_hypernyms(&self, s: SynsetId) -> &[SynsetId] {
        self.hypernyms.get(&s).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All hypernym synsets of `s`, transitively (excluding `s` unless
    /// the hierarchy is cyclic).
    pub fn all_hypernyms(&self, s: SynsetId) -> HashSet<SynsetId> {
        let mut seen = HashSet::new();
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(cur) = q.pop_front() {
            for &h in self.direct_hypernyms(cur) {
                if seen.insert(h) {
                    q.push_back(h);
                }
            }
        }
        seen
    }

    /// Is some meaning of `hyper` a (transitive) hypernym of some meaning
    /// of `hypo`? E.g. `is_hypernym_of("vehicle", "car")`.
    pub fn is_hypernym_of(&self, hyper: &str, hypo: &str) -> bool {
        let hyper_sets: HashSet<SynsetId> = self.synsets_of(hyper).iter().copied().collect();
        if hyper_sets.is_empty() {
            return false;
        }
        self.synsets_of(hypo)
            .iter()
            .any(|&s| self.all_hypernyms(s).iter().any(|h| hyper_sets.contains(h)))
    }

    /// Shortest hypernym-path length between any meanings of two words
    /// in the (undirected) hypernym graph; `None` if unconnected or
    /// unknown. Used as a semantic-distance signal by matchers.
    pub fn hypernym_distance(&self, a: &str, b: &str) -> Option<usize> {
        let sa = self.synsets_of(a);
        let sb: HashSet<SynsetId> = self.synsets_of(b).iter().copied().collect();
        if sa.is_empty() || sb.is_empty() {
            return None;
        }
        if sa.iter().any(|s| sb.contains(s)) {
            return Some(0);
        }
        // undirected BFS over hypernym links
        let mut up: HashMap<SynsetId, Vec<SynsetId>> = HashMap::new();
        for (&hypo, hypers) in &self.hypernyms {
            for &h in hypers {
                up.entry(hypo).or_default().push(h);
                up.entry(h).or_default().push(hypo);
            }
        }
        let mut dist: HashMap<SynsetId, usize> = HashMap::new();
        let mut q = VecDeque::new();
        for &s in sa {
            dist.insert(s, 0);
            q.push_back(s);
        }
        while let Some(cur) = q.pop_front() {
            let d = dist[&cur];
            if let Some(ns) = up.get(&cur) {
                for &n in ns {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                        if sb.contains(&n) {
                            return Some(d + 1);
                        }
                        e.insert(d + 1);
                        q.push_back(n);
                    }
                }
            }
        }
        None
    }
}

/// [`LabelEquiv`] adapter: node labels match when they are synonyms in
/// the lexicon — the §3 fuzzy-matching relaxation. Edge labels stay
/// strict.
#[derive(Debug, Clone)]
pub struct SynonymEquiv<'l> {
    lexicon: &'l Lexicon,
}

impl<'l> SynonymEquiv<'l> {
    /// Wraps a lexicon for use in the pattern matcher.
    pub fn new(lexicon: &'l Lexicon) -> Self {
        SynonymEquiv { lexicon }
    }
}

impl LabelEquiv for SynonymEquiv<'_> {
    fn node_equiv(&self, pattern_label: &str, graph_label: &str) -> bool {
        pattern_label == graph_label || self.lexicon.are_synonyms(pattern_label, graph_label)
    }

    /// Graph labels are indexed under their normalised form, which is
    /// exactly the key [`Lexicon::are_synonyms`] compares through.
    fn seed_key(&self, graph_label: &str) -> Option<String> {
        Some(normalize(graph_label))
    }

    /// A graph label can only be synonymous with the pattern label if
    /// its normalised form equals the pattern's or appears in one of the
    /// pattern's synsets — both enumerable, so fuzzy seeding is a few
    /// index probes instead of a full node scan (ROADMAP "Matcher fuzzy
    /// path").
    fn seed_keys(&self, pattern_label: &str) -> Option<Vec<String>> {
        let mut keys = vec![normalize(pattern_label)];
        keys.extend(self.lexicon.synonyms_of(pattern_label).into_iter().map(str::to_string));
        Some(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> Lexicon {
        let mut l = Lexicon::new();
        let car = l.add_synset(["car", "automobile", "auto"], Some("a motor vehicle"));
        let vehicle = l.add_synset(["vehicle", "conveyance"], None);
        let truck = l.add_synset(["truck", "lorry"], None);
        l.add_hypernym(car, vehicle);
        l.add_hypernym(truck, vehicle);
        l
    }

    #[test]
    fn synonyms_share_synset() {
        let l = mini();
        assert!(l.are_synonyms("car", "automobile"));
        assert!(l.are_synonyms("Truck", "lorry"), "normalisation applies");
        assert!(!l.are_synonyms("car", "truck"));
        assert!(!l.are_synonyms("car", "unknown"));
    }

    #[test]
    fn identical_normalised_labels_are_synonyms() {
        let l = Lexicon::new();
        assert!(l.are_synonyms("Trucks", "truck"));
        assert!(!l.are_synonyms("", ""));
    }

    #[test]
    fn seed_keys_cover_every_equivalent_label() {
        // the LabelEquiv seed contract: node_equiv(p, g) implies
        // seed_key(g) ∈ seed_keys(p), for every pair in a mixed corpus
        let l = mini();
        let eq = SynonymEquiv::new(&l);
        let corpus =
            ["car", "Automobile", "autos", "vehicle", "Conveyance", "Trucks", "lorry", "Price"];
        for p in corpus {
            let keys = eq.seed_keys(p).expect("synonym equivalence is keyable");
            for g in corpus {
                if eq.node_equiv(p, g) {
                    let k = eq.seed_key(g).expect("keyable");
                    assert!(keys.contains(&k), "{p:?} ~ {g:?} but {k:?} not in {keys:?}");
                }
            }
        }
    }

    #[test]
    fn synonym_seeding_finds_renamed_nodes_through_the_index() {
        let l = mini();
        let mut g = onion_graph::OntGraph::new("t");
        g.ensure_edge_by_labels("Automobile", "SubclassOf", "Conveyance").unwrap();
        let mut p = onion_graph::Pattern::new();
        let a = p.node("car");
        let v = p.node("vehicle");
        p.edge(a, "SubclassOf", v);
        let ms = onion_graph::Matcher::with_equiv(&g, SynonymEquiv::new(&l)).find_all(&p).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(g.node_label(ms[0].nodes[0]), Some("Automobile"));
    }

    #[test]
    fn synonyms_of_excludes_self() {
        let l = mini();
        let syns = l.synonyms_of("car");
        assert_eq!(syns, vec!["auto", "automobile"]);
        assert!(l.synonyms_of("unknown").is_empty());
    }

    #[test]
    fn hypernym_queries() {
        let l = mini();
        assert!(l.is_hypernym_of("vehicle", "car"));
        assert!(l.is_hypernym_of("conveyance", "lorry"), "via synonyms both ends");
        assert!(!l.is_hypernym_of("car", "vehicle"), "direction matters");
        assert!(!l.is_hypernym_of("car", "truck"));
    }

    #[test]
    fn transitive_hypernyms() {
        let mut l = Lexicon::new();
        let suv = l.add_synset(["suv"], None);
        let car = l.add_synset(["car"], None);
        let vehicle = l.add_synset(["vehicle"], None);
        l.add_hypernym(suv, car);
        l.add_hypernym(car, vehicle);
        assert!(l.is_hypernym_of("vehicle", "suv"));
        assert_eq!(l.all_hypernyms(suv).len(), 2);
    }

    #[test]
    fn hypernym_distance_levels() {
        let l = mini();
        assert_eq!(l.hypernym_distance("car", "automobile"), Some(0));
        assert_eq!(l.hypernym_distance("car", "vehicle"), Some(1));
        assert_eq!(l.hypernym_distance("car", "truck"), Some(2), "siblings via parent");
        assert_eq!(l.hypernym_distance("car", "zebra"), None);
    }

    #[test]
    fn add_synset_dedups_and_normalises() {
        let mut l = Lexicon::new();
        let id = l.add_synset(["Cars", "car", "CAR", ""], None);
        assert_eq!(l.synset(id).words, vec!["car"]);
        assert_eq!(l.word_count(), 1);
    }

    #[test]
    fn duplicate_hypernym_ignored() {
        let mut l = Lexicon::new();
        let a = l.add_synset(["a"], None);
        let b = l.add_synset(["b"], None);
        l.add_hypernym(a, b);
        l.add_hypernym(a, b);
        assert_eq!(l.direct_hypernyms(a).len(), 1);
    }

    #[test]
    fn synonym_equiv_plugs_into_matcher() {
        use onion_graph::{Matcher, OntGraph, Pattern};
        let l = mini();
        let mut g = OntGraph::new("t");
        g.ensure_edge_by_labels("Car", "SubclassOf", "Transportation").unwrap();
        let mut p = Pattern::new();
        let a = p.node("Automobile"); // synonym of Car
        let b = p.node("Transportation");
        p.edge(a, "SubclassOf", b);
        let m = Matcher::with_equiv(&g, SynonymEquiv::new(&l));
        assert!(m.matches(&p).unwrap());
    }

    #[test]
    fn polysemy_multiple_synsets() {
        let mut l = Lexicon::new();
        l.add_synset(["bank", "riverbank"], None);
        l.add_synset(["bank", "financial institution"], None);
        assert_eq!(l.synsets_of("bank").len(), 2);
        assert!(l.are_synonyms("bank", "riverbank"));
        assert!(l.are_synonyms("bank", "financial institution"));
        // but the two meanings are not each other's synonyms
        assert!(!l.are_synonyms("riverbank", "financial institution"));
    }
}
