//! Label normalisation for lexical matching.
//!
//! Ontology labels arrive as `CargoCarrier`, `passenger_car`, `Trucks` or
//! `"Goods Vehicle"`; WordNet keys are lowercase lemmas. This module
//! bridges the two: compound splitting (CamelCase, snake_case,
//! whitespace), case folding, and a light plural stemmer sufficient for
//! noun-phrase ontology terms (the paper's node labels are noun phrases,
//! §3).

/// Splits a label into lowercase word tokens.
///
/// Boundaries: whitespace, `_`, `-`, `.`, and lower→upper CamelCase
/// transitions. Runs of uppercase are kept together until a lowercase
/// letter follows (`XMLParser` → `xml`, `parser`).
pub fn tokenize(label: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = label.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c.is_whitespace() || c == '_' || c == '-' || c == '.' {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if c.is_uppercase() && !cur.is_empty() {
            let prev = chars[i - 1];
            let next_lower = chars.get(i + 1).map(|n| n.is_lowercase()).unwrap_or(false);
            if prev.is_lowercase() || prev.is_numeric() || (prev.is_uppercase() && next_lower) {
                tokens.push(std::mem::take(&mut cur));
            }
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Reduces a lowercase token to a singular-ish stem.
///
/// Handles the regular English plural patterns that dominate ontology
/// vocabularies: `-ies`→`y`, `-sses`→`ss`, `-xes`/`-ches`/`-shes` drop
/// `es`, otherwise a trailing `-s` (but not `-ss`/`-us`) is dropped.
pub fn stem(token: &str) -> String {
    let t = token;
    if t.len() > 3 && t.ends_with("ies") {
        return format!("{}y", &t[..t.len() - 3]);
    }
    if t.len() > 4 && t.ends_with("sses") {
        return t[..t.len() - 2].to_string();
    }
    if t.len() > 3
        && (t.ends_with("xes") || t.ends_with("ches") || t.ends_with("shes") || t.ends_with("zes"))
    {
        return t[..t.len() - 2].to_string();
    }
    if t.len() > 2
        && t.ends_with('s')
        && !t.ends_with("ss")
        && !t.ends_with("us")
        && !t.ends_with("is")
    {
        return t[..t.len() - 1].to_string();
    }
    t.to_string()
}

/// Full normalisation: tokenize, stem each token, join with spaces.
///
/// `Trucks` → `truck`; `CargoCarrier` → `cargo carrier`;
/// `passenger_cars` → `passenger car`.
pub fn normalize(label: &str) -> String {
    let toks: Vec<String> = tokenize(label).into_iter().map(|t| stem(&t)).collect();
    toks.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_camel_case() {
        assert_eq!(tokenize("CargoCarrier"), vec!["cargo", "carrier"]);
        assert_eq!(tokenize("PassengerCar"), vec!["passenger", "car"]);
        assert_eq!(tokenize("car"), vec!["car"]);
    }

    #[test]
    fn tokenize_acronym_runs() {
        assert_eq!(tokenize("XMLParser"), vec!["xml", "parser"]);
        assert_eq!(tokenize("SUV"), vec!["suv"]);
        assert_eq!(tokenize("PSToEuroFn"), vec!["ps", "to", "euro", "fn"]);
    }

    #[test]
    fn tokenize_separators() {
        assert_eq!(tokenize("passenger_car"), vec!["passenger", "car"]);
        assert_eq!(tokenize("goods vehicle"), vec!["goods", "vehicle"]);
        assert_eq!(tokenize("semi-trailer"), vec!["semi", "trailer"]);
        assert_eq!(tokenize("a.b"), vec!["a", "b"]);
        assert_eq!(tokenize("  spaced   out "), vec!["spaced", "out"]);
    }

    #[test]
    fn tokenize_empty_and_symbols() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("___").is_empty());
        assert_eq!(tokenize("price2000"), vec!["price2000"]);
    }

    #[test]
    fn stem_plurals() {
        assert_eq!(stem("cars"), "car");
        assert_eq!(stem("trucks"), "truck");
        assert_eq!(stem("lorries"), "lorry");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("branches"), "branch");
        assert_eq!(stem("classes"), "class");
        assert_eq!(stem("buses"), "buse"); // imperfect but stable
    }

    #[test]
    fn stem_leaves_non_plurals() {
        assert_eq!(stem("class"), "class");
        assert_eq!(stem("bus"), "bus");
        assert_eq!(stem("chassis"), "chassis");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("price"), "price");
    }

    #[test]
    fn normalize_combines() {
        assert_eq!(normalize("Trucks"), "truck");
        assert_eq!(normalize("CargoCarriers"), "cargo carrier");
        assert_eq!(normalize("passenger_cars"), "passenger car");
        assert_eq!(normalize("GoodsVehicle"), "good vehicle"); // goods→good: acceptable fold
    }

    #[test]
    fn normalize_is_idempotent() {
        for l in ["Trucks", "CargoCarrier", "passenger_cars", "SUV", "My Car"] {
            let once = normalize(l);
            assert_eq!(normalize(&once), once, "normalize({l:?}) not idempotent");
        }
    }
}
