//! # onion-lexicon
//!
//! A WordNet-style semantic lexicon substrate for the ONION reproduction.
//!
//! The paper's SKAT articulation tool proposes semantic bridges "using
//! expert rules and other external knowledge sources or semantic lexicons
//! (e.g., Wordnet)" (§2.4). The original system consulted WordNet; this
//! crate provides the same *interface* — synonym sets, hypernym/hyponym
//! relations, and lexical similarity — backed by:
//!
//! * a hand-built [`builtin::transport_lexicon`] covering the vocabulary
//!   of the paper's Fig. 2 running example, and
//! * a seeded random [`generator`] for scale experiments.
//!
//! [`Lexicon`] implements [`onion_graph::LabelEquiv`], so it can plug
//! straight into the graph pattern matcher as the paper's §3 "fuzzy
//! matching" relaxation (nodes match when their labels are synonyms).
//!
//! The [`similarity`] module supplies the string metrics (Levenshtein,
//! Jaro-Winkler, n-gram Dice) SKAT-style matchers use when the lexicon
//! has no entry, and [`normalize`] handles the label conventions of real
//! ontologies (CamelCase compounds such as `CargoCarrier`, plural forms).

pub mod builtin;
pub mod generator;
pub mod lexicon;
pub mod normalize;
pub mod similarity;
pub mod synset;

pub use lexicon::{Lexicon, SynonymEquiv};
pub use synset::{Synset, SynsetId};
