//! Seeded random lexicon generation for scale experiments.
//!
//! Benchmarks B2/B3 need lexicons much larger than the built-in
//! transportation lexicon, with a controllable fraction of synonymy. The
//! generator produces pronounceable pseudo-words, groups them into
//! synsets of configurable size, and links synsets into a hypernym
//! forest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lexicon::Lexicon;

/// Parameters for random lexicon generation.
#[derive(Debug, Clone)]
pub struct LexiconSpec {
    /// RNG seed; equal seeds give equal lexicons.
    pub seed: u64,
    /// Number of synsets to create.
    pub synsets: usize,
    /// Words per synset (min, max inclusive).
    pub words_per_synset: (usize, usize),
    /// Probability that a synset gets a hypernym link to an earlier one.
    pub hypernym_prob: f64,
}

impl Default for LexiconSpec {
    fn default() -> Self {
        LexiconSpec { seed: 42, synsets: 100, words_per_synset: (2, 4), hypernym_prob: 0.6 }
    }
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gr", "k", "l", "m", "n", "p", "pr", "s",
    "st", "t", "tr", "v", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou"];
const CODAS: &[&str] = &["n", "r", "l", "s", "t", "x", "nd", "rk", "st", ""];

/// Generates one pronounceable pseudo-word of 2–3 syllables.
pub fn pseudo_word(rng: &mut StdRng) -> String {
    let syllables = rng.gen_range(2..=3);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    w
}

/// Generates a lexicon per `spec`. Words are globally unique across the
/// lexicon (a generated word is suffixed on collision), so synonymy is
/// exactly the planted synset structure.
pub fn generate(spec: &LexiconSpec) -> Lexicon {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut lex = Lexicon::new();
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut ids = Vec::with_capacity(spec.synsets);
    for i in 0..spec.synsets {
        let (lo, hi) = spec.words_per_synset;
        let n = rng.gen_range(lo..=hi.max(lo));
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            let mut w = pseudo_word(&mut rng);
            while !used.insert(w.clone()) {
                w.push_str(&format!("{}", rng.gen_range(0..100)));
            }
            words.push(w);
        }
        let id = lex.add_synset(words.iter().map(String::as_str), None);
        if i > 0 && rng.gen_bool(spec.hypernym_prob) {
            let parent = ids[rng.gen_range(0..ids.len())];
            lex.add_hypernym(id, parent);
        }
        ids.push(id);
    }
    lex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let spec = LexiconSpec::default();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.synset_count(), b.synset_count());
        assert_eq!(a.word_count(), b.word_count());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&LexiconSpec { seed: 1, ..Default::default() });
        let b = generate(&LexiconSpec { seed: 2, ..Default::default() });
        // almost surely different word sets
        assert!(a.word_count() > 0 && b.word_count() > 0);
        let some_word_differs =
            a.synset(crate::SynsetId(0)).words != b.synset(crate::SynsetId(0)).words;
        assert!(some_word_differs);
    }

    #[test]
    fn synset_count_matches_spec() {
        let lex = generate(&LexiconSpec { synsets: 25, ..Default::default() });
        assert_eq!(lex.synset_count(), 25);
    }

    #[test]
    fn planted_synonymy_holds() {
        let lex = generate(&LexiconSpec::default());
        for i in 0..lex.synset_count() {
            let s = lex.synset(crate::SynsetId(i as u32));
            if s.words.len() >= 2 {
                assert!(lex.are_synonyms(&s.words[0], &s.words[1]));
            }
        }
    }

    #[test]
    fn words_unique_across_synsets() {
        let lex = generate(&LexiconSpec { synsets: 200, ..Default::default() });
        // every word indexes exactly one synset
        for i in 0..lex.synset_count() {
            let s = lex.synset(crate::SynsetId(i as u32));
            for w in &s.words {
                assert_eq!(lex.synsets_of(w).len(), 1, "word {w:?} should be unambiguous");
            }
        }
    }

    #[test]
    fn hypernym_prob_zero_gives_forest_of_roots() {
        let lex = generate(&LexiconSpec { hypernym_prob: 0.0, ..Default::default() });
        for i in 0..lex.synset_count() {
            assert!(lex.direct_hypernyms(crate::SynsetId(i as u32)).is_empty());
        }
    }
}
