//! String similarity metrics for candidate bridge generation.
//!
//! When the lexicon has no entry for a pair of labels, SKAT-style
//! matchers fall back to lexical similarity. All metrics return a score
//! in `[0, 1]`, 1 meaning identical.

use crate::normalize::normalize;

/// Levenshtein edit distance (unit costs), iterative two-row DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity: `1 - dist / max_len`, 1.0 for two empty strings.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    if matches_a.is_empty() {
        return 0.0;
    }
    let m = matches_a.len() as f64;
    // transpositions: compare matched characters in order
    let b_matched: Vec<char> = {
        let mut idx: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
        idx.sort_unstable();
        idx.into_iter().map(|j| b[j]).collect()
    };
    let t =
        matches_a.iter().map(|&(i, _)| a[i]).zip(b_matched.iter()).filter(|(x, y)| x != *y).count()
            as f64
            / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard 0.1 prefix scale capped at 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Character-bigram Dice coefficient.
pub fn bigram_dice(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> Vec<(char, char)> {
        let cs: Vec<char> = s.chars().collect();
        cs.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return if a == b { 1.0 } else { 0.0 };
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut gb_pool = gb.clone();
    let mut overlap = 0usize;
    for g in &ga {
        if let Some(pos) = gb_pool.iter().position(|x| x == g) {
            gb_pool.swap_remove(pos);
            overlap += 1;
        }
    }
    2.0 * overlap as f64 / (ga.len() + gb.len()) as f64
}

/// Token-set similarity after [`normalize`]: Dice coefficient over the
/// normalised word multisets. `CargoCarrier` vs `cargo_carriers` → 1.0.
pub fn token_sim(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    if na.is_empty() && nb.is_empty() {
        return 1.0;
    }
    let sa: Vec<&str> = na.split(' ').filter(|s| !s.is_empty()).collect();
    let sb: Vec<&str> = nb.split(' ').filter(|s| !s.is_empty()).collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let mut pool = sb.clone();
    let mut overlap = 0usize;
    for t in &sa {
        if let Some(pos) = pool.iter().position(|x| x == t) {
            pool.swap_remove(pos);
            overlap += 1;
        }
    }
    2.0 * overlap as f64 / (sa.len() + sb.len()) as f64
}

/// The combined label similarity used by the SKAT similarity matcher:
/// the maximum of token similarity and Jaro-Winkler over normalised
/// strings. Robust to both compounding and small typos.
pub fn label_sim(a: &str, b: &str) -> f64 {
    let t = token_sim(a, b);
    let jw = jaro_winkler(&normalize(a), &normalize(b));
    t.max(jw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("car", "car"), 0);
        assert_eq!(levenshtein("car", "cart"), 1);
    }

    #[test]
    fn levenshtein_symmetry() {
        assert_eq!(levenshtein("truck", "trucks"), levenshtein("trucks", "truck"));
    }

    #[test]
    fn levenshtein_sim_range() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("a", "a"), 1.0);
        assert_eq!(levenshtein_sim("a", "b"), 0.0);
        let s = levenshtein_sim("vehicle", "vehicles");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-4);
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let j = jaro("prefixAB", "prefixBA");
        let jw = jaro_winkler("prefixAB", "prefixBA");
        assert!(jw > j);
        assert!(jw <= 1.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn bigram_dice_basics() {
        assert_eq!(bigram_dice("night", "night"), 1.0);
        assert!(bigram_dice("night", "nacht") > 0.0);
        assert_eq!(bigram_dice("a", "a"), 1.0); // no bigrams but identical
        assert_eq!(bigram_dice("", ""), 1.0);
        assert_eq!(bigram_dice("ab", "cd"), 0.0);
    }

    #[test]
    fn token_sim_handles_compounds() {
        assert_eq!(token_sim("CargoCarrier", "cargo_carriers"), 1.0);
        assert_eq!(token_sim("GoodsVehicle", "VehicleGoods"), 1.0); // set semantics
        assert!(token_sim("CargoCarrier", "Carrier") > 0.6);
        assert_eq!(token_sim("Car", "Truck"), 0.0);
    }

    #[test]
    fn label_sim_combines_metrics() {
        // plural/compound handled via tokens
        assert_eq!(label_sim("Trucks", "truck"), 1.0);
        // typo handled via jaro-winkler
        assert!(label_sim("Vehicle", "Vehcile") > 0.9);
        // unrelated labels score below the typo band (Jaro floors near 0.7
        // for same-alphabet words, so "low" means below ~0.8 here)
        assert!(label_sim("Price", "Driver") < 0.8);
        assert!(label_sim("Price", "Driver") < label_sim("Vehicle", "Vehcile"));
    }

    #[test]
    fn all_metrics_bounded() {
        let pairs = [
            ("Car", "Automobile"),
            ("", "x"),
            ("CargoCarrier", "carrier of cargo"),
            ("SUV", "suv"),
        ];
        for (a, b) in pairs {
            for f in [levenshtein_sim, jaro, jaro_winkler, bigram_dice, token_sim, label_sim] {
                let s = f(a, b);
                assert!((0.0..=1.0).contains(&s), "{a:?} vs {b:?} gave {s}");
            }
        }
    }
}
