//! # rayon — offline stand-in
//!
//! This workspace builds in a hermetic environment with no crates-io
//! access (see `crates/compat/rand`), so the slice of the `rayon` API
//! that `onion-exec` needs is vendored here behind the same paths:
//!
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] — a persistent pool with an
//!   explicit thread count;
//! * [`ThreadPool::scope`] / [`scope`] — structured ("scoped")
//!   parallelism: spawned closures may borrow data owned by the caller's
//!   stack frame, and `scope` does not return until every spawned job
//!   has finished;
//! * [`ThreadPool::join`] / [`join`] — two-way fork-join;
//! * [`ThreadPool::par_chunk_map`] / [`par_chunk_map`] — the
//!   `par_chunks().map().collect()` shape as a single helper (the real
//!   `ParallelIterator` machinery is far outside stand-in scope);
//! * [`ThreadPool::install`] and [`current_num_threads`].
//!
//! # What is simplified
//!
//! Real rayon uses lock-free per-worker deques with work *stealing*.
//! This stand-in uses one shared injector queue (a mutex-protected
//! `VecDeque`) with cooperative *helping*: any thread that blocks
//! waiting for a scope to finish pops queued jobs and runs them inline.
//! That preserves the two properties the callers rely on — nested
//! `scope`/`join` never deadlocks even on a one-worker pool, and an
//! idle waiter contributes CPU instead of sleeping — but not rayon's
//! contention behaviour at high core counts. Job granularity in this
//! workspace is chunky (hundreds of microseconds and up), so the single
//! queue is not the bottleneck.
//!
//! Two deliberate semantic deviations, both documented at the item:
//! closure bounds drop `Send` requirements rayon only needs because it
//! migrates the *outer* closure into the pool (we run it on the calling
//! thread), and [`ThreadPool::install`] runs its closure on the calling
//! thread rather than a worker. Call sites written against real rayon
//! compile unchanged; swapping this crate for crates-io rayon is a
//! manifest edit (plus replacing `par_chunk_map` calls with
//! `par_chunks().map().collect()`).
//!
//! A pool of `n` threads spawns `n - 1` OS workers; the thread calling
//! `scope`/`join` is the n-th participant (it helps until the scope
//! drains). `num_threads(1)` therefore spawns no OS threads at all and
//! runs every job inline on the caller — the deterministic sequential
//! baseline the benches compare against.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A queued unit of work. Jobs are `'static` from the queue's point of
/// view; scoped spawns erase their `'scope` lifetime (see
/// [`Scope::spawn`]) and `scope` blocks until they all complete, which
/// is what makes the erasure sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

/// Queue + wakeup channel shared by workers and scope waiters.
///
/// A single mutex/condvar pair covers both "a job was pushed" and "a
/// scope completed": every waiter re-checks its own condition after a
/// wakeup, so no notification can be missed regardless of which event
/// it was waiting for.
struct Shared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl Shared {
    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("pool mutex");
        st.queue.push_back(job);
        drop(st);
        self.cv.notify_all();
    }
}

/// Completion state of one `scope` call.
struct ScopeState {
    /// Spawned-but-unfinished job count.
    pending: AtomicUsize,
    /// First panic payload from a spawned job, rethrown by `scope`.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState { pending: AtomicUsize::new(0), panic: Mutex::new(None) }
    }
}

/// Blocks until `scope` has no pending jobs, running queued jobs (from
/// any scope) while waiting so nested scopes cannot deadlock.
fn wait_scope(shared: &Shared, scope: &ScopeState) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                // `pending` is read under the pool mutex and the final
                // decrement notifies under the same mutex, so this
                // check/wait pair cannot miss the completion signal.
                if scope.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                if let Some(j) = st.queue.pop_front() {
                    break j;
                }
                st = shared.cv.wait(st).expect("pool mutex");
            }
        };
        job();
    }
}

/// A scope for spawning borrowed jobs; see [`ThreadPool::scope`].
///
/// The lifetime is invariant (as in rayon): data borrowed by spawned
/// closures must outlive `'scope`, and `scope` does not return before
/// every job has run, so the borrows stay valid for the jobs' whole
/// execution.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the pool. The closure may borrow anything that
    /// outlives `'scope` and receives the scope again so it can spawn
    /// recursively.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let child = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&self.state),
            _marker: PhantomData,
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&child))) {
                let mut slot = child.state.panic.lock().expect("panic slot");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if child.state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last job out: wake the scope waiter under the pool
                // mutex (see wait_scope for why the lock is required)
                let _guard = child.shared.state.lock().expect("pool mutex");
                child.shared.cv.notify_all();
            }
        });
        // SAFETY: `scope`/`scope_in` block in `wait_scope` until
        // `pending` reaches zero before returning (even when the scope
        // body panics), so everything `body` borrows — constrained to
        // outlive `'scope` by the bound above — is still alive whenever
        // the job runs. The queue only needs the job to *look* 'static.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.shared.push(job);
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]. The stand-in
/// pool cannot actually fail to build; the type exists so call sites
/// match the real API.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder matching `rayon::ThreadPoolBuilder`'s shape.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count = available
    /// parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` (the default) means available
    /// parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_parallelism() } else { self.num_threads };
        Ok(ThreadPool::with_threads(n))
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A persistent pool of worker threads.
///
/// A pool of `n` threads spawns `n - 1` OS workers; the caller of
/// [`ThreadPool::scope`] / [`ThreadPool::join`] is the n-th worker for
/// the duration of the call.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

impl ThreadPool {
    fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("onion-pool-{i}"))
                    .spawn(move || {
                        // free-function scope()/join() inside a job run
                        // on this worker's own pool
                        let _ctx = PoolContext::enter(Arc::clone(&shared), threads);
                        worker_loop(&shared);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers, threads }
    }

    /// The pool's thread count (workers plus the participating caller).
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op`, making this pool the target of free-function
    /// [`scope`]/[`join`]/[`par_chunk_map`] calls made inside it.
    ///
    /// Unlike real rayon, `op` executes on the *calling* thread (the
    /// stand-in has no cross-pool migration); observable behaviour of
    /// the nested parallel calls is the same.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _ctx = PoolContext::enter(Arc::clone(&self.shared), self.threads);
        op()
    }

    /// Structured parallelism: `op` may spawn borrowed jobs through the
    /// [`Scope`]; all of them complete before `scope` returns. A panic
    /// in `op` or any job is propagated (first one wins) after every
    /// job has finished.
    ///
    /// Unlike real rayon, `op` runs on the calling thread, so it does
    /// not need `Send`.
    pub fn scope<'scope, R>(&self, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
        scope_in(&self.shared, op)
    }

    /// Runs `a` and `b`, potentially in parallel, returning both
    /// results. `a` runs on the calling thread; `b` is spawned.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RB: Send,
    {
        join_in(&self.shared, a, b)
    }

    /// Applies `f` to consecutive chunks of `items` (each of length
    /// `chunk_size`, except possibly the last), in parallel, returning
    /// the results in chunk order — the stand-in for
    /// `items.par_chunks(n).map(f).collect()`.
    pub fn par_chunk_map<T, R>(
        &self,
        items: &[T],
        chunk_size: usize,
        f: impl Fn(&[T]) -> R + Sync,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        par_chunk_map_in(&self.shared, items, chunk_size, f)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool mutex");
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool mutex");
            loop {
                if let Some(j) = st.queue.pop_front() {
                    break Some(j);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.cv.wait(st).expect("pool mutex");
            }
        };
        match job {
            Some(j) => j(),
            None => return,
        }
    }
}

fn scope_in<'scope, R>(shared: &Arc<Shared>, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let scope = Scope {
        shared: Arc::clone(shared),
        state: Arc::new(ScopeState::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Always drain before returning — including when `op` panicked —
    // because spawned jobs may borrow the caller's stack.
    wait_scope(&scope.shared, &scope.state);
    let job_panic = scope.state.panic.lock().expect("panic slot").take();
    match (result, job_panic) {
        (Err(payload), _) => resume_unwind(payload),
        (Ok(_), Some(payload)) => resume_unwind(payload),
        (Ok(r), None) => r,
    }
}

fn join_in<A, B, RA, RB>(shared: &Arc<Shared>, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    let mut rb: Option<RB> = None;
    let ra = {
        let rb_slot = &mut rb;
        scope_in(shared, |s| {
            s.spawn(move |_| *rb_slot = Some(b()));
            a()
        })
    };
    (ra, rb.expect("join: spawned half completed"))
}

fn par_chunk_map_in<T, R>(
    shared: &Arc<Shared>,
    items: &[T],
    chunk_size: usize,
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let chunk_size = chunk_size.max(1);
    let n = items.len().div_ceil(chunk_size);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    scope_in(shared, |s| {
        // chunks_mut(1) hands each job a disjoint one-slot window of the
        // output, so no synchronisation is needed on the results
        for (slot, chunk) in out.chunks_mut(1).zip(items.chunks(chunk_size)) {
            let f = &f;
            s.spawn(move |_| slot[0] = Some(f(chunk)));
        }
    });
    out.into_iter().map(|r| r.expect("chunk completed")).collect()
}

// ----------------------------------------------------------------------
// Global pool and the thread-local "current pool" install stack
// ----------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::with_threads(default_parallelism()))
}

thread_local! {
    static CURRENT: std::cell::RefCell<Vec<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII entry in the install stack.
struct PoolContext;

impl PoolContext {
    fn enter(shared: Arc<Shared>, threads: usize) -> Self {
        CURRENT.with(|c| c.borrow_mut().push((shared, threads)));
        PoolContext
    }
}

impl Drop for PoolContext {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

fn with_current<R>(f: impl FnOnce(&Arc<Shared>, usize) -> R) -> R {
    let top = CURRENT.with(|c| c.borrow().last().cloned());
    match top {
        Some((shared, threads)) => f(&shared, threads),
        None => {
            let g = global();
            f(&g.shared, g.threads)
        }
    }
}

/// The thread count of the current pool: the innermost
/// [`ThreadPool::install`] target, the worker's own pool inside a job,
/// or the global pool.
pub fn current_num_threads() -> usize {
    with_current(|_, threads| threads)
}

/// [`ThreadPool::scope`] on the current (installed or global) pool.
pub fn scope<'scope, R>(op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    with_current(|shared, _| scope_in(shared, op))
}

/// [`ThreadPool::join`] on the current (installed or global) pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    with_current(|shared, _| join_in(shared, a, b))
}

/// [`ThreadPool::par_chunk_map`] on the current (installed or global)
/// pool.
pub fn par_chunk_map<T, R>(items: &[T], chunk_size: usize, f: impl Fn(&[T]) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    with_current(|shared, _| par_chunk_map_in(shared, items, chunk_size, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn scope_runs_all_jobs_and_borrows_stack_data() {
        for threads in [1, 2, 4] {
            let p = pool(threads);
            let data: Vec<u64> = (0..100).collect();
            let total = AtomicU64::new(0);
            p.scope(|s| {
                for chunk in data.chunks(7) {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 4950, "threads={threads}");
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock_on_one_worker() {
        let p = pool(2);
        let hits = AtomicU64::new(0);
        p.scope(|s| {
            for _ in 0..4 {
                let hits = &hits;
                s.spawn(move |inner| {
                    inner.spawn(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn join_returns_both_results() {
        let p = pool(3);
        let (a, b) = p.join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_chunk_map_preserves_chunk_order() {
        for threads in [1, 4] {
            let p = pool(threads);
            let items: Vec<usize> = (0..37).collect();
            let sums = p.par_chunk_map(&items, 5, |c| c.iter().sum::<usize>());
            let expected: Vec<usize> = items.chunks(5).map(|c| c.iter().sum()).collect();
            assert_eq!(sums, expected);
        }
    }

    #[test]
    fn par_chunk_map_empty_input() {
        let p = pool(2);
        let out = p.par_chunk_map(&[] as &[u8], 4, |c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn job_panic_propagates_after_drain() {
        let p = pool(2);
        let done = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            p.scope(|s| {
                s.spawn(|_| panic!("boom"));
                let done = &done;
                s.spawn(move |_| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(caught.is_err(), "panic must propagate out of scope");
        assert_eq!(done.load(Ordering::Relaxed), 1, "sibling job still ran");
        // pool is still usable afterwards
        let (a, b) = p.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn install_routes_free_functions_to_the_pool() {
        let p = pool(2);
        let n = p.install(current_num_threads);
        assert_eq!(n, 2);
        let sums = p.install(|| par_chunk_map(&[1u32, 2, 3, 4], 2, |c| c.iter().sum::<u32>()));
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn single_thread_pool_is_inline_and_deterministic() {
        let p = pool(1);
        // with no OS workers every job runs during the scope drain, on
        // this thread, in spawn order
        let mut order = Vec::new();
        {
            let order_ref = &mut order;
            p.scope(|s| {
                s.spawn(move |_| {
                    order_ref.push(1);
                    order_ref.push(2);
                });
            });
        }
        assert_eq!(order, vec![1, 2]);
    }
}
