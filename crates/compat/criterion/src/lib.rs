//! # criterion — offline stand-in
//!
//! The workspace builds hermetically (no crates-io), so the benchmark
//! surface ONION's `b1`–`b8` targets use is vendored here:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Each benchmark warms up, then times `sample_size` samples (stopping
//! early once `measurement_time` is spent) and prints
//! `group/id  median ... (n samples)` to stdout. There are no HTML
//! reports, statistical regressions, or CLI filters — the value here is
//! that `cargo bench` runs and prints comparable numbers offline.

use std::time::{Duration, Instant};

/// Entry point handed to each `criterion_group!` target.
#[derive(Clone, Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 100,
            default_measurement_time: Duration::from_secs(5),
            default_warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Accepted for drop-in compatibility with the real
    /// `criterion_group!` expansion; there are no CLI args to read.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).run(&name, f);
        self
    }

    /// No-op; reports are printed as each benchmark finishes.
    pub fn final_summary(&self) {}
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        self.run(&id, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.id.clone();
        self.run(&id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, id);
    }
}

/// Lets `bench_function` accept either a `&str` or a [`BenchmarkId`].
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        BenchmarkIdOrStr(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        BenchmarkIdOrStr(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrStr(id.id)
    }
}

/// Runs the measured closure and collects samples.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warm_up_start = Instant::now();
        loop {
            black_box(routine());
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        let measurement_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let sample_start = Instant::now();
            black_box(routine());
            self.samples.push(sample_start.elapsed());
            if measurement_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}  (no samples — did the routine call iter?)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{id}  median {}  range [{} .. {}]  ({} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Identity function the optimizer must assume reads and writes its
/// argument.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                n + 1
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("union", 200);
        assert_eq!(id.id, "union/200");
    }
}
