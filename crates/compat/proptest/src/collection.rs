//! Collection strategies. Only `vec` is provided — the single
//! collection combinator the workspace uses.

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A vector whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

/// The result of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
