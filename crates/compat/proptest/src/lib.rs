//! # proptest — offline stand-in
//!
//! The workspace builds hermetically (no crates-io), so the slice of
//! the `proptest` API that ONION's property tests use is vendored here
//! under the same names:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, `&str` regex patterns, tuples, and [`strategy::Just`];
//! * [`collection::vec`] for sized vectors of a strategy;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Deliberate differences from the real crate: generation is seeded
//! deterministically per test (stable across runs and machines), there
//! is **no shrinking** — a failing case reports its case number and the
//! formatted assertion instead of a minimized input — and regex
//! strategies support only the subset the tests use (literals, escapes,
//! character classes, groups, and `{m,n}` / `?` / `*` / `+` repetition).
//!
//! Set `PROPTEST_CASES` to override the case count globally (useful to
//! crank coverage locally or trim CI time).

pub mod collection;
pub mod strategy;
pub mod test_runner;

mod regex;

/// Mirrors `proptest::prelude` for the names the tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors the `prop::` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests.
///
/// Supports the forms the workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strategy,)+);
                $crate::test_runner::run(
                    &$config,
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current property case (with an optional format message)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Picks uniformly between several strategies producing the same value
/// type. (The real macro supports weights; the workspace doesn't use
/// them.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Union::boxed($strategy)),+
        ])
    };
}
