//! The case loop behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Per-block configuration. Only `cases` is honoured; the remaining
/// fields exist so `..ProptestConfig::default()` updates from the real
/// API keep compiling.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `test` against `cases` values drawn from `strategy`.
///
/// Seeding is derived from the test's name, so every test sees a
/// stable, independent stream across runs and machines. On failure the
/// case number is reported; re-running reproduces it exactly.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let cases =
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(config.cases);
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    for case in 0..cases {
        let value = strategy.generate(&mut rng);
        if let Err(err) = test(value) {
            panic!("proptest `{name}`: case {case} of {cases} failed\n{err}");
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro pipeline end to end: multi-arg, maps, collections.
        #[test]
        fn macro_roundtrip(
            n in 1usize..20,
            label in "[a-z]{1,4}",
            pairs in prop::collection::vec((0u8..10, 0u8..10), 0..5),
        ) {
            prop_assert!(n >= 1 && n < 20);
            prop_assert!(!label.is_empty() && label.len() <= 4);
            for (a, b) in &pairs {
                prop_assert!(*a < 10, "a out of range: {a}");
                prop_assert_eq!(*b < 10, true);
            }
        }

        #[test]
        fn oneof_and_just(s in prop_oneof!["[0-9]{2}", Just("fixed".to_string())]) {
            prop_assert!(s == "fixed" || s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        always_fails();
    }
}
