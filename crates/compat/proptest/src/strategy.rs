//! The [`Strategy`] trait and the combinators ONION's tests reach for.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree: a strategy draws a
/// plain value from the rng and failures are reported without
/// shrinking.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed strategies — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }

    /// Boxes a strategy, pinning its value type for inference inside
    /// the `prop_oneof!` expansion.
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// `&str` strategies are regex patterns, as in the real crate.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::regex::generate(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($s:ident $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A a);
tuple_strategy!(A a, B b);
tuple_strategy!(A a, B b, C c);
tuple_strategy!(A a, B b, C c, D d);
tuple_strategy!(A a, B b, C c, D d, E e);
tuple_strategy!(A a, B b, C c, D d, E e, F f);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h);
