//! String generation from a small regex subset.
//!
//! Supports exactly what the workspace's `&str` strategies need:
//! literal characters, `\`-escapes, character classes with ranges
//! (`[a-zA-Z0-9_]`), groups `(...)`, and the repetitions `{n}`,
//! `{m,n}`, `?`, `*`, `+` (unbounded repeats are capped at 8).
//! Anything else — alternation, anchors, named classes — panics with a
//! clear message so a future test author knows to extend this module.

use rand::rngs::StdRng;
use rand::Rng;

/// One parsed regex element plus its repetition bounds.
struct Piece {
    node: Node,
    min: u32,
    max: u32,
}

enum Node {
    Lit(char),
    /// Inclusive char ranges; singletons are `(c, c)`.
    Class(Vec<(char, char)>),
    Group(Vec<Piece>),
}

/// Generates one string matching `pattern`.
pub(crate) fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut chars = pattern.chars().peekable();
    let pieces = parse_sequence(&mut chars, pattern, false);
    assert!(chars.next().is_none(), "regex strategy {pattern:?}: unbalanced ')'");
    let mut out = String::new();
    emit_sequence(&pieces, rng, &mut out);
    out
}

type CharStream<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn parse_sequence(chars: &mut CharStream, pattern: &str, in_group: bool) -> Vec<Piece> {
    let mut pieces = Vec::new();
    while let Some(&c) = chars.peek() {
        let node = match c {
            ')' => {
                assert!(in_group, "regex strategy {pattern:?}: stray ')'");
                break;
            }
            '(' => {
                chars.next();
                let inner = parse_sequence(chars, pattern, true);
                assert_eq!(chars.next(), Some(')'), "regex strategy {pattern:?}: unclosed '('");
                Node::Group(inner)
            }
            '[' => {
                chars.next();
                Node::Class(parse_class(chars, pattern))
            }
            '\\' => {
                chars.next();
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("regex strategy {pattern:?}: trailing '\\'"));
                Node::Lit(escaped)
            }
            '|' | '^' | '$' | '.' => {
                panic!("regex strategy {pattern:?}: unsupported metacharacter {c:?}")
            }
            _ => {
                chars.next();
                Node::Lit(c)
            }
        };
        let (min, max) = parse_repetition(chars, pattern);
        pieces.push(Piece { node, min, max });
    }
    pieces
}

fn parse_class(chars: &mut CharStream, pattern: &str) -> Vec<(char, char)> {
    assert!(
        chars.peek() != Some(&'^'),
        "regex strategy {pattern:?}: negated classes are unsupported"
    );
    let mut ranges = Vec::new();
    loop {
        let c = chars.next().unwrap_or_else(|| panic!("regex strategy {pattern:?}: unclosed '['"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("regex strategy {pattern:?}: trailing '\\'"));
                ranges.push((escaped, escaped));
            }
            lo => {
                // `a-z` is a range unless the '-' is the closing char.
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next();
                    if lookahead.peek().is_some_and(|&hi| hi != ']') {
                        chars.next();
                        let hi = chars.next().unwrap();
                        assert!(lo <= hi, "regex strategy {pattern:?}: inverted range");
                        ranges.push((lo, hi));
                        continue;
                    }
                }
                ranges.push((lo, lo));
            }
        }
    }
    assert!(!ranges.is_empty(), "regex strategy {pattern:?}: empty class");
    ranges
}

/// Cap for `*` and `+`, mirroring proptest's preference for short
/// strings over pathological ones.
const UNBOUNDED_CAP: u32 = 8;

fn parse_repetition(chars: &mut CharStream, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        Some('{') => {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => body.push(c),
                    None => panic!("regex strategy {pattern:?}: unclosed '{{'"),
                }
            }
            let parse = |s: &str| {
                s.trim()
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("regex strategy {pattern:?}: bad bound {s:?}"))
            };
            match body.split_once(',') {
                Some((min, max)) => (parse(min), parse(max)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

fn emit_sequence(pieces: &[Piece], rng: &mut StdRng, out: &mut String) {
    for piece in pieces {
        let reps = rng.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            emit_node(&piece.node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
            let mut pick = rng.gen_range(0..total);
            for (lo, hi) in ranges {
                let size = *hi as u32 - *lo as u32 + 1;
                if pick < size {
                    out.push(char::from_u32(*lo as u32 + pick).expect("class range within char"));
                    return;
                }
                pick -= size;
            }
            unreachable!("class pick within total");
        }
        Node::Group(inner) => emit_sequence(inner, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(pattern: &str) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..200).map(|_| super::generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn class_with_bounds() {
        for s in samples("[a-z]{1,6}") {
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn leading_class_then_repeat() {
        for s in samples("[A-Z][a-z0-9_]{0,8}") {
            assert!(s.chars().next().unwrap().is_ascii_uppercase(), "{s:?}");
            assert!(s.len() <= 9, "{s:?}");
        }
    }

    #[test]
    fn optional_group_with_escape() {
        let all = samples("[a-z]{1,5}(\\.[A-Z][a-z]{1,4})?");
        assert!(all.iter().any(|s| s.contains('.')));
        assert!(all.iter().any(|s| !s.contains('.')));
        for s in &all {
            if let Some((head, tail)) = s.split_once('.') {
                assert!(head.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
                assert!(tail.chars().next().unwrap().is_ascii_uppercase(), "{s:?}");
            }
        }
    }
}
