//! # rand — offline stand-in
//!
//! This workspace builds in a hermetic environment with no crates-io
//! access, so the pieces of the `rand` API that ONION actually uses are
//! vendored here behind the same paths: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`].
//!
//! The generator is SplitMix64: deterministic for a given seed, fast,
//! and statistically far better than the test workloads need. Integer
//! sampling uses simple modulo reduction — fine for seeded test-data
//! generation, not for statistics-grade uniformity.
//!
//! If the workspace later moves to an environment with registry access,
//! delete `crates/compat/rand` and point `workspace.dependencies.rand`
//! at crates-io; every call site already matches the real 0.8 API.

pub mod rngs;

/// The output side of a random generator: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed. Only `seed_from_u64` is provided because
/// that is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range` (`a..b`, `a..=b`, or a float `a..b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to draw one uniform sample of `T` from an rng.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + unit_f64(rng.next_u64()) as $t * (self.end - self.start);
                // Rounding (f32 narrowing, or the fma above) can land
                // exactly on the excluded end; keep the half-open
                // contract by folding that sliver onto start.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=3);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(100.0..50_000.0_f64);
            assert!((100.0..50_000.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }
}
