//! Concrete generators. Only [`StdRng`] exists: the workspace never
//! asks for `thread_rng` or OS entropy — every caller seeds explicitly
//! so test data is reproducible.

use crate::{RngCore, SeedableRng};

/// Deterministic seeded generator (SplitMix64). Mirrors the call
/// surface of `rand::rngs::StdRng` without the crypto-grade backing —
/// acceptable because ONION only uses it to synthesize test ontologies.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Decorrelate small consecutive seeds before the first output.
        StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
