//! B16 — shard-local saturation on the deep-hierarchy tier: worker
//! partitions with local atom tables, per-pair delta mailboxes, one
//! canonical fold at fixpoint. The identity gate (fixpoint equality
//! with the sequential engine, merge-stream conservation against the
//! parallel engine's single barrier) runs inside `run_b16` before any
//! series is timed; the committed medians live in `BENCH_onion.json`'s
//! `b16_shardlocal_saturation` section via `experiments --json`.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_bench::shardlocal::run_b16;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b16_shardlocal_saturation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // run_b16 gates identity, then times cold/warm/partseed series
    // with the shared run_series helper; criterion wraps the whole
    // family so `cargo bench b16` tracks it over time.
    group.bench_function("family", |b| {
        b.iter(|| {
            let report = run_b16();
            assert!(report.derived > report.seeded, "closure grows the base");
            report.rows.len()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
