//! B9 — graph hot paths (closure + label-filtered traversal + edge
//! probes) on the testkit 10k-node / 50k-edge tier. Criterion view of
//! the same set `experiments --json` records in `BENCH_onion.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use onion_bench::hotpaths::{routines, tier, Fixture};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b9_graph_hotpaths");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let fx = Fixture::new(&tier());
    for (name, _, routine) in routines(&fx) {
        group.bench_function(name, |b| b.iter(|| routine()));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
