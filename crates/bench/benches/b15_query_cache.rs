//! B15 — query-cache serving path: cold miss vs warm hit vs
//! publish-storm mixed workload. Checksums and the warm hit ratio are
//! asserted inside every iteration (see `onion_bench::cache`); the
//! committed medians live in `BENCH_onion.json`'s `b15_query_cache`
//! section via `experiments --json`.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_bench::cache::B15Fixture;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b15_query_cache");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let mut fixture = B15Fixture::new(4096);
    let want = fixture.checksum(&fixture.batch());

    group.bench_function("cold_miss", |b| {
        b.iter(|| {
            fixture.edit_and_publish();
            let out = fixture.batch();
            assert_eq!(fixture.checksum(&out), want);
        })
    });

    // prime once; every iteration below is all hits at a pinned epoch
    fixture.batch();
    group.bench_function("warm_hit", |b| {
        b.iter(|| {
            let out = fixture.batch();
            assert_eq!(fixture.checksum(&out), want);
        })
    });

    group.bench_function("publish_storm", |b| {
        b.iter(|| {
            fixture.edit_and_publish();
            let fresh = fixture.batch();
            let cached = fixture.batch();
            assert_eq!(fixture.checksum(&fresh), want);
            assert_eq!(fixture.checksum(&cached), want);
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
