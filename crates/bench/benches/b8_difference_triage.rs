//! B8 — difference-guided update triage (§5.3): the fraction of source
//! updates requiring articulation maintenance tracks the updates'
//! articulation locality, and triage itself is cheap regardless.
//!
//! Arms per locality setting:
//!   * `triage+repair` — the ONION maintenance path;
//!   * `no-triage`     — repair-everything strawman (rebuild per batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_bench::{articulated, pair};
use onion_core::articulate::maintain::{apply_delta, rebuild, triage};
use onion_core::prelude::*;
use onion_core::testkit::{update_stream, UpdateSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b8_difference_triage");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let p = pair(59, 1000, 0.2);
    let art = articulated(&p);
    let generator = ArticulationGenerator::new();
    for &bridged in &[0.0f64, 0.25, 0.75] {
        let spec =
            UpdateSpec { seed: 13, ops: 50, bridged_fraction: bridged, delete_fraction: 0.2 };
        let ops = update_stream(&p.left, &art, &spec);
        let mut evolved_graph = p.left.graph().clone();
        onion_core::graph::ops::apply_all(&mut evolved_graph, &ops).unwrap();
        let evolved = Ontology::from_graph(evolved_graph).unwrap();
        let id = format!("bridged{}", (bridged * 100.0) as u32);

        group.bench_with_input(BenchmarkId::new("triage-only", &id), &id, |b, _| {
            b.iter(|| triage(&art, "left", &ops))
        });
        group.bench_with_input(BenchmarkId::new("triage+repair", &id), &id, |b, _| {
            b.iter(|| {
                let mut a = art.clone();
                apply_delta(&mut a, "left", &ops, &[&evolved, &p.right], &generator, None).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("no-triage-rebuild", &id), &id, |b, _| {
            b.iter(|| rebuild(&art, &[&evolved, &p.right], &generator).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
