//! B2 — articulation generation cost vs ontology size and overlap
//! (paper §2.4/§4: semi-automatic generation is the scalable path).
//!
//! Two series:
//!   * `propose` — one SKAT pipeline pass (exact + synonym + similarity);
//!   * `engine`  — the full propose → oracle-confirm → generate loop.
//!
//! Candidate *quality* (precision/recall vs the planted truth) is
//! reported by the `experiments` binary; wall time is measured here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_bench::pair;
use onion_core::articulate::{ExactLabelMatcher, SimilarityMatcher, SynonymMatcher};
use onion_core::prelude::*;

fn pipeline(lex: &Lexicon) -> MatcherPipeline {
    MatcherPipeline::new()
        .with(ExactLabelMatcher)
        .with(SynonymMatcher::new(lex.clone()))
        .with(SimilarityMatcher { threshold: 0.9, max_pairs: 2_000_000 })
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b2_generation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &concepts in &[100usize, 400] {
        for &overlap in &[0.05f64, 0.25] {
            let p = pair(17, concepts, overlap);
            let id = format!("n{concepts}_ov{}", (overlap * 100.0) as u32);
            let pl = pipeline(&p.lexicon);
            group.bench_with_input(BenchmarkId::new("propose", &id), &id, |b, _| {
                b.iter(|| pl.propose(&p.left, &p.right, &RuleSet::new()))
            });
            group.bench_with_input(BenchmarkId::new("engine", &id), &id, |b, _| {
                b.iter(|| {
                    let engine = ArticulationEngine::new(pipeline(&p.lexicon))
                        .with_config(EngineConfig { max_rounds: 2, ..Default::default() });
                    let mut oracle = OracleExpert::new(p.truth.iter().cloned());
                    engine.run(&p.left, &p.right, &mut oracle, RuleSet::new()).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
