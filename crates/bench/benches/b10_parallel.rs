//! B10 — parallel batch throughput over a snapshot, per thread count.
//!
//! Times the closure batch and the query batch of
//! `onion_bench::parallel` at 1/2/4/available-parallelism threads.
//! Result identity across thread counts is asserted separately by
//! `experiments --json` (and the crate's tests); this target is timing
//! only.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_bench::parallel::{thread_counts, ParallelFixture};
use onion_core::exec::Executor;

fn bench(c: &mut Criterion) {
    let fx = ParallelFixture::new(256, 64, 5000);
    let mut group = c.benchmark_group("b10_parallel");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for threads in thread_counts() {
        let exec = Executor::new(threads);
        group.bench_function(format!("closure_batch/{threads}t"), |b| {
            b.iter(|| std::hint::black_box(fx.closure_batch(&exec)))
        });
        group.bench_function(format!("query_batch/{threads}t"), |b| {
            b.iter(|| std::hint::black_box(fx.query_batch(&exec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
