//! B5 — the §5 algebra operators' runtime vs ontology size and bridge
//! density: Union, Intersection, Difference (including the §5.3
//! reachability-based conservative semantics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_bench::{articulated, pair, truth_rules};
use onion_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b5_algebra");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &concepts in &[200usize, 1000, 4000] {
        for &overlap in &[0.1f64, 0.4] {
            if concepts == 4000 && overlap > 0.2 {
                continue; // the 40% point at 4000 concepts exceeds the bench budget
            }
            let p = pair(43, concepts, overlap);
            let rules = truth_rules(&p);
            let art = articulated(&p);
            let generator = ArticulationGenerator::new();
            let id = format!("n{concepts}_ov{}", (overlap * 100.0) as u32);

            group.bench_with_input(BenchmarkId::new("union", &id), &id, |b, _| {
                b.iter(|| union(&p.left, &p.right, &rules, &generator).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("union-cached-art", &id), &id, |b, _| {
                b.iter(|| onion_core::algebra::union::union_with(&p.left, &p.right, &art).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("intersection", &id), &id, |b, _| {
                b.iter(|| intersect(&p.left, &p.right, &rules, &generator).unwrap())
            });
            group.bench_with_input(BenchmarkId::new("difference", &id), &id, |b, _| {
                b.iter(|| difference(&p.left, &p.right, &art).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
