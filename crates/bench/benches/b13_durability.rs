//! B13 — durability stack: WAL group-flush append, shard-incremental
//! checkpoint at a fixed dirty fraction, and WAL-only recovery. Each
//! iteration runs the corresponding B13 series row once (with its
//! exactness asserts live — dropped records or inexact checkpoint
//! accounting panic rather than score). The `b13_durability` section
//! `experiments --json` records in `BENCH_onion.json` carries the
//! committed medians the `--compare` gate checks.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_bench::durability::run_b13_sized;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b13_durability");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.bench_function("append_checkpoint_recover_round", |b| {
        b.iter(|| std::hint::black_box(run_b13_sized(&[1], &[1_000], 1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
