//! B4 — query answering across the articulation (paper §2.3/§5.1) vs
//! the pre-merged global schema: reformulation + two-source execution
//! with metric conversion against direct global lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_bench::{articulated, instance_kbs, pair};
use onion_core::prelude::*;
use onion_core::testkit::GlobalMerge;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b4_query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // (total concepts across both sides, instances): the last row is
    // the 10k-node tier added alongside the label-indexed adjacency
    // layer so plan/reformulation costs are measured at scale.
    for &(concepts, instances) in &[(400usize, 1000usize), (400, 10_000), (10_000, 10_000)] {
        let p = pair(31, concepts, 0.25);
        let art = articulated(&p);
        let (lkb, rkb) = instance_kbs(&p, instances);
        let lw = InMemoryWrapper::new(lkb.clone());
        let rw = InMemoryWrapper::new(rkb.clone());
        let conversions = ConversionRegistry::standard();
        // the articulation class with the most mapped sources: pick the
        // first truth pair's target class name
        // the simple-rule translation names the articulation node after
        // the RHS (right-side) term
        let class = p.truth[0].1.split_once('.').unwrap().1.to_string();
        let query =
            Query::all(&class).select("Price").filter("Price", CmpOp::Lt, Value::Num(25_000.0));

        let tier = format!("{concepts}x{instances}");
        group.bench_with_input(BenchmarkId::new("onion", &tier), &instances, |b, _| {
            let sources: Vec<&Ontology> = vec![&p.left, &p.right];
            let wrappers: Vec<&dyn Wrapper> = vec![&lw, &rw];
            b.iter(|| execute(&query, &art, &sources, &conversions, &wrappers).unwrap())
        });

        group.bench_with_input(BenchmarkId::new("onion-plan-only", &tier), &instances, |b, _| {
            let sources: Vec<&Ontology> = vec![&p.left, &p.right];
            b.iter(|| onion_core::query::plan(&query, &art, &sources, &conversions).unwrap())
        });

        // baseline: the global schema answers by scanning all instances
        // whose merged class matches
        let gm = GlobalMerge::build(&[&p.left, &p.right], &p.lexicon);
        let global_class = gm.global_label("right", &class).unwrap_or(&class).to_string();
        group.bench_with_input(BenchmarkId::new("global-merge", &tier), &instances, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for (kb, source) in [(&lkb, "left"), (&rkb, "right")] {
                    for inst in kb.instances() {
                        let classes = gm.classes_of(source, &inst.class);
                        if classes.iter().any(|cl| cl == &global_class) {
                            if let Some(Value::Num(n)) = inst.attrs.get("Price") {
                                if *n < 25_000.0 {
                                    hits += 1;
                                }
                            }
                        }
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
