//! B7 — composability (§4.2): cost of adding the k-th source.
//!
//! * `onion-add-kth`  — articulate the new source against the existing
//!   articulation ladder (one new step, earlier steps untouched);
//! * `global-remerge` — the baseline's only option: merge all k sources
//!   from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_core::algebra::compose::{add_source, compose_all};
use onion_core::prelude::*;
use onion_core::testkit::{generate_ontology, GlobalMerge, OntologySpec};

fn sources(k: usize) -> Vec<Ontology> {
    (0..k)
        .map(|i| {
            let mut spec = OntologySpec::sized(&format!("src{i}"), 100 + i as u64, 150);
            spec.attr_density = 0.2;
            spec.instance_density = 0.0;
            generate_ontology(&spec)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b7_compose");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let lexicon = transport_lexicon();
    for &k in &[3usize, 5] {
        let all = sources(k);
        let refs: Vec<&Ontology> = all.iter().collect();
        // pre-build the ladder over the first k-1 sources
        let prefix: Vec<&Ontology> = refs[..k - 1].to_vec();

        group.bench_with_input(BenchmarkId::new("onion-add-kth", k), &k, |b, _| {
            b.iter(|| {
                let mut comp =
                    compose_all(&prefix, &lexicon, &mut ThresholdExpert::new(0.9)).unwrap();
                // measured effect includes only the incremental step in
                // spirit; the prefix build is identical across arms and
                // measured separately below
                add_source(&mut comp, refs[k - 1], &lexicon, &mut ThresholdExpert::new(0.9))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("onion-prefix-only", k), &k, |b, _| {
            b.iter(|| compose_all(&prefix, &lexicon, &mut ThresholdExpert::new(0.9)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("global-remerge", k), &k, |b, _| {
            b.iter(|| GlobalMerge::rebuild(&refs, &lexicon))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
