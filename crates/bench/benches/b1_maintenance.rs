//! B1 — maintenance cost under source updates (paper §1/§6 claim:
//! global schemas are "huge and difficult-to-maintain"; articulations
//! evolve independently).
//!
//! Series: for each ontology size, apply a 20-op update batch (10%
//! targeting bridged terms) three ways:
//!   * `onion-incremental` — triage + scoped repair (`apply_delta`);
//!   * `onion-rebuild`     — regenerate the articulation from rules;
//!   * `global-merge`      — re-merge everything (the §1 baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_bench::{articulated, pair, truth_rules};
use onion_core::articulate::maintain::{apply_delta, rebuild};
use onion_core::prelude::*;
use onion_core::testkit::{update_stream, GlobalMerge, UpdateSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b1_maintenance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &concepts in &[200usize, 1000, 4000] {
        let p = pair(11, concepts, 0.1);
        let art = articulated(&p);
        let generator = ArticulationGenerator::new();
        let spec = UpdateSpec { seed: 3, ops: 20, bridged_fraction: 0.1, delete_fraction: 0.2 };
        let ops = update_stream(&p.left, &art, &spec);
        // the evolved source (what the world looks like after the batch)
        let mut evolved_graph = p.left.graph().clone();
        onion_core::graph::ops::apply_all(&mut evolved_graph, &ops).unwrap();
        let evolved = Ontology::from_graph(evolved_graph).unwrap();

        group.bench_with_input(
            BenchmarkId::new("onion-incremental", concepts),
            &concepts,
            |b, _| {
                b.iter(|| {
                    let mut a = art.clone();
                    apply_delta(&mut a, "left", &ops, &[&evolved, &p.right], &generator, None)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("onion-rebuild", concepts), &concepts, |b, _| {
            b.iter(|| rebuild(&art, &[&evolved, &p.right], &generator).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("global-merge", concepts), &concepts, |b, _| {
            b.iter(|| GlobalMerge::rebuild(&[&evolved, &p.right], &p.lexicon))
        });
        // context: a fresh generation for scale reference
        let _ = truth_rules(&p);
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
