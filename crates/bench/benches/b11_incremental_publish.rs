//! B11 — incremental snapshot publish vs dirty-shard fraction on the
//! testkit 10k-node / 50k-edge tier frozen at 64 shards. Each
//! iteration is one dirty-then-publish cycle (the content-neutral
//! dirtying edits are microseconds; the publish dominates). The
//! `b11_incremental_publish` section `experiments --json` records in
//! `BENCH_onion.json` times the publish alone and asserts the exact
//! rebuild accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use onion_bench::publish::B11Fixture;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b11_incremental_publish");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let mut fx = B11Fixture::new();
    for dirty in [1usize, 16, 64] {
        group.bench_function(format!("publish_dirty_{dirty}_of_64"), |b| {
            b.iter(|| std::hint::black_box(fx.publish_dirty(dirty)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
