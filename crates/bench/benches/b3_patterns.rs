//! B3 — graph-pattern matching throughput (paper §3): exact matching vs
//! the two fuzzy relaxations (synonym node labels, relaxed edge labels),
//! across pattern shapes and graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onion_core::lexicon::SynonymEquiv;
use onion_core::prelude::*;
use onion_core::testkit::{generate_ontology, OntologySpec};

fn patterns() -> Vec<(&'static str, Pattern)> {
    let mut edge = Pattern::new();
    let a = edge.any_node();
    let b = edge.any_node();
    edge.edge(a, "SubclassOf", b);

    let mut path3 = Pattern::new();
    let x = path3.any_node();
    let y = path3.any_node();
    let z = path3.any_node();
    path3.edge(x, "SubclassOf", y).edge(y, "SubclassOf", z);

    let mut star = Pattern::new();
    let hub = star.any_node();
    let c1 = star.any_node();
    let c2 = star.any_node();
    star.edge(c1, "SubclassOf", hub).edge(c2, "SubclassOf", hub);

    vec![("edge2", edge), ("path3", path3), ("star3", star)]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("b3_patterns");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let lexicon = onion_core::lexicon::generator::generate(&Default::default());
    for &classes in &[1000usize, 8000] {
        let o = generate_ontology(&OntologySpec::sized("g", 23, classes));
        let g = o.graph();
        for (name, p) in patterns() {
            group.bench_with_input(
                BenchmarkId::new(format!("exact/{name}"), classes),
                &classes,
                |b, _| b.iter(|| Matcher::new(g).count(&p).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("synonym/{name}"), classes),
                &classes,
                |b, _| {
                    b.iter(|| {
                        Matcher::with_equiv(g, SynonymEquiv::new(&lexicon)).count(&p).unwrap()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("relaxed-edges/{name}"), classes),
                &classes,
                |b, _| {
                    let cfg = MatchConfig { relax_edge_labels: true, ..Default::default() };
                    b.iter(|| Matcher::new(g).with_config(cfg.clone()).count(&p).unwrap())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
